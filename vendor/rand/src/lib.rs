//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! narrow slice of the rand 0.9 API that the CamAL reproduction actually uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded with
//!   splitmix64, so `StdRng::seed_from_u64(42)` yields the same stream on
//!   every platform and every run (important for reproducing paper figures).
//! * [`Rng`] — `random::<T>()`, `random_range(..)`, `random_bool(p)`.
//! * [`SeedableRng`] — `seed_from_u64` only.
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` and `choose`.
//!
//! The statistical quality is more than adequate for synthetic-data generation
//! and weight initialisation; swap in the real crate by replacing the
//! `path = "vendor/rand"` entry in the workspace manifest once a registry is
//! reachable.

/// A source of randomness plus the sampling helpers the workspace relies on.
///
/// Unlike upstream rand (which splits these across `RngCore` and `Rng`), the
/// sampling methods live directly on this trait so `fn f(rng: &mut impl Rng)`
/// call sites can invoke `rng.random::<f32>()` without extra imports.
pub trait Rng {
    /// Returns the next 64 random bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Samples a value of type `T` from its standard distribution
    /// (uniform `[0, 1)` for floats, uniform over all values for integers).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open `a..b` or inclusive `a..=b`).
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Alias kept for call sites written against the split-trait spelling
/// (`use rand::{Rng, RngExt}`); both names refer to the same trait here.
pub use Rng as RngExt;

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable via [`Rng::random`].
pub trait Standard: Sized {
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform-over-range sampler, for [`Rng::random_range`].
pub trait SampleUniform: Sized + Copy + PartialOrd {
    fn sample_between<R: Rng>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let (lo, hi) = (lo as i128, hi as i128);
                let span = if inclusive { hi - lo + 1 } else { hi - lo };
                assert!(span > 0, "cannot sample from empty range");
                (lo + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
                assert!(lo <= hi, "cannot sample from empty range");
                let unit: $t = Standard::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (the workspace's standard RNG).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_splitmix(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_splitmix(seed)
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// In-place shuffling and random element selection for slices.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` on an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f32 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = rng.random_range(3..9);
            assert!((3..9).contains(&i));
            let j = rng.random_range(2..=4);
            assert!((2..=4).contains(&j));
            let f: f32 = rng.random_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in sorted order");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 produced {hits}/10000");
    }
}
