//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so this vendored crate
//! provides the subset of the criterion API the `nilm_bench` crate declares:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], and the [`criterion_group!`] / [`criterion_main!`] macros
//! (both the positional and the `name = ...; config = ...; targets = ...`
//! forms).
//!
//! Measurement is deliberately simple: each benchmark runs one warm-up call
//! followed by `sample_size` timed iterations, and the mean wall-clock time
//! per iteration is printed to stdout. There is no statistical analysis, no
//! outlier rejection, and no `target/criterion` report directory — swap in
//! the real crate via the workspace manifest for publication-quality numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver (a very small subset of criterion's).
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Stored for API compatibility; this harness always runs exactly
    /// `sample_size` iterations regardless of how long they take.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Stored for API compatibility; warm-up is always a single call.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        println!("group {}", name);
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }

    /// No-op; kept so generated `main` functions can mirror criterion's.
    pub fn final_summary(&self) {}
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.warm_up_time = d;
        self
    }

    /// Records the amount of work per iteration (printed, not analysed).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        match t {
            Throughput::Elements(n) => println!("  throughput: {} elements/iter", n),
            Throughput::Bytes(n) => println!("  throughput: {} bytes/iter", n),
        }
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.criterion.sample_size, &mut f);
        self
    }

    /// Runs one parameterised benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.criterion.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Times the closure passed to [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Calls `f` once to warm up, then `samples` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = self.samples as u64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    let mut b = Bencher { samples, elapsed: Duration::ZERO, iters: 0 };
    f(&mut b);
    if b.iters == 0 {
        println!("{:<60} (no measurement)", label);
    } else {
        let per_iter = b.elapsed / b.iters as u32;
        println!("{:<60} time: [{:?}/iter over {} iters]", label, per_iter, b.iters);
    }
}

/// Identifier for a parameterised benchmark: `function_name/parameter`.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { text: format!("{}/{}", function_name, parameter) }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Work performed per iteration, used for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Re-export so benches can use `criterion::black_box` if they prefer.
pub use std::hint::black_box;

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `fn main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` executes bench targets with `--test`;
            // benches only need to run under `cargo bench`, so exit quickly
            // in that mode after the targets above have been type-checked.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut calls = 0u32;
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("counts", |b| b.iter(|| calls += 1));
        // one warm-up call plus three timed iterations
        assert_eq!(calls, 4);
    }

    #[test]
    fn group_bench_with_input_passes_input() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        let data = vec![1u64, 2, 3];
        let mut total = 0u64;
        g.throughput(Throughput::Elements(3));
        g.bench_with_input(BenchmarkId::new("sum", 3), &data, |b, d| {
            b.iter(|| total += d.iter().sum::<u64>())
        });
        g.finish();
        assert_eq!(total, 18); // (1 warm-up + 2 samples) * 6
    }
}
