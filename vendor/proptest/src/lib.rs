//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access, so this vendored crate
//! reimplements the slice of proptest the workspace's property tests use:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map`/`boxed`, range and
//! [`Just`] strategies, [`collection::vec()`], [`prop_oneof!`], and the
//! `prop_assert*` / [`prop_assume!`] macros.
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case panics
//! with the case index so it can be replayed (generation is fully
//! deterministic — case `i` always draws from a seed derived from `i`).

pub use rand;

use rand::rngs::StdRng;
use std::rc::Rc;

/// How a generated case signals failure back to the harness.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case did not satisfy a [`prop_assume!`] precondition; skip it.
    Reject,
    /// A `prop_assert*` failed with this message.
    Fail(String),
}

/// Result type produced by the body of a [`proptest!`] case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only `cases` is honoured by this stand-in.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config that runs `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    type Value;

    /// Draws one value from the strategy.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Post-processes every drawn value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        BoxedStrategy(Rc::new(move |rng| inner.sample(rng)))
    }
}

/// A type-erased [`Strategy`].
#[derive(Clone)]
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut StdRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        use rand::Rng as _;
        rng.random_range(self.start..self.end)
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        use rand::Rng as _;
        rng.random_range(*self.start()..=*self.end())
    }
}

/// Weighted union of type-erased strategies; built by [`prop_oneof!`].
pub struct OneOf<T> {
    arms: Vec<(f64, BoxedStrategy<T>)>,
}

impl<T> OneOf<T> {
    pub fn new(arms: Vec<(f64, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(arms.iter().all(|(w, _)| *w > 0.0), "weights must be positive");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        use rand::Rng as _;
        let total: f64 = self.arms.iter().map(|(w, _)| *w).sum();
        let mut pick = rng.random::<f64>() * total;
        for (w, s) in &self.arms {
            pick -= *w;
            if pick <= 0.0 {
                return s.sample(rng);
            }
        }
        self.arms.last().unwrap().1.sample(rng)
    }
}

pub mod collection {
    use super::{StdRng, Strategy};

    /// Accepted size specs for [`vec()`]: an exact length or a length range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            use rand::Rng as _;
            let len = rng.random_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test file normally imports.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Defines `#[test]` functions that check a property over random inputs.
///
/// Supported grammar (a subset of upstream proptest):
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]  // optional
///     fn my_property(x in 0.0f32..1.0, mut v in proptest::collection::vec(0u8..2, 4..64)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0u32..config.cases {
                    use $crate::rand::SeedableRng as _;
                    let mut __rng = $crate::rand::rngs::StdRng::seed_from_u64(
                        0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(__case) + 1),
                    );
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let __outcome = (move || -> $crate::TestCaseResult {
                        $body
                        Ok(())
                    })();
                    match __outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject) => continue,
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property `{}` failed on case {}: {}", stringify!($name), __case, msg)
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Weighted (`w => strategy`) or unweighted union of strategies.
///
/// Every arm must already share a value type; in practice arms are written
/// with `.boxed()` as in upstream proptest examples.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$((($weight) as f64, $crate::Strategy::boxed($strategy))),+])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$((1.0f64, $crate::Strategy::boxed($strategy))),+])
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts two expressions are unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Skips the current case when its inputs don't meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        fn ranges_respect_bounds(x in 1.0f32..2.0, n in 3u8..7) {
            prop_assert!((1.0..2.0).contains(&x));
            prop_assert!((3..7).contains(&n));
        }

        fn vec_lengths_respect_size(v in crate::collection::vec(0u8..2, 4..9)) {
            prop_assert!((4..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 2));
        }

        fn oneof_only_yields_arms(x in prop_oneof![3 => Just(1u8).boxed(), 1 => Just(9u8).boxed()]) {
            prop_assert!(x == 1 || x == 9);
        }

        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        fn prop_map_applies(x in (0.0f32..1.0).prop_map(|v| v + 10.0)) {
            prop_assert!((10.0..11.0).contains(&x));
        }
    }
}
