//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! The build environment has no network access, so this vendored crate lets
//! code be written against rayon-shaped APIs while staying swappable for the
//! real crate. Unlike the original placeholder, the work-distributing entry
//! points are **actually parallel**: [`join`] and the
//! [`prelude::ParallelSlice::par_chunks`] /
//! [`prelude::ParallelSliceMut::par_chunks_mut`] combinators fan work out
//! over [`std::thread::scope`] workers, honoring [`current_num_threads`]
//! (which reads `RAYON_NUM_THREADS`, falling back to the machine's available
//! parallelism). Scoped threads keep the implementation dependency-free and
//! borrow-friendly at the cost of a spawn per fan-out, so callers gate
//! parallel dispatch on a work threshold (as `nilm_tensor::gemm` does).
//!
//! The `par_iter` / `par_iter_mut` / `into_par_iter` traits remain
//! sequential adapters: they exist so call sites compile unchanged against
//! real rayon, which would parallelize them transparently.

use std::sync::OnceLock;

/// Runs both closures, `a` on a scoped worker thread and `b` on the calling
/// thread, and returns their results. Falls back to sequential execution
/// when only one worker thread is configured.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB,
    RA: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let ha = scope.spawn(a);
        let rb = b();
        (ha.join().expect("rayon::join closure panicked"), rb)
    })
}

/// Number of worker threads fan-outs use: `RAYON_NUM_THREADS` when set to a
/// positive integer, otherwise the machine's available parallelism.
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    })
}

/// Distributes `items` over scoped worker threads in contiguous runs,
/// calling `f(global_index, item)` for each. Runs sequentially when the
/// thread budget or item count is 1.
fn scoped_for_each<T: Send, F>(items: Vec<T>, f: F)
where
    F: Fn(usize, T) + Sync,
{
    let threads = current_num_threads().min(items.len());
    if threads <= 1 {
        for (i, item) in items.into_iter().enumerate() {
            f(i, item);
        }
        return;
    }
    let n = items.len();
    let per = n.div_ceil(threads);
    let mut groups: Vec<(usize, Vec<T>)> = Vec::with_capacity(threads);
    let mut rest = items;
    let mut start = 0;
    while !rest.is_empty() {
        let take = per.min(rest.len());
        let tail = rest.split_off(take);
        groups.push((start, std::mem::replace(&mut rest, tail)));
        start += take;
    }
    let fref = &f;
    std::thread::scope(|scope| {
        for (base, group) in groups {
            scope.spawn(move || {
                for (off, item) in group.into_iter().enumerate() {
                    fref(base + off, item);
                }
            });
        }
    });
}

pub mod prelude {
    use super::scoped_for_each;

    /// `collection.into_par_iter()` — sequential stand-in.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }
    impl<I: IntoIterator + Sized> IntoParallelIterator for I {}

    /// `collection.par_iter()` — sequential stand-in.
    pub trait IntoParallelRefIterator<'data> {
        type Iter: Iterator;
        fn par_iter(&'data self) -> Self::Iter;
    }
    impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
    {
        type Iter = <&'data C as IntoIterator>::IntoIter;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `collection.par_iter_mut()` — sequential stand-in.
    pub trait IntoParallelRefMutIterator<'data> {
        type Iter: Iterator;
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }
    impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
    where
        &'data mut C: IntoIterator,
    {
        type Iter = <&'data mut C as IntoIterator>::IntoIter;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Parallel shared chunks of a slice (`slice.par_chunks(n)`).
    pub trait ParallelSlice<T> {
        fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
    }
    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
            assert!(chunk_size > 0, "par_chunks: chunk size must be positive");
            ParChunks { slice: self, size: chunk_size }
        }
    }

    /// Parallel exclusive chunks of a slice (`slice.par_chunks_mut(n)`).
    pub trait ParallelSliceMut<T> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    }
    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
            assert!(chunk_size > 0, "par_chunks_mut: chunk size must be positive");
            ParChunksMut { slice: self, size: chunk_size }
        }
    }

    /// Parallel iterator over shared `&[T]` chunks.
    pub struct ParChunks<'a, T> {
        slice: &'a [T],
        size: usize,
    }

    impl<'a, T: Sync> ParChunks<'a, T> {
        /// Calls `f` on every chunk, distributing chunks over worker threads.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&'a [T]) + Sync,
        {
            scoped_for_each(self.slice.chunks(self.size).collect(), |_, c| f(c));
        }

        /// Pairs each chunk with its index.
        pub fn enumerate(self) -> ParEnumerate<&'a [T]> {
            ParEnumerate { items: self.slice.chunks(self.size).collect() }
        }

        /// Maps every chunk in parallel, preserving chunk order.
        pub fn map<U, F>(self, f: F) -> ParMap<&'a [T], F>
        where
            F: Fn(&'a [T]) -> U + Sync,
            U: Send,
        {
            ParMap { items: self.slice.chunks(self.size).collect(), f }
        }
    }

    /// Parallel iterator over exclusive `&mut [T]` chunks.
    pub struct ParChunksMut<'a, T> {
        slice: &'a mut [T],
        size: usize,
    }

    impl<'a, T: Send> ParChunksMut<'a, T> {
        /// Calls `f` on every chunk, distributing chunks over worker threads.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&'a mut [T]) + Sync,
        {
            scoped_for_each(self.slice.chunks_mut(self.size).collect(), |_, c| f(c));
        }

        /// Pairs each chunk with its index.
        pub fn enumerate(self) -> ParEnumerate<&'a mut [T]> {
            ParEnumerate { items: self.slice.chunks_mut(self.size).collect() }
        }
    }

    /// Index-carrying adapter produced by `enumerate()`.
    pub struct ParEnumerate<I> {
        items: Vec<I>,
    }

    impl<I: Send> ParEnumerate<I> {
        /// Calls `f((index, item))` for every item, in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn((usize, I)) + Sync,
        {
            scoped_for_each(self.items, |i, item| f((i, item)));
        }
    }

    /// Order-preserving parallel map produced by `ParChunks::map`.
    pub struct ParMap<I, F> {
        items: Vec<I>,
        f: F,
    }

    impl<I, F, U> ParMap<I, F>
    where
        I: Send,
        F: Fn(I) -> U + Sync,
        U: Send,
    {
        /// Evaluates the map and collects results in input order.
        pub fn collect<C: FromIterator<U>>(self) -> C {
            let n = self.items.len();
            let mut out: Vec<Option<U>> = Vec::with_capacity(n);
            out.resize_with(n, || None);
            {
                let slots: Vec<&mut Option<U>> = out.iter_mut().collect();
                let fref = &self.f;
                let pairs: Vec<(I, &mut Option<U>)> = self.items.into_iter().zip(slots).collect();
                scoped_for_each(pairs, |_, (item, slot)| {
                    *slot = Some(fref(item));
                });
            }
            out.into_iter().map(|v| v.expect("ParMap slot unfilled")).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = vec![1u32, 2, 3, 4];
        let doubled: Vec<u32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let total: u32 = v.into_par_iter().sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }

    #[test]
    fn par_chunks_map_collect_preserves_order() {
        let v: Vec<u32> = (0..10).collect();
        let sums: Vec<u32> = v.par_chunks(3).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![3, 12, 21, 9]);
    }

    #[test]
    fn par_chunks_mut_for_each_touches_every_chunk() {
        let mut v = vec![1u32; 10];
        v.par_chunks_mut(4).for_each(|c| c.iter_mut().for_each(|x| *x += 1));
        assert_eq!(v, vec![2u32; 10]);
    }

    #[test]
    fn enumerate_sees_ordered_indices_and_disjoint_chunks() {
        let mut v = vec![0usize; 12];
        v.par_chunks_mut(5).enumerate().for_each(|(i, c)| {
            c.iter_mut().for_each(|x| *x = i + 1);
        });
        let mut expect = vec![1; 5];
        expect.extend(vec![2; 5]);
        expect.extend(vec![3; 2]);
        assert_eq!(v, expect);
        let hits = AtomicUsize::new(0);
        v.par_chunks(3).for_each(|c| {
            hits.fetch_add(c.len(), Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 12);
    }
}
