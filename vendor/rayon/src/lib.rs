//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! The build environment has no network access, so this vendored crate lets
//! code be written against rayon-shaped APIs (`par_iter`, `par_iter_mut`,
//! `into_par_iter`, `par_chunks`, [`join`]) while executing **sequentially**.
//! The "parallel" iterators are ordinary [`std::iter::Iterator`]s, so the
//! usual combinators (`map`, `filter`, `sum`, `collect`, ...) all work at
//! call sites unchanged.
//!
//! When a registry is reachable, swapping the workspace manifest entry to the
//! real rayon turns these call sites into actual data-parallel code with no
//! source changes for the common combinator subset.

/// Runs both closures and returns their results (sequentially here).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Number of worker threads the real rayon would use on this machine.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

pub mod prelude {
    /// `collection.into_par_iter()` — sequential stand-in.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }
    impl<I: IntoIterator + Sized> IntoParallelIterator for I {}

    /// `collection.par_iter()` — sequential stand-in.
    pub trait IntoParallelRefIterator<'data> {
        type Iter: Iterator;
        fn par_iter(&'data self) -> Self::Iter;
    }
    impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
    {
        type Iter = <&'data C as IntoIterator>::IntoIter;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `collection.par_iter_mut()` — sequential stand-in.
    pub trait IntoParallelRefMutIterator<'data> {
        type Iter: Iterator;
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }
    impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
    where
        &'data mut C: IntoIterator,
    {
        type Iter = <&'data mut C as IntoIterator>::IntoIter;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `slice.par_chunks(n)` / `slice.par_chunks_mut(n)` — sequential stand-in.
    pub trait ParallelSlice<T> {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }
    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    pub trait ParallelSliceMut<T> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }
    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = vec![1u32, 2, 3, 4];
        let doubled: Vec<u32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let total: u32 = v.into_par_iter().sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }

    #[test]
    fn par_chunks_matches_chunks() {
        let v: Vec<u32> = (0..10).collect();
        let sums: Vec<u32> = v.par_chunks(3).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![3, 12, 21, 9]);
    }
}
