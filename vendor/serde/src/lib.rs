//! Offline placeholder for the [`serde`](https://crates.io/crates/serde)
//! crate.
//!
//! The build environment has no network access, so this vendored crate only
//! reserves the dependency slot in the workspace manifest and offers marker
//! traits. No derive macros and no data model are provided; code that needs
//! real serialization should gate it behind a feature until the `path =
//! "vendor/serde"` entry in the workspace manifest can be swapped for the
//! registry crate.

/// Marker for types intended to be serializable once real serde is wired in.
pub trait Serialize {}

/// Marker for types intended to be deserializable once real serde is wired in.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}
impl_markers!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, String);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
