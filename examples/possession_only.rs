//! The extreme-but-realistic RQ4 scenario (paper §V-H): train CamAL using
//! ONE label per household — the survey answer "do you own a dishwasher?" —
//! and localize activations in submetered households it has never seen.
//!
//! Run with: `cargo run --release --example possession_only`

use camal::{CamalConfig, CamalModel};
use nilm_data::prelude::*;

fn main() {
    // IDEAL-shaped dataset: a submetered core plus possession-only survey
    // houses (the paper uses 39 submetered + 216 survey households).
    let scale = ScaleOverride {
        submetered_houses: Some(8),
        possession_only_houses: Some(24),
        days_per_house: Some(5),
    };
    let dataset = generate_dataset(&ideal(), scale, 7);
    println!(
        "simulated IDEAL-like dataset: {} submetered + {} survey houses",
        dataset.houses.len(),
        dataset.survey_houses.len()
    );

    // Possession pipeline: every training window inherits the household's
    // ownership answer; NO per-timestep information is available.
    let case =
        prepare_possession_case(&dataset, ApplianceKind::Dishwasher, 128, &SplitConfig::default());
    let train_houses: std::collections::BTreeSet<usize> =
        case.train.windows.iter().map(|w| w.house_id).collect();
    println!(
        "training labels: {} (one ownership answer per house, {} houses)",
        train_houses.len(),
        train_houses.len()
    );
    println!(
        "training windows: {} (positives {}), test windows: {}",
        case.train.len(),
        case.train.positives(),
        case.test.len()
    );

    let mut cfg = CamalConfig::small();
    cfg.train.epochs = 8;
    let mut model = CamalModel::train(&cfg, &case.train, &case.val, 4);

    let avg_power = ideal().case(ApplianceKind::Dishwasher).unwrap().avg_power_w;
    let report = model.evaluate(&case.test, avg_power, 16);
    println!("\n== Localization on submetered ground truth ==");
    println!(
        "F1 = {:.3}  Pr = {:.3}  Rc = {:.3}",
        report.localization.f1, report.localization.precision, report.localization.recall
    );
    println!("detection balanced accuracy = {:.3}", report.detection.balanced_accuracy);
    println!("MAE = {:.1} W, MR = {:.3}", report.energy.mae, report.energy.matching_ratio);
    println!(
        "\nCamAL was trained with {} labels total — the strongly supervised
equivalent would need {} labels for the same training data.",
        train_houses.len(),
        case.train.len() * case.train.window_len()
    );
}
