//! Quickstart: simulate a REFIT-like dataset, train CamAL on weak labels,
//! and localize kettle activations in unseen houses.
//!
//! Run with: `cargo run --release --example quickstart`

use camal::{CamalConfig, CamalModel};
use nilm_data::prelude::*;

fn main() {
    // 1. Simulate a small REFIT-shaped dataset (8 houses, 4 days each).
    let scale =
        ScaleOverride { submetered_houses: Some(8), days_per_house: Some(4), ..Default::default() };
    let dataset = generate_dataset(&refit(), scale, 42);
    println!(
        "simulated {} houses of {} days at {}s resolution",
        dataset.houses.len(),
        4,
        dataset.template.step_s
    );

    // 2. Preprocess into non-overlapping windows with house-level splits.
    //    Each training window carries ONE weak label (appliance used or not).
    let case = prepare_case(&dataset, ApplianceKind::Kettle, 256, &SplitConfig::default());
    println!(
        "windows: train={} (positives={}), val={}, test={}",
        case.train.len(),
        case.train.positives(),
        case.val.len(),
        case.test.len()
    );

    // 3. Train the CamAL ensemble (Algorithm 1) — laptop-scale config.
    let mut cfg = CamalConfig::small();
    cfg.train.epochs = 8;
    let mut model = CamalModel::train(&cfg, &case.train, &case.val, 4);
    println!(
        "trained ensemble of {} detectors ({:?}) in {:.1}s",
        model.ensemble_size(),
        model.describe_members(),
        model.train_stats.total_secs
    );

    // 4. Localize on unseen houses and report paper metrics.
    let avg_power = refit().case(ApplianceKind::Kettle).unwrap().avg_power_w;
    let report = model.evaluate(&case.test, avg_power, 16);
    println!("\n== Test report (unseen houses) ==");
    println!("localization F1        : {:.3}", report.localization.f1);
    println!("localization precision : {:.3}", report.localization.precision);
    println!("localization recall    : {:.3}", report.localization.recall);
    println!("detection bal. accuracy: {:.3}", report.detection.balanced_accuracy);
    println!("energy MAE             : {:.1} W", report.energy.mae);
    println!("energy matching ratio  : {:.3}", report.energy.matching_ratio);

    // 5. Visualize one detected window as ASCII strips.
    let loc = model.localize_set(&case.test, 16);
    if let Some(idx) = loc.detected.iter().position(|&d| d) {
        let window = &case.test.windows[idx];
        println!("\n== Window {idx} (detected, p={:.2}) ==", loc.detection_proba[idx]);
        println!("aggregate: {}", strip(&window.input, 64));
        println!("CAM      : {}", strip(&loc.cam[idx], 64));
        let status: Vec<f32> = loc.status[idx].iter().map(|&s| s as f32).collect();
        println!("predicted: {}", strip(&status, 64));
        let truth: Vec<f32> = window.status.iter().map(|&s| s as f32).collect();
        println!("truth    : {}", strip(&truth, 64));
    }
}

/// Renders a series as a 64-char intensity strip.
fn strip(values: &[f32], width: usize) -> String {
    const LEVELS: [char; 5] = [' ', '.', ':', '*', '#'];
    let max = values.iter().copied().fold(f32::MIN_POSITIVE, f32::max);
    let bucket = values.len().div_ceil(width).max(1);
    values
        .chunks(bucket)
        .map(|chunk| {
            let m = chunk.iter().copied().fold(0.0f32, f32::max) / max;
            LEVELS[((m * (LEVELS.len() - 1) as f32).round() as usize).min(LEVELS.len() - 1)]
        })
        .collect()
}
