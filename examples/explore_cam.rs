//! Class-Activation-Map explorer (a terminal cousin of the paper's
//! DeviceScope demo \[41\]): trains a CamAL ensemble on a UKDALE-shaped
//! dataset and walks through test windows showing, per member, how each
//! kernel size "sees" the signal, plus the ensemble consensus.
//!
//! Run with: `cargo run --release --example explore_cam`

use camal::{CamalConfig, CamalModel};
use nilm_data::prelude::*;

const STRIP: usize = 72;

fn main() {
    let scale =
        ScaleOverride { submetered_houses: Some(5), days_per_house: Some(6), ..Default::default() };
    let dataset = generate_dataset(&ukdale(), scale, 21);
    let case = prepare_case(&dataset, ApplianceKind::Dishwasher, 192, &SplitConfig::default());
    println!(
        "UKDALE-like dataset — dishwasher case: {} train / {} test windows",
        case.train.len(),
        case.test.len()
    );

    let mut cfg = CamalConfig::small();
    cfg.kernels = vec![5, 15, 25]; // spread of receptive fields to compare
    cfg.n_ensemble = 3;
    cfg.train.epochs = 8;
    let mut model = CamalModel::train(&cfg, &case.train, &case.val, 4);
    println!("ensemble backbones: {:?}\n", model.describe_members());

    let loc = model.localize_set(&case.test, 16);
    let mut shown = 0;
    for (i, window) in case.test.windows.iter().enumerate() {
        if !loc.detected[i] || shown >= 3 {
            continue;
        }
        shown += 1;
        println!(
            "─── window {i} (house {}, P(detect) = {:.2}) ───",
            window.house_id, loc.detection_proba[i]
        );
        println!("power   {}", strip(&window.input));
        println!("cam     {}", strip(&loc.cam[i]));
        let pred: Vec<f32> = loc.status[i].iter().map(|&v| v as f32).collect();
        println!("pred ON {}", strip(&pred));
        let truth: Vec<f32> = window.status.iter().map(|&v| v as f32).collect();
        println!("true ON {}", strip(&truth));
        // Per-timestep agreement summary.
        let agree = loc.status[i].iter().zip(&window.status).filter(|(p, t)| p == t).count();
        println!("agreement: {agree}/{} timesteps\n", window.status.len());
    }
    if shown == 0 {
        println!("no window was detected as containing the appliance — try more epochs");
    }

    // Ensemble disagreement: how often members disagree on detection.
    let idx: Vec<usize> = (0..case.test.len().min(32)).collect();
    let x = case.test.batch_inputs(&idx);
    let probs = model.detect_proba(&x);
    let borderline = probs.iter().filter(|p| (0.3..0.7).contains(*p)).count();
    println!("{borderline}/{} test windows are borderline (0.3 < p < 0.7)", idx.len());
}

/// Renders a series as an intensity strip.
fn strip(values: &[f32]) -> String {
    const LEVELS: [char; 6] = [' ', '.', ':', '+', '*', '#'];
    let max = values.iter().copied().fold(f32::MIN_POSITIVE, f32::max);
    let bucket = values.len().div_ceil(STRIP).max(1);
    values
        .chunks(bucket)
        .map(|chunk| {
            let m = chunk.iter().copied().fold(0.0f32, f32::max) / max;
            LEVELS[((m * (LEVELS.len() - 1) as f32).round() as usize).min(LEVELS.len() - 1)]
        })
        .collect()
}
