//! RQ5 (paper §V-I): use CamAL's outputs as *soft labels* to train a
//! strongly supervised NILM model when per-timestep ground truth is scarce.
//!
//! Pipeline: train CamAL on weak labels → generate per-timestep soft labels
//! for the training windows → train TPNILM on (a) a few strong houses only,
//! and (b) the same strong houses plus soft labels for everyone else.
//!
//! Run with: `cargo run --release --example soft_labels`

use camal::{CamalConfig, CamalModel};
use nilm_data::prelude::*;
use nilm_eval::runner::evaluate_frame_model;
use nilm_models::baselines::BaselineKind;
use nilm_models::{train_soft, train_strong, TrainConfig};

fn main() {
    // EDF-EV-shaped dataset: EV chargers at 30-minute sampling.
    let scale = ScaleOverride {
        submetered_houses: Some(10),
        days_per_house: Some(12),
        ..Default::default()
    };
    let dataset = generate_dataset(&edf_ev(), scale, 11);
    let case = prepare_case(&dataset, ApplianceKind::ElectricVehicle, 128, &SplitConfig::default());
    let avg_power = edf_ev().case(ApplianceKind::ElectricVehicle).unwrap().avg_power_w;
    println!("train windows: {}, test windows: {}", case.train.len(), case.test.len());

    // 1. CamAL on weak labels.
    let mut cfg = CamalConfig::small();
    cfg.train.epochs = 8;
    let mut camal = CamalModel::train(&cfg, &case.train, &case.val, 4);
    let soft = camal.soft_labels(&case.train, 16);
    let coverage = soft.iter().flatten().filter(|&&v| v > 0.0).count() as f64
        / (soft.len() * soft[0].len()) as f64;
    println!("generated soft labels for {} windows ({:.1}% ON)", soft.len(), coverage * 100.0);

    // 2. Keep strong labels for only TWO houses; everything else is soft.
    let mut houses: Vec<usize> = case.train.windows.iter().map(|w| w.house_id).collect();
    houses.sort_unstable();
    houses.dedup();
    let strong_houses: std::collections::BTreeSet<usize> = houses.iter().take(2).copied().collect();
    println!("strong houses: {strong_houses:?} of {houses:?}");

    let strong_only = WindowSet {
        windows: case
            .train
            .windows
            .iter()
            .filter(|w| strong_houses.contains(&w.house_id))
            .cloned()
            .collect(),
    };
    let mixed_targets: Vec<Vec<f32>> = case
        .train
        .windows
        .iter()
        .zip(&soft)
        .map(|(w, s)| {
            if strong_houses.contains(&w.house_id) {
                w.status.iter().map(|&b| b as f32).collect()
            } else {
                s.clone()
            }
        })
        .collect();

    let train_cfg = TrainConfig { epochs: 8, ..Default::default() };

    // 3a. TPNILM on strong labels only (label-scarce baseline).
    let mut rng = nilm_tensor::init::rng(1);
    let mut scarce = BaselineKind::TpNilm.build(&mut rng, 8);
    let _ = train_strong(scarce.as_mut(), &strong_only, &train_cfg);
    let scarce_report = evaluate_frame_model(scarce.as_mut(), &case.test, avg_power);

    // 3b. TPNILM on strong + CamAL soft labels.
    let mut rng = nilm_tensor::init::rng(2);
    let mut augmented = BaselineKind::TpNilm.build(&mut rng, 8);
    let _ = train_soft(augmented.as_mut(), &case.train, &mixed_targets, &train_cfg);
    let augmented_report = evaluate_frame_model(augmented.as_mut(), &case.test, avg_power);

    println!("\n== TPNILM on the EDF-EV test houses ==");
    println!(
        "strong labels only ({} windows)  : F1 = {:.3}",
        strong_only.len(),
        scarce_report.localization.f1
    );
    println!(
        "strong + CamAL soft ({} windows) : F1 = {:.3}",
        case.train.len(),
        augmented_report.localization.f1
    );
    println!("\nCamAL soft labels let a strongly supervised model train on the");
    println!("full dataset while only two houses were ever instrumented.");
}
