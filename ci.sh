#!/usr/bin/env bash
# CI gate for the CamAL reproduction workspace.
#
# Mirrors the tier-1 verify (`cargo build --release && cargo test -q`) and
# adds formatting, full-target compilation (benches included), and warning-
# free documentation. Run from the repository root:
#
#   ./ci.sh          # everything
#   ./ci.sh quick    # skip the release build (debug build + tests only)
set -euo pipefail
cd "$(dirname "$0")"

MODE="${1:-full}"

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all --check

step "cargo check --workspace --all-targets (benches, bins, examples, tests)"
cargo check --workspace --all-targets

if [ "$MODE" != "quick" ]; then
    step "cargo build --release"
    cargo build --release
fi

step "cargo test -q (unit, integration, property, doc tests)"
cargo test -q

step "cargo test -q --workspace (vendored dependency stand-ins included)"
cargo test -q --workspace

if [ "$MODE" != "quick" ]; then
    # The GEMM/naive conv equivalence property tests sweep enough shapes to
    # be slow in debug; run them (and the rest of nilm_tensor) optimized,
    # with a multi-thread worker pool so the parallel fan-outs are exercised.
    step "cargo test -p nilm_tensor --release (RAYON_NUM_THREADS=4)"
    RAYON_NUM_THREADS=4 cargo test -q -p nilm_tensor --release

    step "perf harness smoke run (validates BENCH_conv_gemm.json)"
    cargo run --release -p nilm_eval --bin bench_conv_gemm -- --smoke --out target/ci-bench

    step "camal_serve smoke run (train -> save -> load -> serve, JSON validated)"
    cargo run --release -p nilm_eval --bin camal_serve -- demo --smoke --out target/ci-serve

    step "camal_fleet smoke run (zoo train-all -> registry reload -> fleet serve, JSON validated)"
    cargo run --release -p nilm_eval --bin camal_fleet -- demo --smoke --out target/ci-fleet

    # The fleet sharding-invariance tests only exercise real fan-out with a
    # multi-thread worker pool (the 1-core fallback runs shards serially).
    step "cargo test -p camal --test fleet_serving --release (RAYON_NUM_THREADS=4)"
    RAYON_NUM_THREADS=4 cargo test -q -p camal --test fleet_serving --release
fi

# `camal` and `nilm_data` opt into #![warn(missing_docs)]; with rustdoc
# warnings denied this step is the docs gate: any undocumented public item
# in those crates fails CI.
step "docs gate: cargo doc -p camal -p nilm_data (missing_docs denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -p camal -p nilm_data

step "cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

step "OK — all checks passed"
