#!/usr/bin/env bash
# CI gate for the CamAL reproduction workspace.
#
# Mirrors the tier-1 verify (`cargo build --release && cargo test -q`) and
# adds formatting, full-target compilation (benches included), and warning-
# free documentation. Run from the repository root:
#
#   ./ci.sh          # everything
#   ./ci.sh quick    # skip the release build (debug build + tests only)
set -euo pipefail
cd "$(dirname "$0")"

MODE="${1:-full}"

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all --check

step "cargo check --workspace --all-targets (benches, bins, examples, tests)"
cargo check --workspace --all-targets

if [ "$MODE" != "quick" ]; then
    step "cargo build --release"
    cargo build --release
fi

step "cargo test -q (unit, integration, property, doc tests)"
cargo test -q

step "cargo test -q --workspace (vendored dependency stand-ins included)"
cargo test -q --workspace

if [ "$MODE" != "quick" ]; then
    # The GEMM/naive conv equivalence property tests sweep enough shapes to
    # be slow in debug; run them (and the rest of nilm_tensor) optimized,
    # with a multi-thread worker pool so the parallel fan-outs are exercised.
    step "cargo test -p nilm_tensor --release (RAYON_NUM_THREADS=4)"
    RAYON_NUM_THREADS=4 cargo test -q -p nilm_tensor --release

    # Kernel-oracle sweep: the dispatch-layer property suite once per forced
    # backend, plus once with SIMD disabled to pin the portable-scalar
    # fallback. Together with the unforced run above this oracle-checks every
    # path a `NILM_BACKEND` override can select in production.
    for BK in naive gemm simd; do
        step "kernel oracle sweep: NILM_BACKEND=$BK"
        NILM_BACKEND=$BK cargo test -q -p nilm_tensor --release \
            --test kernel_oracle --test conv_gemm_equivalence
    done
    step "kernel oracle sweep: NILM_BACKEND=simd NILM_SIMD=off (scalar fallback)"
    NILM_BACKEND=simd NILM_SIMD=off cargo test -q -p nilm_tensor --release \
        --test kernel_oracle --test conv_gemm_equivalence

    step "perf harness smoke run (validates BENCH_conv_gemm.json)"
    cargo run --release -p nilm_eval --bin bench_conv_gemm -- --smoke --out target/ci-bench

    # The serving demos train mixed ResNet + TransApp ensembles
    # (`Scale::mixed_camal_config`), so these smoke runs double as the
    # heterogeneous-backbone zoo gate: checkpoint v3 save/load, registry
    # manifest metadata and fleet/gateway serving over mixed members.
    step "camal_serve smoke run (mixed-backbone train -> save -> load -> serve, JSON validated)"
    cargo run --release -p nilm_eval --bin camal_serve -- demo --smoke --out target/ci-serve

    step "camal_fleet smoke run (mixed-backbone zoo train-all -> registry reload -> fleet serve, JSON validated)"
    cargo run --release -p nilm_eval --bin camal_fleet -- demo --smoke --out target/ci-fleet

    # Checkpoint compatibility: the committed v2 fixture must keep loading
    # (and serving bit-identically) through the v3 reader.
    step "cargo test -p camal --test checkpoint_compat --release (v2 fixture compat)"
    cargo test -q -p camal --test checkpoint_compat --release

    # The fleet sharding-invariance tests only exercise real fan-out with a
    # multi-thread worker pool (the 1-core fallback runs shards serially).
    step "cargo test -p camal --test fleet_serving --release (RAYON_NUM_THREADS=4)"
    RAYON_NUM_THREADS=4 cargo test -q -p camal --test fleet_serving --release

    # Gateway bit-identity + HTTP abuse tests under the optimized build —
    # release is the production code path the byte-equality claim is about.
    step "cargo test -p nilm_serve --release (gateway concurrency + HTTP edge cases)"
    cargo test -q -p nilm_serve --release

    step "camal_gateway smoke: ephemeral-port serve -> curl round-trip -> graceful shutdown"
    GW_DIR=target/ci-gateway
    rm -rf "$GW_DIR" && mkdir -p "$GW_DIR"
    ./target/release/camal_gateway train --smoke --zoo "$GW_DIR/zoo" --out "$GW_DIR"
    # Serve on an ephemeral port; the whole server is bounded by `timeout`
    # so a wedged gateway cannot hang CI. --addr-file publishes the port.
    # --queue 1024: the reactor load stage below holds 128 x 4 = 512
    # requests in flight; the zero-errors gate needs the queue to admit
    # the whole burst (the default 256 would correctly shed ~half as 503).
    # --trace: request tracing on from the start, so the observability
    # gates below can pull a socket-to-kernel trace out of /debug/trace.
    timeout 120 ./target/release/camal_gateway serve \
        --zoo "$GW_DIR/zoo" --addr 127.0.0.1:0 --addr-file "$GW_DIR/addr.txt" \
        --queue 1024 --trace &
    GW_PID=$!
    for _ in $(seq 1 150); do [ -s "$GW_DIR/addr.txt" ] && break; sleep 0.2; done
    [ -s "$GW_DIR/addr.txt" ] || { echo "gateway never published its address"; kill "$GW_PID" 2>/dev/null; exit 1; }
    GW_ADDR=$(cat "$GW_DIR/addr.txt")
    echo "gateway at $GW_ADDR"
    curl -sfS "http://$GW_ADDR/healthz" -o "$GW_DIR/healthz.json"
    grep -q '"status":"ok"' "$GW_DIR/healthz.json"
    # One real localize round-trip: two windows of synthetic kettle data.
    python3 - "$GW_DIR" <<'PY'
import json, sys
values = [150 + (1900 if (t // 9) % 4 == 0 else 0) for t in range(256)]
body = {"appliances": ["refit:kettle"], "detail": "summary",
        "households": [{"id": "ci-house", "step_s": 60, "values": values}]}
open(sys.argv[1] + "/request.json", "w").write(json.dumps(body))
PY
    curl -sfS -X POST "http://$GW_ADDR/v1/localize" \
        -H 'Content-Type: application/json' --data @"$GW_DIR/request.json" \
        -o "$GW_DIR/localize.json"
    # The response must be parseable JSON with the expected schema tag and
    # a result for the requested appliance.
    python3 - "$GW_DIR" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1] + "/localize.json"))
assert doc["schema"] == "camal_localize/v1", doc
hh = doc["households"][0]
assert hh["id"] == "ci-house" and "refit:kettle" in hh["results"], doc
print("localize round-trip ok:", json.dumps(hh["results"]["refit:kettle"]))
PY
    # Loadgen against the live server (report JSON re-validated in-process),
    # with the full HDR latency histogram dumped and validated.
    ./target/release/camal_gateway loadgen --addr "$GW_ADDR" \
        --connections 2 --requests 40 --detail summary \
        --latency-json "$GW_DIR/latency_hist.json" --out "$GW_DIR"
    python3 - "$GW_DIR" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1] + "/latency_hist.json"))
assert doc["count"] == 40, doc
assert sum(b["count"] for b in doc["buckets"]) == doc["count"], doc
assert doc["min_ms"] <= doc["p50_ms"] <= doc["p99_ms"] <= doc["max_ms"] * 1.01, doc
print("latency histogram ok:", doc["count"], "samples in", len(doc["buckets"]), "buckets")
PY
    # Reactor load stage: 128 keep-alive connections with pipelined bursts
    # against the epoll event loop. Hard gates: zero non-200 responses and
    # a bounded p99 — an unfair or leaky reactor fails here, not in prod.
    ./target/release/camal_gateway loadgen --addr "$GW_ADDR" \
        --connections 128 --requests 1024 --pipeline 4 --detail summary \
        --max-errors 0 --max-p99-ms 2000 --out "$GW_DIR"
    curl -sfS "http://$GW_ADDR/metrics" -o "$GW_DIR/metrics.json"
    python3 -c "import json,sys; json.load(open('$GW_DIR/metrics.json'))"

    # Observability gates against the live server.
    # 1. Readiness: a warmed gateway answers /readyz 200 with ready=true
    #    (the 503 paths — shutdown drain, dead batcher, saturated queue —
    #    are pinned by the nilm_serve obs_trace integration test).
    curl -sfS "http://$GW_ADDR/readyz" -o "$GW_DIR/readyz.json"
    python3 - "$GW_DIR" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1] + "/readyz.json"))
assert doc["ready"] is True and doc["reason"] is None, doc
assert doc["queue_capacity"] > 0, doc
print("readyz ok:", json.dumps(doc))
PY
    # 2. Trace completeness: a localize request sent with an explicit
    #    X-Camal-Trace-Id must come back out of /debug/trace as one
    #    connected tree covering every pipeline stage down to the kernels.
    TRACE_ID=00000000c0ffee11
    curl -sfS -X POST "http://$GW_ADDR/v1/localize" \
        -H 'Content-Type: application/json' -H "X-Camal-Trace-Id: $TRACE_ID" \
        --data @"$GW_DIR/request.json" -o /dev/null
    # The root span is recorded once the response's last byte is on the
    # wire; give the reactor a beat before reading the trace back.
    sleep 0.3
    curl -sfS "http://$GW_ADDR/debug/trace?id=$TRACE_ID" -o "$GW_DIR/trace.json"
    python3 - "$GW_DIR" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1] + "/trace.json"))
spans = doc["spans"]
names = {s["name"] for s in spans}
required = {"request", "parse", "queue_wait", "coalesce",
            "preprocess", "infer", "stitch", "write", "kernel"}
missing = required - names
assert not missing, f"trace is missing stages: {sorted(missing)}"
ids = {s["span"] for s in spans}
dangling = [s["name"] for s in spans if s["parent"] != 0 and s["parent"] not in ids]
assert not dangling, f"dangling parent links from: {dangling}"
roots = [s for s in spans if s["parent"] == 0]
assert len(roots) == 1 and roots[0]["name"] == "request", roots
print(f"debug/trace ok: {len(spans)} spans, all stages present, tree connected")
PY
    # 3. Prometheus exposition: every sample belongs to a declared family
    #    (HELP + TYPE), and no series is emitted twice.
    curl -sfS "http://$GW_ADDR/metrics?format=prometheus" -o "$GW_DIR/metrics.prom"
    python3 - "$GW_DIR" <<'PY'
import sys
helps, types, series = set(), set(), set()
for line in open(sys.argv[1] + "/metrics.prom"):
    line = line.rstrip("\n")
    if not line:
        continue
    if line.startswith("# HELP "):
        helps.add(line.split()[2])
    elif line.startswith("# TYPE "):
        types.add(line.split()[2])
    elif line.startswith("#"):
        continue
    else:
        key = line.rsplit(" ", 1)[0]
        assert key not in series, f"duplicate series: {key}"
        series.add(key)
        name = key.split("{")[0]
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            stem = name[: -len(suffix)] if name.endswith(suffix) else None
            if stem and stem in types:
                base = stem
                break
        assert base in types, f"sample {name} has no TYPE line"
        assert base in helps, f"sample {name} has no HELP line"
assert types == helps, f"HELP/TYPE mismatch: {types ^ helps}"
assert any(s.startswith("nilm_request_duration_seconds_bucket") for s in series)
assert any(s.startswith("nilm_stage_duration_seconds_bucket") for s in series)
print(f"prometheus ok: {len(types)} families, {len(series)} series, no duplicates")
PY

    curl -sfS -X POST "http://$GW_ADDR/admin/shutdown" >/dev/null
    wait "$GW_PID"
    echo "gateway shut down cleanly"

    step "camal_gateway demo --smoke (byte-identity + micro-batching gates, JSON validated)"
    cargo run --release -p nilm_eval --bin camal_gateway -- demo --smoke --out target/ci-gateway-demo

    # Chaos smoke: batcher panics + checkpoint corruption at 10% while a
    # ≥200-request load runs. Gates: every request completes (no hangs),
    # statuses are only 200 or 503-with-Retry-After (a single 500 fails),
    # and after disarming the gateway heals to byte-identical responses.
    step "camal_gateway chaos --smoke (fault injection: zero hangs, zero 500s, heals byte-identical)"
    cargo run --release -p nilm_eval --bin camal_gateway -- chaos --smoke --out target/ci-gateway-chaos

    step "bench_gateway_rps smoke (validates BENCH_gateway.json writer)"
    cargo bench -p nilm_bench --bench bench_gateway_rps -- --smoke --out "$PWD/target/ci-gateway"
fi

# `camal`, `nilm_data`, `nilm_fault`, `nilm_json`, `nilm_models`,
# `nilm_obs` and `nilm_serve` opt into #![warn(missing_docs)]; with rustdoc
# warnings denied this step is the docs gate: any undocumented public item
# in those crates (the backbone zoo — detector/resnet/inception/transapp —
# included) fails CI.
step "docs gate: cargo doc -p camal -p nilm_data -p nilm_fault -p nilm_json -p nilm_models -p nilm_obs -p nilm_serve (missing_docs denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -p camal -p nilm_data -p nilm_fault -p nilm_json -p nilm_models -p nilm_obs -p nilm_serve

step "cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

step "OK — all checks passed"
