#!/usr/bin/env bash
# CI gate for the CamAL reproduction workspace.
#
# Mirrors the tier-1 verify (`cargo build --release && cargo test -q`) and
# adds formatting, full-target compilation (benches included), and warning-
# free documentation. Run from the repository root:
#
#   ./ci.sh          # everything
#   ./ci.sh quick    # skip the release build (debug build + tests only)
set -euo pipefail
cd "$(dirname "$0")"

MODE="${1:-full}"

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all --check

step "cargo check --workspace --all-targets (benches, bins, examples, tests)"
cargo check --workspace --all-targets

if [ "$MODE" != "quick" ]; then
    step "cargo build --release"
    cargo build --release
fi

step "cargo test -q (unit, integration, property, doc tests)"
cargo test -q

step "cargo test -q --workspace (vendored dependency stand-ins included)"
cargo test -q --workspace

step "cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

step "OK — all checks passed"
