//! # nilm_json
//!
//! Minimal, dependency-free JSON for the CamAL reproduction: a deterministic
//! emitter, a strict RFC 8259 validator, and a full parser producing
//! [`JsonValue`] trees.
//!
//! The vendored `serde` stand-in carries no data model (the offline build
//! cannot pull `serde_json`), so every machine-readable artifact of this
//! workspace flows through this crate instead: the perf harnesses write
//! their committed baselines with [`JsonValue::to_pretty`] and CI re-reads
//! them through [`validate`], while the network gateway (`nilm_serve`)
//! parses request bodies with [`parse`] and emits responses with
//! [`JsonValue::to_compact`]. Objects keep sorted keys, so emission is
//! deterministic and byte-stable — committed baselines diff cleanly and
//! gateway responses can be compared bit-for-bit against locally computed
//! expectations.
//!
//! ## Round-tripping
//!
//! Numbers are emitted with Rust's shortest-roundtrip `f64` formatting and
//! parsed with `str::parse::<f64>`, so `parse(&x.to_pretty()) == Ok(x)` for
//! every tree whose numbers are finite (non-finite numbers are emitted as
//! `null`, which JSON cannot represent otherwise). The property tests pin
//! this round-trip.
//!
//! ```
//! use nilm_json::{parse, JsonValue};
//!
//! let doc = JsonValue::object([
//!     ("requests", JsonValue::Number(128.0)),
//!     ("ok", JsonValue::Bool(true)),
//! ]);
//! let text = doc.to_pretty();
//! assert_eq!(parse(&text).unwrap(), doc);
//! assert_eq!(doc.get("requests").and_then(JsonValue::as_f64), Some(128.0));
//! ```

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Objects use a [`BTreeMap`], so emission is deterministic
/// (stable key order) — diffs of committed baselines stay readable.
#[derive(Clone, Debug)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values are emitted as `null`).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with sorted keys.
    Object(BTreeMap<String, JsonValue>),
}

impl PartialEq for JsonValue {
    /// Structural equality; numbers compare by bit pattern, so `-0.0` and
    /// `0.0` are distinct and round-trip checks are exact.
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (JsonValue::Null, JsonValue::Null) => true,
            (JsonValue::Bool(a), JsonValue::Bool(b)) => a == b,
            (JsonValue::Number(a), JsonValue::Number(b)) => a.to_bits() == b.to_bits(),
            (JsonValue::String(a), JsonValue::String(b)) => a == b,
            (JsonValue::Array(a), JsonValue::Array(b)) => a == b,
            (JsonValue::Object(a), JsonValue::Object(b)) => a == b,
            _ => false,
        }
    }
}

impl JsonValue {
    /// Builds an object from key/value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, JsonValue)>) -> JsonValue {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes without any whitespace — the wire format of the gateway.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Looks up `key` when `self` is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractional numbers).
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= usize::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object map, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(map) => Some(map),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            JsonValue::Number(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            JsonValue::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < map.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            JsonValue::Number(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            JsonValue::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum array/object nesting depth [`parse`] accepts. The parser
/// recurses per nesting level, and the gateway feeds it untrusted request
/// bodies — without a cap, a few kilobytes of `[[[[...` would overflow
/// the parsing thread's stack and abort the whole process.
pub const MAX_DEPTH: usize = 128;

/// Parses one JSON document (with nothing but whitespace after it) into a
/// [`JsonValue`]. Duplicate object keys keep the last occurrence;
/// documents nested deeper than [`MAX_DEPTH`] are rejected. Errors carry
/// the byte offset of the first problem.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

/// Checks that `input` is one syntactically valid JSON document (with
/// nothing but whitespace after it). Returns the byte offset of the first
/// error otherwise.
pub fn validate(input: &str) -> Result<(), String> {
    parse(input).map(|_| ())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    match b.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}")),
        Some(b'{') => parse_object(b, pos, depth),
        Some(b'[') => parse_array(b, pos, depth),
        Some(b'"') => parse_string(b, pos).map(JsonValue::String),
        Some(b't') => parse_lit(b, pos, b"true").map(|_| JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, b"false").map(|_| JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, b"null").map(|_| JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#x} at {pos}")),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    // Start of the current run of plain (unescaped) bytes, copied en bloc.
    let mut run = *pos;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                out.push_str(plain_run(b, run, *pos));
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                out.push_str(plain_run(b, run, *pos));
                let esc = b.get(*pos + 1).copied();
                match esc {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = parse_hex4(b, *pos + 2)
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        if (0xD800..0xDC00).contains(&hi) {
                            // High surrogate: must be followed by \uDCxx.
                            if b.get(*pos + 6) == Some(&b'\\') && b.get(*pos + 7) == Some(&b'u') {
                                let lo = parse_hex4(b, *pos + 8)
                                    .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(format!("unpaired surrogate at byte {pos}"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| format!("bad code point at byte {pos}"))?,
                                );
                                *pos += 12;
                                run = *pos;
                                continue;
                            }
                            return Err(format!("unpaired surrogate at byte {pos}"));
                        }
                        if (0xDC00..0xE000).contains(&hi) {
                            return Err(format!("unpaired surrogate at byte {pos}"));
                        }
                        out.push(
                            char::from_u32(hi)
                                .ok_or_else(|| format!("bad code point at byte {pos}"))?,
                        );
                        *pos += 6;
                        run = *pos;
                        continue;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 2;
                run = *pos;
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

/// The input slice `[start, end)` as UTF-8 (always valid: the input is a
/// `&str` and the run contains no escape or quote bytes).
fn plain_run(b: &[u8], start: usize, end: usize) -> &str {
    std::str::from_utf8(&b[start..end]).expect("input is valid UTF-8")
}

fn parse_hex4(b: &[u8], at: usize) -> Option<u32> {
    let h = b.get(at..at + 4)?;
    let mut v = 0u32;
    for &d in h {
        v = v * 16 + (d as char).to_digit(16)?;
    }
    Some(v)
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let first_digit = b.get(*pos).copied();
    let int_digits = eat_digits(b, pos);
    if int_digits == 0 {
        return Err(format!("number without digits at byte {start}"));
    }
    // RFC 8259: int = zero / ( digit1-9 *DIGIT ) — no leading zeros.
    if int_digits > 1 && first_digit == Some(b'0') {
        return Err(format!("leading zero in number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if eat_digits(b, pos) == 0 {
            return Err(format!("missing fraction digits at byte {pos}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if eat_digits(b, pos) == 0 {
            return Err(format!("missing exponent digits at byte {pos}"));
        }
    }
    let text = plain_run(b, start, *pos);
    let n: f64 = text.parse().map_err(|_| format!("unrepresentable number at byte {start}"))?;
    Ok(JsonValue::Number(n))
}

fn eat_digits(b: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    *pos - start
}

fn parse_array(b: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    let mut items = Vec::new();
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(b, pos, depth + 1)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
                skip_ws(b, pos);
            }
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    let mut map = BTreeMap::new();
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(map));
    }
    loop {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        let value = parse_value(b, pos, depth + 1)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
                skip_ws(b, pos);
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitted_documents_validate() {
        let doc = JsonValue::object([
            ("name", JsonValue::String("bench \"x\"\n".into())),
            ("speedup", JsonValue::Number(3.25)),
            ("ok", JsonValue::Bool(true)),
            ("items", JsonValue::Array(vec![JsonValue::Number(1.0), JsonValue::Null])),
            ("empty", JsonValue::Object(BTreeMap::new())),
        ]);
        let text = doc.to_pretty();
        validate(&text).expect("emitted JSON must parse");
        assert_eq!(parse(&text).unwrap(), doc);
        assert_eq!(parse(&doc.to_compact()).unwrap(), doc);
    }

    #[test]
    fn validator_accepts_rfc_examples() {
        for ok in [
            "null",
            " true ",
            "-12.5e+3",
            "[]",
            "[1, 2, [3]]",
            r#"{"a": {"b": [1, "two", null]}, "c": false}"#,
            r#""esc: \" \\ \n é""#,
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok:?} rejected: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "01a",
            "01",
            "-012.5",
            "\"unterminated",
            "{\"a\": 1} extra",
            "nul",
            "1. ",
            "\"\\ud800\"",
            "\"\\udc00 lone low\"",
            "\"\\ud800\\u0061\"",
            "\"bad \\x escape\"",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn parser_decodes_escapes_and_surrogate_pairs() {
        let v = parse(r#""a\u0041 \ud83d\ude00 \n\t\/ \"q\"""#).unwrap();
        assert_eq!(v.as_str(), Some("aA 😀 \n\t/ \"q\""));
        let v = parse("[-0.5e2, 0, 1e-3]").unwrap();
        let nums: Vec<f64> = v.as_array().unwrap().iter().map(|n| n.as_f64().unwrap()).collect();
        assert_eq!(nums, vec![-50.0, 0.0, 0.001]);
    }

    #[test]
    fn duplicate_keys_keep_the_last_occurrence() {
        let v = parse(r#"{"a": 1, "a": 2}"#).unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_f64), Some(2.0));
    }

    #[test]
    fn accessors_select_the_right_variants() {
        let doc = parse(r#"{"n": 3, "s": "x", "b": true, "a": [1], "o": {}, "z": null}"#).unwrap();
        assert_eq!(doc.get("n").and_then(JsonValue::as_usize), Some(3));
        assert_eq!(doc.get("s").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(doc.get("b").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(doc.get("a").and_then(JsonValue::as_array).map(<[_]>::len), Some(1));
        assert!(doc.get("o").and_then(JsonValue::as_object).is_some());
        assert!(doc.get("z").is_some_and(JsonValue::is_null));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(parse("2.5").unwrap().as_usize(), None, "fractional is not an index");
        assert_eq!(parse("-1").unwrap().as_usize(), None, "negative is not an index");
    }

    #[test]
    fn hostile_nesting_is_rejected_not_a_stack_overflow() {
        // Untrusted gateway bodies reach this parser; a depth bomb must be
        // a parse error, never a process-aborting stack overflow.
        for (open, close) in [("[", "]"), ("{\"k\":", "}")] {
            let deep = format!("{}1{}", open.repeat(100_000), close.repeat(100_000));
            let err = parse(&deep).expect_err("depth bomb must be rejected");
            assert!(err.contains("nesting"), "{err}");
        }
        // ... while legitimate nesting under the cap still parses.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        parse(&ok).expect("nesting at the cap is fine");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let doc = JsonValue::Number(f64::NAN);
        assert_eq!(doc.to_pretty(), "null\n");
        assert_eq!(doc.to_compact(), "null");
    }
}
