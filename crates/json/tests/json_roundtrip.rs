//! Round-trip property tests: `parse(emit(x)) == x` for arbitrary finite
//! JSON trees, through both the pretty and the compact emitter.

use nilm_json::{parse, validate, JsonValue};
use proptest::prelude::*;
use proptest::rand::rngs::StdRng;
use proptest::rand::Rng as _;
use std::collections::BTreeMap;

/// Generates arbitrary JSON trees of bounded depth. The vendored proptest
/// has no tuple strategies, so this is a hand-rolled [`Strategy`]: leaves
/// cover null/bool/number/string (numbers span integers, magnitudes and
/// signed zero; strings span the whole BMP, control characters, quotes and
/// backslashes included), inner nodes are arrays and objects of up to 5
/// children.
#[derive(Clone, Copy, Debug)]
struct JsonTree {
    depth: u32,
}

fn random_number(rng: &mut StdRng) -> f64 {
    match rng.random_range(0..7u32) {
        0 => rng.random_range(-1_000_000i64..1_000_000) as f64,
        1 => rng.random_range(-1.0e12f64..1.0e12),
        2 => rng.random_range(-1.0f64..1.0) * 1e-9,
        3 => 0.0,
        4 => -0.0,
        5 => f64::MAX,
        _ => f64::MIN_POSITIVE,
    }
}

fn random_string(rng: &mut StdRng) -> String {
    let len = rng.random_range(0..12usize);
    (0..len)
        .map(|_| {
            let cp = rng.random_range(0u32..0xFFFF);
            // Surrogate code points are not chars; fold them to U+FFFD.
            char::from_u32(cp).unwrap_or('\u{FFFD}')
        })
        .collect()
}

fn random_value(rng: &mut StdRng, depth: u32) -> JsonValue {
    let leaf_only = depth == 0;
    match rng.random_range(0..if leaf_only { 5u32 } else { 7 }) {
        0 => JsonValue::Null,
        1 => JsonValue::Bool(rng.random_range(0..2u32) == 1),
        2 => JsonValue::Number(random_number(rng)),
        3 => JsonValue::String(random_string(rng)),
        4 => JsonValue::Array(Vec::new()),
        5 => {
            let n = rng.random_range(0..5usize);
            JsonValue::Array((0..n).map(|_| random_value(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.random_range(0..5usize);
            let map: BTreeMap<String, JsonValue> =
                (0..n).map(|_| (random_string(rng), random_value(rng, depth - 1))).collect();
            JsonValue::Object(map)
        }
    }
}

impl Strategy for JsonTree {
    type Value = JsonValue;

    fn sample(&self, rng: &mut StdRng) -> JsonValue {
        random_value(rng, self.depth)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Pretty emission round-trips exactly.
    #[test]
    fn pretty_round_trips(doc in JsonTree { depth: 3 }) {
        let text = doc.to_pretty();
        let back = parse(&text)
            .map_err(|e| TestCaseError::Fail(format!("emitted doc rejected: {e}\n{text}")))?;
        prop_assert_eq!(back, doc);
    }

    /// Compact emission round-trips exactly and stays valid.
    #[test]
    fn compact_round_trips(doc in JsonTree { depth: 3 }) {
        let text = doc.to_compact();
        prop_assert!(validate(&text).is_ok());
        let back = parse(&text)
            .map_err(|e| TestCaseError::Fail(format!("emitted doc rejected: {e}")))?;
        prop_assert_eq!(back, doc);
    }
}
