//! Event-level metrics: instead of scoring every timestep independently,
//! score whole *activations* (maximal ON-runs), as commonly reported in the
//! NILM literature. A predicted event matches a true event when their
//! intervals overlap by at least `min_overlap` (Jaccard).

/// A maximal ON-run `[start, end)` in a binary status sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// First ON sample.
    pub start: usize,
    /// One past the last ON sample.
    pub end: usize,
}

impl Event {
    /// Number of samples covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the event covers no samples (never produced by extraction).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Jaccard overlap (intersection over union) with another event.
    pub fn jaccard(&self, other: &Event) -> f64 {
        let inter_start = self.start.max(other.start);
        let inter_end = self.end.min(other.end);
        let inter = inter_end.saturating_sub(inter_start);
        let union = self.len() + other.len() - inter;
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }
}

/// Extracts maximal ON-runs from a binary status sequence.
pub fn extract_events(status: &[u8]) -> Vec<Event> {
    let mut events = Vec::new();
    let mut start = None;
    for (i, &s) in status.iter().enumerate() {
        match (s != 0, start) {
            (true, None) => start = Some(i),
            (false, Some(s0)) => {
                events.push(Event { start: s0, end: i });
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s0) = start {
        events.push(Event { start: s0, end: status.len() });
    }
    events
}

/// Event-level precision/recall/F1: greedy one-to-one matching of predicted
/// events to true events by decreasing Jaccard, counting a match when
/// overlap >= `min_overlap`.
pub fn event_f1(pred: &[u8], truth: &[u8], min_overlap: f64) -> (f64, f64, f64) {
    assert_eq!(pred.len(), truth.len(), "event_f1 length mismatch");
    let pred_events = extract_events(pred);
    let true_events = extract_events(truth);
    if pred_events.is_empty() && true_events.is_empty() {
        return (1.0, 1.0, 1.0);
    }
    // All candidate pairs above the threshold, best overlaps first.
    let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
    for (pi, p) in pred_events.iter().enumerate() {
        for (ti, t) in true_events.iter().enumerate() {
            let j = p.jaccard(t);
            if j >= min_overlap {
                pairs.push((pi, ti, j));
            }
        }
    }
    pairs.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    let mut used_pred = vec![false; pred_events.len()];
    let mut used_true = vec![false; true_events.len()];
    let mut matches = 0usize;
    for (pi, ti, _) in pairs {
        if !used_pred[pi] && !used_true[ti] {
            used_pred[pi] = true;
            used_true[ti] = true;
            matches += 1;
        }
    }
    let precision =
        if pred_events.is_empty() { 1.0 } else { matches as f64 / pred_events.len() as f64 };
    let recall =
        if true_events.is_empty() { 1.0 } else { matches as f64 / true_events.len() as f64 };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    (precision, recall, f1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_runs_including_trailing() {
        let events = extract_events(&[0, 1, 1, 0, 1]);
        assert_eq!(events, vec![Event { start: 1, end: 3 }, Event { start: 4, end: 5 }]);
    }

    #[test]
    fn empty_status_has_no_events() {
        assert!(extract_events(&[0, 0, 0]).is_empty());
        assert!(extract_events(&[]).is_empty());
    }

    #[test]
    fn jaccard_identity_is_one() {
        let e = Event { start: 3, end: 9 };
        assert_eq!(e.jaccard(&e), 1.0);
    }

    #[test]
    fn jaccard_disjoint_is_zero() {
        let a = Event { start: 0, end: 2 };
        let b = Event { start: 5, end: 8 };
        assert_eq!(a.jaccard(&b), 0.0);
    }

    #[test]
    fn perfect_event_match() {
        let s = [0, 1, 1, 0, 0, 1, 0];
        let (p, r, f1) = event_f1(&s, &s, 0.5);
        assert_eq!((p, r, f1), (1.0, 1.0, 1.0));
    }

    #[test]
    fn shifted_event_fails_strict_overlap() {
        let truth = [1, 1, 1, 0, 0, 0];
        let pred = [0, 0, 0, 1, 1, 1];
        let (_, _, f1) = event_f1(&pred, &truth, 0.3);
        assert_eq!(f1, 0.0);
    }

    #[test]
    fn partial_overlap_counts_with_loose_threshold() {
        let truth = [1, 1, 1, 1, 0, 0];
        let pred = [0, 0, 1, 1, 1, 1];
        // Overlap 2, union 6 -> Jaccard 1/3.
        let (_, _, strict) = event_f1(&pred, &truth, 0.5);
        assert_eq!(strict, 0.0);
        let (_, _, loose) = event_f1(&pred, &truth, 0.3);
        assert_eq!(loose, 1.0);
    }

    #[test]
    fn greedy_matching_is_one_to_one() {
        // Two predicted events overlap the same true event; only one match.
        let truth = [1, 1, 1, 1, 1, 1, 0, 0];
        let pred = [1, 1, 0, 1, 1, 1, 0, 0];
        let (p, r, _) = event_f1(&pred, &truth, 0.1);
        assert_eq!(r, 1.0);
        assert_eq!(p, 0.5);
    }

    #[test]
    fn both_empty_is_perfect() {
        let (p, r, f1) = event_f1(&[0, 0], &[0, 0], 0.5);
        assert_eq!((p, r, f1), (1.0, 1.0, 1.0));
    }
}
