//! # nilm-metrics
//!
//! Evaluation metrics used by the CamAL paper (§V-D):
//!
//! - **Localization / detection quality**: F1 score (precision, recall) on
//!   binary status sequences, and Balanced Accuracy for the detection task.
//! - **Energy estimation quality**: MAE, RMSE, and the Matching Ratio (MR),
//!   the overlap-based indicator the paper cites as the best disaggregation
//!   measure: `MR = Σ min(ŷ, y) / Σ max(ŷ, y)`.

pub mod classification;
pub mod energy;
pub mod events;

pub use classification::{balanced_accuracy, confusion, f1_score, ClassificationReport, Confusion};
pub use energy::{mae, matching_ratio, rmse, EnergyReport};
pub use events::{event_f1, extract_events, Event};
