//! # nilm-metrics
//!
//! Evaluation metrics used by the CamAL paper (§V-D):
//!
//! - **Localization / detection quality**: F1 score (precision, recall) on
//!   binary status sequences, and Balanced Accuracy for the detection task.
//! - **Energy estimation quality**: MAE, RMSE, and the Matching Ratio (MR),
//!   the overlap-based indicator the paper cites as the best disaggregation
//!   measure: `MR = Σ min(ŷ, y) / Σ max(ŷ, y)`.
//!
//! ## Example
//!
//! ```
//! use nilm_metrics::{f1_score, matching_ratio};
//!
//! let truth = [0u8, 1, 1, 1, 0, 0];
//! let pred = [0u8, 1, 1, 0, 0, 0];
//! assert!((f1_score(&pred, &truth) - 0.8).abs() < 1e-9);
//!
//! // A perfect power trace reconstruction has MR = 1.
//! let watts = [0.0f32, 2000.0, 1950.0, 0.0];
//! assert_eq!(matching_ratio(&watts, &watts), 1.0);
//! ```

pub mod classification;
pub mod energy;
pub mod events;

pub use classification::{balanced_accuracy, confusion, f1_score, ClassificationReport, Confusion};
pub use energy::{mae, matching_ratio, rmse, EnergyReport};
pub use events::{event_f1, extract_events, Event};
