//! Energy-estimation metrics: MAE, RMSE and the Matching Ratio.

/// Mean absolute error between predicted and true power (Watts).
pub fn mae(pred: &[f32], truth: &[f32]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "mae length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    let sum: f64 = pred.iter().zip(truth).map(|(&p, &t)| (p - t).abs() as f64).sum();
    sum / pred.len() as f64
}

/// Root mean squared error between predicted and true power (Watts).
pub fn rmse(pred: &[f32], truth: &[f32]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "rmse length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    let sum: f64 = pred
        .iter()
        .zip(truth)
        .map(|(&p, &t)| {
            let d = (p - t) as f64;
            d * d
        })
        .sum();
    (sum / pred.len() as f64).sqrt()
}

/// Matching Ratio (paper §V-D, citing Mayhorn et al.):
/// `MR = Σ_t min(ŷ_t, y_t) / Σ_t max(ŷ_t, y_t)`.
///
/// Returns 1.0 when both signals are identically zero (perfect trivial
/// match) and lies in `[0, 1]` for non-negative inputs.
pub fn matching_ratio(pred: &[f32], truth: &[f32]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "matching ratio length mismatch");
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (&p, &t) in pred.iter().zip(truth) {
        let p = p.max(0.0) as f64;
        let t = t.max(0.0) as f64;
        num += p.min(t);
        den += p.max(t);
    }
    if den == 0.0 {
        1.0
    } else {
        num / den
    }
}

/// The energy metrics bundle reported in Table III.
#[derive(Clone, Copy, Debug, Default)]
pub struct EnergyReport {
    /// Mean absolute error (W).
    pub mae: f64,
    /// Root mean squared error (W).
    pub rmse: f64,
    /// Matching ratio in [0, 1].
    pub matching_ratio: f64,
}

impl EnergyReport {
    /// Computes all three energy metrics.
    pub fn compute(pred: &[f32], truth: &[f32]) -> Self {
        EnergyReport {
            mae: mae(pred, truth),
            rmse: rmse(pred, truth),
            matching_ratio: matching_ratio(pred, truth),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_rmse_known_values() {
        let pred = [1.0, 2.0, 3.0];
        let truth = [1.0, 4.0, 7.0];
        assert!((mae(&pred, &truth) - 2.0).abs() < 1e-12);
        // RMSE = sqrt((0 + 4 + 16) / 3)
        assert!((rmse(&pred, &truth) - (20.0f64 / 3.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn identical_signals_are_perfect() {
        let x = [0.0, 5.0, 10.0];
        assert_eq!(mae(&x, &x), 0.0);
        assert_eq!(rmse(&x, &x), 0.0);
        assert_eq!(matching_ratio(&x, &x), 1.0);
    }

    #[test]
    fn matching_ratio_half_overlap() {
        // pred 100 everywhere, truth 200 everywhere: min/max = 0.5.
        let pred = [100.0; 4];
        let truth = [200.0; 4];
        assert!((matching_ratio(&pred, &truth) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn matching_ratio_disjoint_is_zero() {
        let pred = [100.0, 0.0];
        let truth = [0.0, 100.0];
        assert_eq!(matching_ratio(&pred, &truth), 0.0);
    }

    #[test]
    fn matching_ratio_all_zero_is_one() {
        assert_eq!(matching_ratio(&[0.0; 3], &[0.0; 3]), 1.0);
    }

    #[test]
    fn matching_ratio_is_symmetric() {
        let a = [10.0, 30.0, 0.0, 5.0];
        let b = [20.0, 10.0, 2.0, 5.0];
        assert!((matching_ratio(&a, &b) - matching_ratio(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(mae(&[], &[]), 0.0);
        assert_eq!(rmse(&[], &[]), 0.0);
        assert_eq!(matching_ratio(&[], &[]), 1.0);
    }

    #[test]
    fn report_bundles_all_metrics() {
        let r = EnergyReport::compute(&[100.0], &[50.0]);
        assert_eq!(r.mae, 50.0);
        assert_eq!(r.rmse, 50.0);
        assert!((r.matching_ratio - 0.5).abs() < 1e-12);
    }
}
