//! Binary classification metrics on status sequences.

/// Confusion-matrix counts for a binary problem.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Confusion {
    /// True positives.
    pub tp: u64,
    /// False positives.
    pub fp: u64,
    /// True negatives.
    pub tn: u64,
    /// False negatives.
    pub fn_: u64,
}

impl Confusion {
    /// Accumulates one (prediction, truth) pair.
    pub fn push(&mut self, pred: bool, truth: bool) {
        match (pred, truth) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, false) => self.tn += 1,
            (false, true) => self.fn_ += 1,
        }
    }

    /// Merges counts from another confusion matrix.
    pub fn merge(&mut self, other: &Confusion) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }

    /// Total number of accumulated pairs.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Precision of the positive class (1.0 when no positive predictions —
    /// the vacuous case; F1 below still collapses to 0 when tp == 0 and
    /// there are positives to find).
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            if self.fn_ == 0 {
                1.0
            } else {
                0.0
            }
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall of the positive class (1.0 when there are no positives).
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            1.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// F1 score: harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Balanced accuracy: `(TPR + TNR) / 2`, robust to class imbalance
    /// (paper §V-D uses it for appliance detection).
    pub fn balanced_accuracy(&self) -> f64 {
        let tpr = if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        };
        let tnr =
            if self.tn + self.fp == 0 { 1.0 } else { self.tn as f64 / (self.tn + self.fp) as f64 };
        0.5 * (tpr + tnr)
    }

    /// Plain accuracy.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            1.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }
}

/// Builds a confusion matrix from parallel binary slices.
pub fn confusion(pred: &[u8], truth: &[u8]) -> Confusion {
    assert_eq!(pred.len(), truth.len(), "confusion length mismatch");
    let mut c = Confusion::default();
    for (&p, &t) in pred.iter().zip(truth) {
        c.push(p != 0, t != 0);
    }
    c
}

/// F1 score of the positive class over parallel binary slices.
pub fn f1_score(pred: &[u8], truth: &[u8]) -> f64 {
    confusion(pred, truth).f1()
}

/// Balanced accuracy over parallel binary slices.
pub fn balanced_accuracy(pred: &[u8], truth: &[u8]) -> f64 {
    confusion(pred, truth).balanced_accuracy()
}

/// A bundle of the classification metrics the paper reports.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClassificationReport {
    /// F1 of the positive class.
    pub f1: f64,
    /// Precision of the positive class.
    pub precision: f64,
    /// Recall of the positive class.
    pub recall: f64,
    /// Balanced accuracy.
    pub balanced_accuracy: f64,
}

impl ClassificationReport {
    /// Computes all metrics from a confusion matrix.
    pub fn from_confusion(c: &Confusion) -> Self {
        ClassificationReport {
            f1: c.f1(),
            precision: c.precision(),
            recall: c.recall(),
            balanced_accuracy: c.balanced_accuracy(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let c = confusion(&[1, 0, 1, 0], &[1, 0, 1, 0]);
        assert_eq!(c.f1(), 1.0);
        assert_eq!(c.balanced_accuracy(), 1.0);
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    fn all_wrong() {
        let c = confusion(&[1, 1, 0, 0], &[0, 0, 1, 1]);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.balanced_accuracy(), 0.0);
    }

    #[test]
    fn known_confusion_values() {
        // tp=2, fp=1, fn=1, tn=1 -> P=2/3, R=2/3, F1=2/3.
        let c = confusion(&[1, 1, 1, 0, 0], &[1, 1, 0, 1, 0]);
        assert_eq!(c, Confusion { tp: 2, fp: 1, tn: 1, fn_: 1 });
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_accuracy_handles_imbalance() {
        // Majority-negative data; constant-0 predictor gets BalAcc 0.5.
        let truth = [1, 0, 0, 0, 0, 0, 0, 0];
        let pred = [0; 8];
        assert!((balanced_accuracy(&pred, &truth) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_vacuous() {
        let c = confusion(&[], &[]);
        assert_eq!(c.f1(), 1.0); // no positives anywhere: vacuously perfect
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    fn no_positive_predictions_with_positives_present_is_zero_f1() {
        let c = confusion(&[0, 0, 0], &[1, 1, 0]);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = confusion(&[1], &[1]);
        let b = confusion(&[0], &[1]);
        a.merge(&b);
        assert_eq!(a, Confusion { tp: 1, fp: 0, tn: 0, fn_: 1 });
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_lengths() {
        let _ = confusion(&[1], &[1, 0]);
    }
}
