//! Cross-module contracts of the fleet-serving subsystem: the registry
//! round-trips checkpoints lazily, the single-appliance fleet is
//! bit-identical to `camal::stream::serve`, sharding across worker threads
//! is invisible in the output, and the shared preprocessing pass scores the
//! same windows the single-appliance service does.

use camal::ensemble::EnsembleMember;
use camal::fleet::{serve_fleet, FleetConfig};
use camal::registry::{ModelKey, ModelRegistry};
use camal::stream::{serve, HouseholdSeries, StreamConfig};
use camal::{CamalConfig, CamalModel};
use nilm_data::prelude::*;
use nilm_models::{build_from_spec, BackboneSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

const WINDOW: usize = 32;

fn random_model(kernels: &[usize], seed: u64) -> CamalModel {
    let cfg = CamalConfig {
        n_ensemble: kernels.len(),
        kernels: kernels.to_vec(),
        trials: 1,
        width_div: 16,
        ..Default::default()
    };
    let members = kernels
        .iter()
        .enumerate()
        .map(|(i, &k)| {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(97 * i as u64));
            let spec = BackboneSpec::ResNet { kernel: k, width_div: cfg.width_div };
            EnsembleMember { net: build_from_spec(&mut rng, spec), spec, val_loss: 0.3 + i as f32 }
        })
        .collect();
    let mut model = CamalModel::from_members(cfg, members);
    model.set_window(WINDOW);
    model
}

/// An untrained heterogeneous model: a ResNet member plus a TransApp member,
/// as a mixed-candidate sweep would select.
fn random_mixed_model(seed: u64) -> CamalModel {
    let specs = [
        BackboneSpec::ResNet { kernel: 5, width_div: 16 },
        BackboneSpec::TransApp { d_model: 16, heads: 2, d_ff: 32, layers: 1, downsample: 4 },
    ];
    let cfg = CamalConfig {
        n_ensemble: specs.len(),
        kernels: vec![5],
        candidates: vec![specs[1]],
        trials: 1,
        width_div: 16,
        ..Default::default()
    };
    let members = specs
        .iter()
        .enumerate()
        .map(|(i, &spec)| {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(31 * i as u64));
            EnsembleMember { net: build_from_spec(&mut rng, spec), spec, val_loss: 0.3 + i as f32 }
        })
        .collect();
    let mut model = CamalModel::from_members(cfg, members);
    model.set_window(WINDOW);
    model
}

/// A household with spiky plateaus and one unfillable NaN gap, so the
/// shared pass must exercise the window-skip path too.
fn gappy_household(n_windows: usize, seed: u64) -> HouseholdSeries {
    let mut rng = nilm_tensor::init::rng(seed);
    let n = n_windows * WINDOW + 3;
    let mut values = Vec::with_capacity(n);
    for t in 0..n {
        let plateau = (t / 10) % 4 == (seed % 3) as usize;
        let base = if plateau { 2100.0 } else { 110.0 };
        values.push(base + nilm_tensor::init::randn(&mut rng).abs() * 20.0);
    }
    if n_windows > 2 {
        // Poison the second window beyond any forward-fill bound.
        for v in values[WINDOW + 4..WINDOW + 24].iter_mut() {
            *v = f32::NAN;
        }
    }
    HouseholdSeries { id: format!("fleet-h{seed}"), series: TimeSeries::new(values, 60) }
}

fn f32_bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|p| p.to_bits()).collect()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("camal_fleet_it_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The headline equivalence: a fleet with exactly one registered appliance
/// reproduces `stream::serve` bit-for-bit — statuses, priors, detection
/// probabilities, power estimates and coverage bookkeeping.
#[test]
fn fleet_of_one_is_bit_identical_to_stream_serve() {
    let key = ModelKey::new(DatasetId::Refit, ApplianceKind::Dishwasher);
    let avg_power_w = template(key.dataset).case(key.appliance).unwrap().avg_power_w;
    let mut model = random_model(&[5, 7], 51);
    let households: Vec<HouseholdSeries> =
        (0..3).map(|i| gappy_household(4 + i, 60 + i as u64)).collect();
    let stream_cfg = StreamConfig {
        window: WINDOW,
        step_s: 60,
        max_ffill_s: 120,
        batch: 5, // unaligned with window counts on purpose
        appliance: Some(key.appliance),
        avg_power_w,
    };
    let solo = serve(&mut model, &households, &stream_cfg);

    let mut registry = ModelRegistry::unbounded();
    registry.insert(key, model);
    let fleet_cfg =
        FleetConfig { step_s: 60, max_ffill_s: 120, batch: 5, threads: 1, apply_priors: true };
    let fleet = serve_fleet(&mut registry, &[key], &households, &fleet_cfg).unwrap();

    assert_eq!(fleet.summary.feed_windows_scored, solo.iter().map(|t| t.windows_scored).sum());
    for (hi, tl) in solo.iter().enumerate() {
        let ftl = fleet.timeline(hi, key).expect("fleet covers every household");
        assert_eq!(ftl.id, tl.id);
        assert_eq!(ftl.raw_status, tl.raw_status, "pre-prior status differs at household {hi}");
        assert_eq!(ftl.status, tl.status, "post-prior status differs at household {hi}");
        assert_eq!(f32_bits(&ftl.detection_proba), f32_bits(&tl.detection_proba));
        assert_eq!(f32_bits(&ftl.power_w), f32_bits(&tl.power_w));
        assert_eq!(ftl.scored_starts, tl.scored_starts);
        assert_eq!(
            (ftl.windows_total, ftl.windows_scored, ftl.windows_detected),
            (tl.windows_total, tl.windows_scored, tl.windows_detected)
        );
    }
}

/// Sharding invariance: the same fleet served with 1 and 4 worker threads
/// produces identical per-household, per-appliance timelines — thread count
/// is a throughput knob, never a semantics knob.
#[test]
fn worker_thread_count_is_invisible_in_fleet_output() {
    let keys = [
        ModelKey::new(DatasetId::Refit, ApplianceKind::Kettle),
        ModelKey::new(DatasetId::UkDale, ApplianceKind::Dishwasher),
        ModelKey::new(DatasetId::Refit, ApplianceKind::Microwave),
    ];
    let mut registry = ModelRegistry::unbounded();
    for (i, &key) in keys.iter().enumerate() {
        registry.insert(key, random_model(&[5 + 2 * (i % 2)], 70 + i as u64));
    }
    let households: Vec<HouseholdSeries> =
        (0..6).map(|i| gappy_household(3 + i % 4, 80 + i as u64)).collect();
    let base =
        FleetConfig { step_s: 60, max_ffill_s: 120, batch: 4, threads: 1, apply_priors: true };
    let one = serve_fleet(&mut registry, &keys, &households, &base).unwrap();
    let four = serve_fleet(&mut registry, &keys, &households, &FleetConfig { threads: 4, ..base })
        .unwrap();

    assert_eq!(one.summary.shards, 1);
    assert!(four.summary.shards > 1, "6 households over 4 threads must use several shards");
    assert_eq!(one.summary.inferences, four.summary.inferences);
    assert_eq!(one.households.len(), four.households.len());
    for (a, b) in one.households.iter().zip(&four.households) {
        assert_eq!(a.id, b.id, "household order must be preserved across shards");
        for (ta, tb) in a.timelines.iter().zip(&b.timelines) {
            assert_eq!(ta.raw_status, tb.raw_status);
            assert_eq!(ta.status, tb.status);
            assert_eq!(f32_bits(&ta.detection_proba), f32_bits(&tb.detection_proba));
            assert_eq!(f32_bits(&ta.power_w), f32_bits(&tb.power_w));
        }
    }
}

/// Sharding invariance holds for a heterogeneous zoo too: mixing TransApp
/// members into some of the fleet's models must not open any thread-count
/// dependence, and a mixed fleet-of-one still reproduces `stream::serve`
/// bit-for-bit.
#[test]
fn mixed_backbone_zoo_is_shard_invariant_and_matches_stream_serve() {
    let keys = [
        ModelKey::new(DatasetId::Refit, ApplianceKind::Kettle),
        ModelKey::new(DatasetId::UkDale, ApplianceKind::Dishwasher),
        ModelKey::new(DatasetId::Refit, ApplianceKind::Microwave),
    ];
    let mut registry = ModelRegistry::unbounded();
    registry.insert(keys[0], random_mixed_model(71));
    registry.insert(keys[1], random_model(&[5], 72)); // pure ResNet neighbour
    registry.insert(keys[2], random_mixed_model(73));
    let households: Vec<HouseholdSeries> =
        (0..6).map(|i| gappy_household(3 + i % 4, 180 + i as u64)).collect();
    let base =
        FleetConfig { step_s: 60, max_ffill_s: 120, batch: 4, threads: 1, apply_priors: true };
    let one = serve_fleet(&mut registry, &keys, &households, &base).unwrap();
    let four = serve_fleet(&mut registry, &keys, &households, &FleetConfig { threads: 4, ..base })
        .unwrap();
    assert!(four.summary.shards > 1, "6 households over 4 threads must use several shards");
    for (a, b) in one.households.iter().zip(&four.households) {
        assert_eq!(a.id, b.id);
        for (ta, tb) in a.timelines.iter().zip(&b.timelines) {
            assert_eq!(ta.raw_status, tb.raw_status);
            assert_eq!(ta.status, tb.status);
            assert_eq!(f32_bits(&ta.detection_proba), f32_bits(&tb.detection_proba));
            assert_eq!(f32_bits(&ta.power_w), f32_bits(&tb.power_w));
        }
    }

    // Mixed fleet-of-one vs direct stream::serve, bit-for-bit.
    let key = keys[0];
    let avg_power_w = template(key.dataset).case(key.appliance).unwrap().avg_power_w;
    let mut solo_model = random_mixed_model(71);
    let stream_cfg = StreamConfig {
        window: WINDOW,
        step_s: 60,
        max_ffill_s: 120,
        batch: 5,
        appliance: Some(key.appliance),
        avg_power_w,
    };
    let solo = serve(&mut solo_model, &households, &stream_cfg);
    let fleet_cfg = FleetConfig { batch: 5, ..base };
    let fleet = serve_fleet(&mut registry, &[key], &households, &fleet_cfg).unwrap();
    for (hi, tl) in solo.iter().enumerate() {
        let ftl = fleet.timeline(hi, key).expect("fleet covers every household");
        assert_eq!(ftl.raw_status, tl.raw_status, "mixed stream/fleet divergence at {hi}");
        assert_eq!(ftl.status, tl.status);
        assert_eq!(f32_bits(&ftl.detection_proba), f32_bits(&tl.detection_proba));
        assert_eq!(f32_bits(&ftl.power_w), f32_bits(&tl.power_w));
    }
}

/// End-to-end zoo flow: save per-appliance checkpoints, discover them with
/// `register_dir`, lazily load through a bounded registry while serving,
/// and verify the served output matches the in-memory models.
#[test]
fn checkpoint_zoo_roundtrips_through_bounded_registry() {
    let dir = temp_dir("zoo");
    let keys = [
        ModelKey::new(DatasetId::Refit, ApplianceKind::Kettle),
        ModelKey::new(DatasetId::UkDale, ApplianceKind::Microwave),
    ];
    let mut in_memory = ModelRegistry::unbounded();
    for (i, &key) in keys.iter().enumerate() {
        let mut model = random_model(&[7], 90 + i as u64);
        model.save(dir.join(key.file_name())).unwrap();
        in_memory.insert(key, model);
    }

    let mut from_disk = ModelRegistry::new(1);
    let found = from_disk.register_dir(&dir).unwrap();
    assert_eq!(found.len(), 2);
    assert_eq!(from_disk.loaded_count(), 0, "register_dir must stay lazy");

    let households = vec![gappy_household(4, 100), gappy_household(5, 101)];
    let cfg =
        FleetConfig { step_s: 60, max_ffill_s: 120, batch: 8, threads: 2, apply_priors: true };
    let a = serve_fleet(&mut in_memory, &keys, &households, &cfg).unwrap();
    let b = serve_fleet(&mut from_disk, &keys, &households, &cfg).unwrap();
    for (ha, hb) in a.households.iter().zip(&b.households) {
        for (ta, tb) in ha.timelines.iter().zip(&hb.timelines) {
            assert_eq!(ta.raw_status, tb.raw_status);
            assert_eq!(f32_bits(&ta.power_w), f32_bits(&tb.power_w));
        }
    }
    // The budget of 1 forced an eviction while snapshotting both models.
    assert!(from_disk.loaded_count() <= 1);
    assert!(from_disk.stats().evictions >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The fleet scenario generator feeds straight into the scheduler: every
/// simulated household gets a timeline per registered appliance, even for
/// appliances the household does not own (the detector simply reports what
/// it sees).
#[test]
fn fleet_scenario_households_serve_end_to_end() {
    let keys = [
        ModelKey::new(DatasetId::Refit, ApplianceKind::Kettle),
        ModelKey::new(DatasetId::UkDale, ApplianceKind::Dishwasher),
    ];
    let mut registry = ModelRegistry::unbounded();
    for (i, &key) in keys.iter().enumerate() {
        registry.insert(key, random_model(&[5], 110 + i as u64));
    }
    let scenario = generate_fleet_scenario(&[DatasetId::Refit, DatasetId::UkDale], 2, 1, 7);
    let households: Vec<HouseholdSeries> = scenario
        .iter()
        .map(|fh| HouseholdSeries { id: fh.label(), series: fh.house.aggregate.clone() })
        .collect();
    let cfg =
        FleetConfig { step_s: 60, max_ffill_s: 180, batch: 16, threads: 2, apply_priors: true };
    let out = serve_fleet(&mut registry, &keys, &households, &cfg).unwrap();
    assert_eq!(out.households.len(), 4);
    for (hh, fh) in out.households.iter().zip(&scenario) {
        assert_eq!(hh.id, fh.label());
        assert_eq!(hh.timelines.len(), keys.len());
        for tl in &hh.timelines {
            assert_eq!(tl.raw_status.len(), fh.house.aggregate.len());
            assert_eq!(tl.power_w.len(), tl.status.len());
        }
    }
    assert!(out.summary.windows_per_second > 0.0);
}
