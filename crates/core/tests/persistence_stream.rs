//! Cross-module properties of the persistence + streaming subsystem:
//! checkpoint round-trips are bit-identical for every backbone/kernel
//! combination, every structural corruption is rejected, and the streaming
//! service is output-equivalent to the windowed batch API.

use camal::ensemble::EnsembleMember;
use camal::stream::{serve, HouseholdSeries, StreamConfig};
use camal::{CamalConfig, CamalModel};
use nilm_data::preprocess::Window;
use nilm_data::series::TimeSeries;
use nilm_data::windows::WindowSet;
use nilm_models::{build_from_spec, Backbone, BackboneSpec};
use nilm_tensor::tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const WINDOW: usize = 32;

/// A model with randomly initialized (untrained) members — weights are
/// arbitrary, which is exactly what a round-trip test wants.
fn random_model(backbone: Backbone, kernels: &[usize], seed: u64) -> CamalModel {
    let cfg = CamalConfig {
        n_ensemble: kernels.len(),
        kernels: kernels.to_vec(),
        trials: 1,
        width_div: 16,
        backbone,
        ..Default::default()
    };
    let members = kernels
        .iter()
        .enumerate()
        .map(|(i, &k)| {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64));
            let spec = BackboneSpec::from_kernel(backbone, k, cfg.width_div);
            EnsembleMember { net: build_from_spec(&mut rng, spec), spec, val_loss: 0.5 + i as f32 }
        })
        .collect();
    CamalModel::from_members(cfg, members)
}

/// A model with randomly initialized members over an arbitrary spec mix.
fn random_mixed_model(specs: &[BackboneSpec], seed: u64) -> CamalModel {
    let cfg = CamalConfig {
        n_ensemble: specs.len(),
        kernels: Vec::new(),
        candidates: specs.to_vec(),
        trials: 1,
        ..Default::default()
    };
    let members = specs
        .iter()
        .enumerate()
        .map(|(i, &spec)| {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64));
            EnsembleMember { net: build_from_spec(&mut rng, spec), spec, val_loss: 0.5 + i as f32 }
        })
        .collect();
    let mut model = CamalModel::from_members(cfg, members);
    model.set_window(WINDOW);
    model
}

/// Deterministic pseudo-random `[b, 1, WINDOW]` batch.
fn probe_batch(b: usize, seed: u64) -> Tensor {
    let mut rng = nilm_tensor::init::rng(seed);
    nilm_tensor::init::randn_tensor(&mut rng, &[b, 1, WINDOW], 1.0)
}

fn f32_bits(rows: &[Vec<f32>]) -> Vec<Vec<u32>> {
    rows.iter().map(|r| r.iter().map(|v| v.to_bits()).collect()).collect()
}

fn backbone_strategy() -> impl Strategy<Value = Backbone> {
    prop_oneof![Just(Backbone::ResNet), Just(Backbone::InceptionTime)]
}

fn kernel_strategy() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(prop_oneof![Just(3usize), Just(5), Just(7), Just(9)], 1..3)
}

/// One backbone spec of any of the three families, at smoke-test scale.
fn spec_strategy() -> impl Strategy<Value = BackboneSpec> {
    prop_oneof![
        prop_oneof![Just(3usize), Just(5), Just(9)]
            .prop_map(|kernel| BackboneSpec::ResNet { kernel, width_div: 16 }),
        prop_oneof![Just(3usize), Just(5), Just(7)]
            .prop_map(|kernel| BackboneSpec::InceptionTime { kernel, width_div: 16 }),
        prop_oneof![Just((8usize, 2usize)), Just((16, 2)), Just((12, 4))].prop_map(
            |(d_model, heads)| BackboneSpec::TransApp {
                d_model,
                heads,
                d_ff: 2 * d_model,
                layers: 1,
                downsample: 4,
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// save -> load -> bit-identical `detect_proba` and `localize_batch`,
    /// for both backbones and arbitrary kernel grids.
    #[test]
    fn checkpoint_roundtrip_is_bit_identical(
        backbone in backbone_strategy(),
        kernels in kernel_strategy(),
        seed in 0u64..1_000,
    ) {
        let mut model = random_model(backbone, &kernels, seed);
        let bytes = model.to_bytes();
        let mut back = CamalModel::from_bytes(&bytes).expect("roundtrip load");
        prop_assert_eq!(back.ensemble_size(), kernels.len());
        let specs: Vec<BackboneSpec> =
            kernels.iter().map(|&k| BackboneSpec::from_kernel(backbone, k, 16)).collect();
        prop_assert_eq!(back.member_specs(), specs);
        let x = probe_batch(4, seed ^ 0xF00D);
        let pa: Vec<u32> = model.detect_proba(&x).iter().map(|p| p.to_bits()).collect();
        let pb: Vec<u32> = back.detect_proba(&x).iter().map(|p| p.to_bits()).collect();
        prop_assert_eq!(pa, pb, "detect_proba differs after reload");
        let a = model.localize_batch(&x);
        let b = back.localize_batch(&x);
        prop_assert_eq!(a.status, b.status, "statuses differ after reload");
        prop_assert_eq!(f32_bits(&a.scores), f32_bits(&b.scores), "scores differ after reload");
        prop_assert_eq!(f32_bits(&a.cam), f32_bits(&b.cam), "CAMs differ after reload");
        // And the reloaded model re-serializes to the very same bytes.
        prop_assert_eq!(back.to_bytes(), bytes, "re-serialization unstable");
    }

    /// v3 checkpoints round-trip bit-identically for arbitrary mixes of all
    /// three backbone families — the heterogeneous-zoo persistence contract.
    #[test]
    fn mixed_spec_checkpoint_roundtrip_is_bit_identical(
        specs in proptest::collection::vec(spec_strategy(), 1..4),
        seed in 0u64..1_000,
    ) {
        let mut model = random_mixed_model(&specs, seed);
        let bytes = model.to_bytes();
        let mut back = CamalModel::from_bytes(&bytes).expect("mixed roundtrip load");
        prop_assert_eq!(back.member_specs(), specs.clone());
        let x = probe_batch(3, seed ^ 0xBEEF);
        let pa: Vec<u32> = model.detect_proba(&x).iter().map(|p| p.to_bits()).collect();
        let pb: Vec<u32> = back.detect_proba(&x).iter().map(|p| p.to_bits()).collect();
        prop_assert_eq!(pa, pb, "detect_proba differs after mixed reload");
        let a = model.localize_batch(&x);
        let b = back.localize_batch(&x);
        prop_assert_eq!(a.status, b.status, "statuses differ after mixed reload");
        prop_assert_eq!(f32_bits(&a.cam), f32_bits(&b.cam), "CAMs differ after mixed reload");
        prop_assert_eq!(back.to_bytes(), bytes, "mixed re-serialization unstable");
    }

    /// Any strict prefix of a checkpoint is rejected — truncated files can
    /// never half-load.
    #[test]
    fn truncated_checkpoints_are_rejected(cut_ppm in 0u64..1_000_000) {
        let mut model = random_model(Backbone::ResNet, &[5], 1);
        let bytes = model.to_bytes();
        let cut = (cut_ppm as usize * (bytes.len() - 1)) / 1_000_000;
        prop_assert!(
            CamalModel::from_bytes(&bytes[..cut]).is_err(),
            "prefix of {cut}/{} bytes was accepted",
            bytes.len()
        );
    }
}

#[test]
fn checkpoint_file_roundtrip_across_model_instances() {
    let dir = std::env::temp_dir().join("camal_persist_it");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.ckpt");
    let mut model = random_model(Backbone::ResNet, &[5, 9], 7);
    model.save(&path).expect("save");
    let mut back = CamalModel::load(&path).expect("load");
    let x = probe_batch(6, 99);
    assert_eq!(model.localize_batch(&x).status, back.localize_batch(&x).status);
    assert_eq!(back.config().kernels, vec![5, 9], "config kernel grid preserved");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn wrong_version_and_foreign_files_are_rejected() {
    let mut model = random_model(Backbone::ResNet, &[5], 3);
    let bytes = model.to_bytes();
    // Version bump.
    let mut wrong_version = bytes.clone();
    wrong_version[8..12].copy_from_slice(&0xFFu32.to_le_bytes());
    assert!(CamalModel::from_bytes(&wrong_version).is_err());
    // A raw tensor-state blob is not a checkpoint.
    let mut rng = StdRng::seed_from_u64(1);
    let mut net = build_from_spec(&mut rng, BackboneSpec::ResNet { kernel: 5, width_div: 16 });
    assert!(CamalModel::from_bytes(&net.save_state()).is_err());
    // Garbage.
    assert!(CamalModel::from_bytes(b"definitely not a checkpoint").is_err());
    assert!(CamalModel::from_bytes(&[]).is_err());
}

/// Builds a long household series whose windows are also returned as a
/// `WindowSet`, so streaming and batch outputs can be compared 1:1.
fn household_and_windows(n_windows: usize, seed: u64) -> (HouseholdSeries, WindowSet) {
    let mut rng = nilm_tensor::init::rng(seed);
    let n = n_windows * WINDOW;
    let mut values = Vec::with_capacity(n);
    for t in 0..n {
        let plateau = (t / 16) % 3 == 0;
        let base = if plateau { 1800.0 } else { 120.0 };
        values.push(base + nilm_tensor::init::randn(&mut rng).abs() * 30.0);
    }
    let series = TimeSeries::new(values.clone(), 60);
    let windows = (0..n_windows)
        .map(|wi| {
            let agg = &values[wi * WINDOW..(wi + 1) * WINDOW];
            Window {
                input: agg.iter().map(|v| v / 1000.0).collect(),
                aggregate_w: agg.to_vec(),
                status: Vec::new(),
                appliance_w: Vec::new(),
                weak_label: 0,
                house_id: 0,
            }
        })
        .collect();
    (HouseholdSeries { id: format!("house-{seed}"), series }, WindowSet::new(windows))
}

#[test]
fn streaming_equals_windowed_batch_before_priors() {
    let mut model = random_model(Backbone::ResNet, &[5, 7], 11);
    let (household, set) = household_and_windows(9, 5);
    let cfg = StreamConfig {
        window: WINDOW,
        step_s: 60,
        max_ffill_s: 180,
        batch: 4, // unaligned with both window count and household size
        appliance: None,
        avg_power_w: 2000.0,
    };
    let out = serve(&mut model, std::slice::from_ref(&household), &cfg);
    let loc = model.localize_set(&set, 16);
    assert_eq!(out[0].windows_scored, set.len());
    for (wi, st) in loc.status.iter().enumerate() {
        assert_eq!(
            &out[0].raw_status[wi * WINDOW..(wi + 1) * WINDOW],
            &st[..],
            "stream/batch divergence at window {wi}"
        );
    }
    assert_eq!(out[0].status, out[0].raw_status, "no prior configured");
}

#[test]
fn streaming_batches_across_households() {
    // Two households served together must produce the same timelines as
    // each served alone: cross-household batching is invisible.
    let mut model = random_model(Backbone::ResNet, &[5], 13);
    let (h0, _) = household_and_windows(5, 21);
    let (h1, _) = household_and_windows(7, 22);
    let cfg = StreamConfig {
        window: WINDOW,
        step_s: 60,
        max_ffill_s: 180,
        batch: 3,
        appliance: None,
        avg_power_w: 2000.0,
    };
    let joint = serve(&mut model, &[h0.clone(), h1.clone()], &cfg);
    let solo0 = serve(&mut model, std::slice::from_ref(&h0), &cfg);
    let solo1 = serve(&mut model, std::slice::from_ref(&h1), &cfg);
    assert_eq!(joint[0].raw_status, solo0[0].raw_status);
    assert_eq!(joint[1].raw_status, solo1[0].raw_status);
    assert_eq!(joint[0].detection_proba, solo0[0].detection_proba);
    assert_eq!(joint[1].detection_proba, solo1[0].detection_proba);
}
