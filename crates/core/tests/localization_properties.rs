//! Property-based tests on the CamAL localization pipeline pieces.

use camal::localize::{attention_status, average_cams, normalize_cam, raw_cam_status};
use camal::postprocess::{drop_short_on_runs, fill_short_off_gaps};
use camal::power::estimate_power;
use nilm_tensor::tensor::Tensor;
use proptest::prelude::*;

proptest! {
    /// The averaged ensemble CAM of per-window-normalized member CAMs stays
    /// in [0, 1].
    #[test]
    fn ensemble_cam_stays_normalized(
        a in proptest::collection::vec(-10.0f32..10.0, 32),
        b in proptest::collection::vec(-10.0f32..10.0, 32),
    ) {
        let mut ca = a.clone();
        let mut cb = b.clone();
        normalize_cam(&mut ca);
        normalize_cam(&mut cb);
        let avg = average_cams(&[
            Tensor::from_vec(ca, &[1, 32]),
            Tensor::from_vec(cb, &[1, 32]),
        ]);
        prop_assert!(avg.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    /// Raising the attention margin is monotone: it can only turn ON
    /// timesteps OFF, never the reverse.
    #[test]
    fn attention_margin_is_monotone(
        cam in proptest::collection::vec(0.0f32..1.0, 24),
        xs in proptest::collection::vec(0.0f32..5.0, 24),
        m1 in 0.0f32..1.0,
        delta in 0.0f32..1.0,
    ) {
        let (loose, _) = attention_status(&cam, &xs, m1);
        let (tight, _) = attention_status(&cam, &xs, m1 + delta);
        for (l, t) in loose.iter().zip(&tight) {
            prop_assert!(t <= l, "tightening the margin turned a timestep ON");
        }
    }

    /// Raw-CAM localization is a superset of zero-margin attention
    /// localization wherever the input is at or below the window mean.
    #[test]
    fn raw_cam_dominates_on_low_power(
        cam in proptest::collection::vec(0.0f32..1.0, 16),
        xs in proptest::collection::vec(0.0f32..3.0, 16),
    ) {
        let (att, _) = attention_status(&cam, &xs, 0.0);
        let (raw, _) = raw_cam_status(&cam);
        for (a, r) in att.iter().zip(&raw) {
            prop_assert!(r >= a);
        }
    }

    /// Power estimation is clipped by the aggregate and zero where OFF.
    #[test]
    fn power_estimate_invariants(
        status in proptest::collection::vec(0u8..2, 1..64),
        agg in proptest::collection::vec(-100.0f32..5000.0, 1..64),
        avg_power in 1.0f32..9000.0,
    ) {
        let n = status.len().min(agg.len());
        let est = estimate_power(&status[..n], avg_power, &agg[..n]);
        for i in 0..n {
            if status[i] == 0 {
                prop_assert_eq!(est[i], 0.0);
            } else {
                prop_assert!(est[i] >= 0.0);
                prop_assert!(est[i] <= agg[i].max(0.0));
                prop_assert!(est[i] <= avg_power);
            }
        }
    }

    /// Post-processing filters never create new event boundaries outside the
    /// original signal support: dropping short runs only removes ON samples,
    /// gap filling only adds ON samples between existing ON samples.
    #[test]
    fn postprocess_filters_are_one_sided(
        status in proptest::collection::vec(0u8..2, 4..128),
        min_len in 1usize..6,
        max_gap in 0usize..6,
    ) {
        let mut dropped = status.clone();
        drop_short_on_runs(&mut dropped, min_len);
        for (orig, new) in status.iter().zip(&dropped) {
            prop_assert!(new <= orig, "drop filter added an ON sample");
        }
        let mut filled = status.clone();
        fill_short_off_gaps(&mut filled, max_gap);
        for (orig, new) in status.iter().zip(&filled) {
            prop_assert!(new >= orig, "fill filter removed an ON sample");
        }
    }

    /// Dropping short runs is idempotent.
    #[test]
    fn drop_short_runs_idempotent(
        status in proptest::collection::vec(0u8..2, 4..64),
        min_len in 1usize..6,
    ) {
        let mut once = status.clone();
        drop_short_on_runs(&mut once, min_len);
        let mut twice = once.clone();
        drop_short_on_runs(&mut twice, min_len);
        prop_assert_eq!(once, twice);
    }
}
