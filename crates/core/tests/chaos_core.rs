//! Chaos suite for the core crate's fault points: torn checkpoint saves,
//! corrupt checkpoint loads (through registry quarantine), and panicking
//! fleet shards. Every injected failure must be contained — old data
//! stays intact, errors are typed, and fleet passes still answer for
//! every household.
//!
//! The fault table is process-global, so every test serializes on one
//! mutex and disarms all points on entry and exit.

use camal::config::CamalConfig;
use camal::ensemble::EnsembleMember;
use camal::fleet::{serve_fleet, FleetConfig};
use camal::registry::{ModelKey, ModelRegistry, QuarantinePolicy, RegistryError};
use camal::stream::HouseholdSeries;
use camal::CamalModel;
use nilm_data::appliance::ApplianceKind;
use nilm_data::series::TimeSeries;
use nilm_data::templates::DatasetId;
use nilm_models::detector::{build_from_spec, BackboneSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

const WINDOW: usize = 32;

/// Serializes tests (the fault table is shared by the whole process) and
/// guarantees a clean table on entry; `FaultGuard` cleans up on exit even
/// when the test panics.
static SERIAL: Mutex<()> = Mutex::new(());

struct FaultGuard {
    _serial: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        nilm_fault::disarm_all();
    }
}

fn faults() -> FaultGuard {
    let g = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    nilm_fault::disarm_all();
    FaultGuard { _serial: g }
}

fn tiny_model(seed: u64) -> CamalModel {
    let cfg = CamalConfig {
        n_ensemble: 1,
        kernels: vec![5],
        trials: 1,
        width_div: 16,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = BackboneSpec::ResNet { kernel: 5, width_div: cfg.width_div };
    let member = EnsembleMember { net: build_from_spec(&mut rng, spec), spec, val_loss: 0.1 };
    let mut model = CamalModel::from_members(cfg, vec![member]);
    model.set_window(WINDOW);
    model
}

fn toy_household(n_windows: usize, seed: u64) -> HouseholdSeries {
    let mut rng = nilm_tensor::init::rng(seed);
    let n = n_windows * WINDOW;
    let mut values = Vec::with_capacity(n);
    for t in 0..n {
        let plateau = (t / 12) % 3 == 0;
        let base = if plateau { 1900.0 } else { 140.0 };
        values.push(base + nilm_tensor::init::randn(&mut rng).abs() * 25.0);
    }
    HouseholdSeries { id: format!("house-{seed}"), series: TimeSeries::new(values, 60) }
}

fn kettle() -> ModelKey {
    ModelKey::new(DatasetId::Refit, ApplianceKind::Kettle)
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("camal_chaos_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn torn_save_never_clobbers_the_previous_checkpoint() {
    let _g = faults();
    let dir = temp_dir("torn");
    let path = dir.join(kettle().file_name());
    let mut v1 = tiny_model(1);
    v1.save(&path).expect("clean save");
    let v1_bytes = std::fs::read(&path).unwrap();

    // Every save attempt now crashes after a partial temp write.
    nilm_fault::arm("persist.save.torn", 1.0, 7);
    let err = tiny_model(2).save(&path).expect_err("torn save must error");
    assert!(err.to_string().contains("injected"), "unexpected error: {err}");
    assert_eq!(
        std::fs::read(&path).unwrap(),
        v1_bytes,
        "a torn save must leave the previous checkpoint byte-identical"
    );
    // The interrupted file, if any survives, is a temp sibling — and the
    // real path still loads.
    assert_eq!(CamalModel::load(&path).unwrap().window(), WINDOW);

    // Disarmed, the same save goes through and the new checkpoint loads.
    nilm_fault::disarm_all();
    tiny_model(2).save(&path).expect("save after disarm");
    assert_ne!(std::fs::read(&path).unwrap(), v1_bytes);
    assert_eq!(CamalModel::load(&path).unwrap().window(), WINDOW);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_loads_quarantine_then_heal() {
    let _g = faults();
    let dir = temp_dir("quarantine");
    let key = kettle();
    let path = dir.join(key.file_name());
    tiny_model(3).save(&path).unwrap();

    let mut reg = ModelRegistry::unbounded();
    reg.set_quarantine_policy(QuarantinePolicy {
        threshold: 2,
        base_backoff: Duration::from_millis(20),
        max_backoff: Duration::from_secs(1),
    });
    reg.register_file(key, &path);

    // Every load reads corrupt data: two failures open the quarantine.
    nilm_fault::arm("persist.load.corrupt", 1.0, 11);
    for attempt in 0..2 {
        match reg.get_mut(key) {
            Err(RegistryError::Load { .. }) => {}
            Err(other) => panic!("attempt {attempt}: expected Load error, got {other}"),
            Ok(_) => panic!("attempt {attempt}: load must fail under the corrupt fault"),
        }
    }
    match reg.get_mut(key) {
        Err(RegistryError::Quarantined { retry_after, .. }) => {
            assert!(retry_after <= Duration::from_secs(1), "{retry_after:?}");
        }
        Err(other) => panic!("expected Quarantined, got {other}"),
        Ok(_) => panic!("expected Quarantined, load succeeded"),
    }
    let stats = reg.stats();
    assert_eq!(stats.load_failures, 2);
    assert_eq!(stats.quarantines, 1);

    // Storage heals (fault disarmed). After the backoff window the next
    // access retries, succeeds, and clears the quarantine — no restart.
    nilm_fault::disarm_all();
    std::thread::sleep(Duration::from_millis(40));
    assert_eq!(reg.get_mut(key).expect("healed load").window(), WINDOW);
    assert_eq!(reg.get_mut(key).expect("resident hit").window(), WINDOW);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shard_panic_retries_to_an_identical_result() {
    let _g = faults();
    let key = kettle();
    let households = vec![toy_household(3, 1), toy_household(4, 2)];
    let cfg = FleetConfig { batch: 4, ..FleetConfig::at_step(60) };

    // Fault-free baseline.
    let mut reg = ModelRegistry::unbounded();
    reg.insert(key, tiny_model(5));
    let baseline = serve_fleet(&mut reg, &[key], &households, &cfg).unwrap();
    assert_eq!(baseline.summary.shard_retries, 0);
    assert_eq!(baseline.summary.households_degraded, 0);

    // One injected panic: the shard retries on a fresh model copy and the
    // localization output is identical to the fault-free run.
    nilm_fault::arm_limited("fleet.shard.panic", 1.0, 13, Some(1));
    let mut reg = ModelRegistry::unbounded();
    reg.insert(key, tiny_model(5));
    let recovered = serve_fleet(&mut reg, &[key], &households, &cfg).unwrap();
    assert_eq!(recovered.summary.shard_retries, 1);
    assert_eq!(recovered.summary.households_degraded, 0);
    for (hi, hh) in recovered.households.iter().enumerate() {
        assert!(hh.degraded.is_none(), "household {hi} must not be degraded");
        assert_eq!(
            recovered.timeline(hi, key).unwrap().raw_status,
            baseline.timeline(hi, key).unwrap().raw_status,
            "household {hi}: retried shard must reproduce the baseline"
        );
    }
}

#[test]
fn persistent_shard_panic_degrades_households_instead_of_failing() {
    let _g = faults();
    let key = kettle();
    let households = vec![toy_household(3, 1), toy_household(2, 2)];
    let cfg = FleetConfig { batch: 4, ..FleetConfig::at_step(60) };

    // Unlimited panics: the retry panics too, so the shard's households
    // come back as explicit degraded placeholders, not an error.
    nilm_fault::arm("fleet.shard.panic", 1.0, 17);
    let mut reg = ModelRegistry::unbounded();
    reg.insert(key, tiny_model(5));
    let out = serve_fleet(&mut reg, &[key], &households, &cfg)
        .expect("a doubly-panicking shard degrades, it does not error");
    assert_eq!(out.summary.shard_retries, 1);
    assert_eq!(out.summary.households_degraded, households.len());
    for (hi, hh) in out.households.iter().enumerate() {
        let reason = hh.degraded.as_deref().expect("degraded reason");
        assert!(reason.contains("injected fault"), "household {hi}: {reason}");
        let tl = out.timeline(hi, key).unwrap();
        assert_eq!(tl.raw_status.len(), households[hi].series.len());
        assert!(tl.raw_status.iter().all(|&s| s == 0), "placeholder must be all-off");
    }
}

#[test]
fn multi_shard_panic_only_degrades_the_hit_shard() {
    let _g = faults();
    let key = kettle();
    let households: Vec<HouseholdSeries> = (0..4).map(|i| toy_household(2, i as u64)).collect();
    let cfg = FleetConfig { batch: 4, threads: 2, ..FleetConfig::at_step(60) };

    // Limit: 2 fires — one shard panics twice (attempt + retry) and
    // degrades; the other shards finish untouched.
    nilm_fault::arm_limited("fleet.shard.panic", 1.0, 19, Some(2));
    let mut reg = ModelRegistry::unbounded();
    reg.insert(key, tiny_model(5));
    let out = serve_fleet(&mut reg, &[key], &households, &cfg).unwrap();
    assert!(out.summary.households_degraded > 0, "the hit shard must degrade");
    assert!(
        out.summary.households_degraded < households.len(),
        "only the hit shard may degrade, got all {} households",
        households.len()
    );
    assert_eq!(out.households.len(), households.len(), "every household is answered");
}
