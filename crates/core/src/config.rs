//! CamAL hyper-parameters (paper §IV and Algorithm 1).

use nilm_models::{Backbone, BackboneSpec, TrainConfig};

/// Default kernel grid K_p of the ensemble (paper §IV-A.1).
pub const DEFAULT_KERNELS: [usize; 5] = [5, 7, 9, 15, 25];

/// Configuration of the CamAL framework.
#[derive(Clone, Debug)]
pub struct CamalConfig {
    /// Number of ResNets kept in the ensemble (paper default n = 5).
    pub n_ensemble: usize,
    /// Kernel sizes k_p to sweep; one candidate is trained per (kernel,
    /// trial) pair. Setting a single kernel reproduces the Table IV
    /// "w/o different kernel k_p" ablation.
    pub kernels: Vec<usize>,
    /// Training trials per kernel (Algorithm 1 uses 3).
    pub trials: usize,
    /// Ensemble-probability threshold for detection (paper: 0.5).
    pub detection_threshold: f32,
    /// Margin of the attention-sigmoid module: a timestep is ON when
    /// `CAM(t) · x̃(t) > margin` (see [`crate::localize::attention_status`]).
    pub attention_margin: f32,
    /// Enables the attention-sigmoid localization module; disabling it
    /// reproduces the Table IV "w/o Attention module" ablation (raw
    /// averaged CAM thresholding).
    pub use_attention: bool,
    /// Channel-width divisor of the ResNets (1 = paper scale `[64,128,128]`).
    pub width_div: usize,
    /// Detector family the kernel grid instantiates (paper: ResNet;
    /// InceptionTime is the backbone ablation discussed in §IV-A). Together
    /// with `kernels` and `width_div` this is the historical convenience
    /// surface; the full candidate grid is [`CamalConfig::candidate_specs`].
    pub backbone: Backbone,
    /// Extra architecture candidates appended to the kernel grid — each one
    /// enters Algorithm 1's sweep alongside the `(backbone, kernel)`
    /// candidates, so a single run can select a mixed ResNet + TransApp
    /// ensemble. Empty by default (pure paper behaviour).
    pub candidates: Vec<BackboneSpec>,
    /// Optimizer settings for each member.
    pub train: TrainConfig,
    /// Balance the training set by random undersampling before training.
    pub balance: bool,
    /// Master seed; member seeds derive from it deterministically.
    pub seed: u64,
}

impl Default for CamalConfig {
    fn default() -> Self {
        CamalConfig {
            n_ensemble: 5,
            kernels: DEFAULT_KERNELS.to_vec(),
            trials: 3,
            detection_threshold: 0.5,
            attention_margin: 0.5,
            use_attention: true,
            width_div: 1,
            backbone: Backbone::ResNet,
            candidates: Vec::new(),
            train: TrainConfig::default(),
            balance: true,
            seed: 0xCA_3A1,
        }
    }
}

impl CamalConfig {
    /// A laptop-scale configuration: narrow ResNets, fewer trials, short
    /// training. Used by the examples and smoke experiments.
    pub fn small() -> Self {
        CamalConfig {
            n_ensemble: 3,
            kernels: vec![5, 9, 15],
            trials: 1,
            width_div: 8,
            train: TrainConfig { epochs: 6, batch_size: 16, lr: 1e-3, clip: 0.0, seed: 7 },
            ..Default::default()
        }
    }

    /// The Table IV "w/o different kernel" ablation: every member uses
    /// k_p = 7 (the original ResNet baseline of ref. \[14\]).
    pub fn fixed_kernel(mut self) -> Self {
        self.kernels = vec![7];
        self
    }

    /// The Table IV "w/o Attention module" ablation.
    pub fn without_attention(mut self) -> Self {
        self.use_attention = false;
        self
    }

    /// The laptop-scale mixed-backbone configuration: the [`Self::small`]
    /// ResNet kernel grid plus a small TransApp candidate per trial, so
    /// Algorithm 1 can select a heterogeneous ensemble. Used by the fleet
    /// and gateway smoke demos.
    pub fn mixed_small() -> Self {
        CamalConfig {
            candidates: vec![BackboneSpec::TransApp {
                d_model: 16,
                heads: 2,
                d_ff: 32,
                layers: 1,
                downsample: 4,
            }],
            ..Self::small()
        }
    }

    /// The full candidate grid of Algorithm 1: every kernel expanded through
    /// the configured `backbone` family at `width_div`, followed by the
    /// explicit extra `candidates`. Order is deterministic — it seeds the
    /// per-candidate RNG salts.
    pub fn candidate_specs(&self) -> Vec<BackboneSpec> {
        let mut specs: Vec<BackboneSpec> = self
            .kernels
            .iter()
            .map(|&k| BackboneSpec::from_kernel(self.backbone, k, self.width_div))
            .collect();
        specs.extend(self.candidates.iter().copied());
        specs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = CamalConfig::default();
        assert_eq!(cfg.n_ensemble, 5);
        assert_eq!(cfg.kernels, vec![5, 7, 9, 15, 25]);
        assert_eq!(cfg.trials, 3);
        assert_eq!(cfg.detection_threshold, 0.5);
        assert!(cfg.use_attention);
    }

    #[test]
    fn ablation_builders() {
        let cfg = CamalConfig::default().fixed_kernel();
        assert_eq!(cfg.kernels, vec![7]);
        let cfg = CamalConfig::default().without_attention();
        assert!(!cfg.use_attention);
    }

    #[test]
    fn candidate_grid_expands_kernels_then_extras() {
        let mut cfg = CamalConfig::small();
        let ta =
            BackboneSpec::TransApp { d_model: 8, heads: 2, d_ff: 16, layers: 1, downsample: 4 };
        cfg.candidates.push(ta);
        let specs = cfg.candidate_specs();
        assert_eq!(specs.len(), cfg.kernels.len() + 1);
        for (spec, &k) in specs.iter().zip(&cfg.kernels) {
            assert_eq!(*spec, BackboneSpec::from_kernel(cfg.backbone, k, cfg.width_div));
        }
        assert_eq!(*specs.last().unwrap(), ta);
    }

    #[test]
    fn mixed_small_holds_a_transapp_candidate() {
        let cfg = CamalConfig::mixed_small();
        assert!(!cfg.candidates.is_empty());
        assert!(cfg.candidate_specs().iter().any(|s| s.family() == "transapp"));
        // The kernel grid itself is untouched relative to `small()`.
        assert_eq!(cfg.kernels, CamalConfig::small().kernels);
    }
}
