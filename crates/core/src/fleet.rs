//! Fleet serving: N appliance detectors over one smart-meter feed, many
//! households at a time.
//!
//! A deployment answers "which of the household's appliances is running?" —
//! that is N CamAL models per feed, not one. Running [`crate::stream::serve`]
//! N times would repeat the §V-B preprocessing (resample → forward-fill →
//! slice) and the batch assembly N times per household; this module does the
//! expensive, model-independent work **once per feed** and fans the shared
//! window batches out across every registered appliance model:
//!
//! 1. **Shard** — households are split into contiguous shards, one per
//!    worker thread (vendored `rayon` fan-out). Each worker materializes its
//!    own private copy of every model from a checkpoint snapshot, so no
//!    locking happens on the hot path and results are bit-identical for any
//!    thread count (window scoring is row-independent: eval-mode BatchNorm
//!    uses running statistics).
//! 2. **Shared pass** — inside a shard, each household is preprocessed once
//!    and its windows pooled with every other household's into
//!    GEMM-friendly batches; each assembled batch tensor is then reused
//!    across **all** appliance models (batching across households *and*
//!    appliances: one batch assembly feeds N model forwards).
//! 3. **Stitch + post-process** — per (household, appliance), window
//!    statuses are stitched into a continuous timeline, the appliance's
//!    duration priors run at the stitched level, and §IV-C power is
//!    estimated — exactly the single-appliance streaming semantics.
//!
//! [`serve_fleet`] is the registry-driven entry point;
//! [`crate::stream::serve`] is the N=1 special case of the same engine
//! (both delegate to the crate-private `serve_shared` core below).

use crate::model::CamalModel;
use crate::postprocess::apply_duration_prior;
use crate::power::estimate_power;
use crate::registry::{ModelKey, ModelRegistry, RegistryError};
use crate::stream::{HouseholdSeries, HouseholdTimeline};
use nilm_data::appliance::ApplianceKind;
use nilm_data::preprocess::{forward_fill, resample, valid_window_starts, INPUT_SCALE};
use nilm_data::series::TimeSeries;
use nilm_data::templates::template;
use nilm_tensor::tensor::Tensor;
use rayon::prelude::*;
use std::fmt;
use std::time::Instant;

/// Post-processing plan for one appliance model inside a shared pass: what
/// the model-independent engine cannot know about the appliance.
#[derive(Clone, Copy, Debug)]
pub struct AppliancePlan {
    /// Appliance whose duration priors run on the stitched timeline;
    /// `None` disables post-processing (raw statuses pass through).
    pub appliance: Option<ApplianceKind>,
    /// Average running power P_a for the §IV-C power estimate.
    pub avg_power_w: f32,
}

/// Work counters of one shared pass (summed over shards by [`serve_fleet`]).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct SharedPassCounters {
    /// Windows each feed was sliced into (model-independent; counted once
    /// per household).
    pub windows_total: usize,
    /// NaN-free windows actually scored, counted once per household.
    pub windows_scored: usize,
    /// Model inferences performed: scored windows × models.
    pub inferences: usize,
    /// Batch tensors assembled (each reused across all models).
    pub batches: usize,
    /// CPU-seconds spent in stage 1 (preprocess), summed across shards.
    pub preprocess_s: f64,
    /// CPU-seconds spent in stage 2 (batched inference), summed across shards.
    pub infer_s: f64,
    /// CPU-seconds spent in stage 3 (stitch + power), summed across shards.
    pub stitch_s: f64,
}

/// One scored window's origin, for stitching.
struct WindowJob {
    house: usize,
    /// Start sample of the window inside the stitched timeline.
    start: usize,
}

/// The shared-pass engine: preprocesses every household once, pools windows
/// across households into batches, runs **each** model on every assembled
/// batch, and stitches per-(model, household) timelines. Returns timelines
/// indexed `[model][household]`.
///
/// This is the core both [`crate::stream::serve`] (one model) and
/// [`serve_fleet`] (one call per worker shard) execute.
pub(crate) fn serve_shared(
    models: &mut [&mut CamalModel],
    plans: &[AppliancePlan],
    households: &[HouseholdSeries],
    window: usize,
    step_s: u32,
    max_ffill_s: u32,
    batch: usize,
) -> (Vec<Vec<HouseholdTimeline>>, SharedPassCounters) {
    nilm_fault::maybe_panic("fleet.shard.panic");
    assert!(window > 0, "window length must be positive");
    assert_eq!(models.len(), plans.len(), "one plan per model");
    for model in models.iter() {
        // The backbones are fully convolutional and would silently accept
        // any window length — and silently degrade. Checkpoints record the
        // training window precisely so this mismatch can be caught here.
        assert!(
            model.window() == 0 || model.window() == window,
            "model was trained at window {} but cfg.window is {}",
            model.window(),
            window
        );
    }
    let w = window;
    let mut counters = SharedPassCounters::default();

    // Stage 1 — per-household §V-B preprocessing and window slicing, done
    // once per feed no matter how many models consume it.
    let mut stage_span = nilm_obs::trace::span("preprocess");
    let stage_start = Instant::now();
    let mut aggregates: Vec<TimeSeries> = Vec::with_capacity(households.len());
    let mut jobs: Vec<WindowJob> = Vec::new();
    let mut timelines: Vec<Vec<HouseholdTimeline>> =
        (0..models.len()).map(|_| Vec::with_capacity(households.len())).collect();
    for (hi, hh) in households.iter().enumerate() {
        let agg = forward_fill(&resample(&hh.series, step_s), max_ffill_s);
        let n = agg.len();
        let windows_total = n / w;
        // `valid_window_starts` is the same validity rule `slice_windows`
        // applies during training, so streaming scores exactly the windows
        // the windowed pipeline would.
        let scored_starts = valid_window_starts(&agg, w);
        counters.windows_total += windows_total;
        counters.windows_scored += scored_starts.len();
        jobs.extend(scored_starts.iter().map(|&start| WindowJob { house: hi, start }));
        for per_model in timelines.iter_mut() {
            per_model.push(HouseholdTimeline {
                id: hh.id.clone(),
                step_s,
                raw_status: vec![0u8; n],
                status: Vec::new(),
                power_w: Vec::new(),
                detection_proba: Vec::with_capacity(scored_starts.len()),
                windows_total,
                windows_scored: scored_starts.len(),
                windows_detected: 0,
                scored_starts: scored_starts.clone(),
            });
        }
        aggregates.push(agg);
    }
    counters.preprocess_s = stage_start.elapsed().as_secs_f64();
    if let Some(mut span) = stage_span.take() {
        span.set_detail(format!(
            "households={} windows={}",
            households.len(),
            counters.windows_scored
        ));
        span.finish();
    }

    // Stage 2 — batched inference pooled across households; every assembled
    // batch is fanned out across all models before the next one is built,
    // so batch assembly cost is paid once per chunk, not once per model.
    let batch = batch.max(1);
    let mut stage_span = nilm_obs::trace::span("infer");
    let stage_start = Instant::now();
    let mut x = Tensor::zeros(&[0]);
    for chunk in jobs.chunks(batch) {
        counters.batches += 1;
        x.resize(&[chunk.len(), 1, w]);
        for (bi, job) in chunk.iter().enumerate() {
            let src = &aggregates[job.house].values[job.start..job.start + w];
            let dst = &mut x.data_mut()[bi * w..(bi + 1) * w];
            for (d, &v) in dst.iter_mut().zip(src) {
                *d = v * INPUT_SCALE;
            }
        }
        for (mi, model) in models.iter_mut().enumerate() {
            let loc = model.localize_batch(&x);
            counters.inferences += chunk.len();
            for (bi, job) in chunk.iter().enumerate() {
                let tl = &mut timelines[mi][job.house];
                tl.raw_status[job.start..job.start + w].copy_from_slice(&loc.status[bi]);
                tl.detection_proba.push(loc.detection_proba[bi]);
                if loc.detected[bi] {
                    tl.windows_detected += 1;
                }
            }
        }
    }
    counters.infer_s = stage_start.elapsed().as_secs_f64();
    if let Some(mut span) = stage_span.take() {
        span.set_detail(format!(
            "models={} batches={} inferences={}",
            models.len(),
            counters.batches,
            counters.inferences
        ));
        span.finish();
    }

    // Stage 3 — timeline-level post-processing and power estimation, per
    // (model, household) with the model's appliance plan.
    let stage_span = nilm_obs::trace::span("stitch");
    let stage_start = Instant::now();
    for (per_model, plan) in timelines.iter_mut().zip(plans) {
        for (tl, agg) in per_model.iter_mut().zip(&aggregates) {
            tl.status = tl.raw_status.clone();
            if let Some(kind) = plan.appliance {
                apply_duration_prior(&mut tl.status, kind, step_s);
            }
            // NaN aggregate samples clamp to 0 W inside `estimate_power`;
            // they can only occur outside scored windows, where status is
            // OFF.
            tl.power_w = estimate_power(&tl.status, plan.avg_power_w, &agg.values);
        }
    }
    counters.stitch_s = stage_start.elapsed().as_secs_f64();
    drop(stage_span);
    (timelines, counters)
}

/// How [`serve_fleet`] preprocesses, batches, shards and post-processes.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Target sampling step in seconds (the resolution every fleet model
    /// runs at); input feeds are downsampled to it.
    pub step_s: u32,
    /// Maximum gap (seconds) forward-filled before windows are sliced.
    pub max_ffill_s: u32,
    /// Windows per inference batch, pooled across every household of a
    /// shard (each batch is reused across all appliance models).
    pub batch: usize,
    /// Worker shards households are distributed over. Results are
    /// bit-identical for any value; this only controls parallelism.
    pub threads: usize,
    /// Apply each appliance's duration priors on the stitched timelines.
    pub apply_priors: bool,
}

impl FleetConfig {
    /// A config serving at `step_s` resolution: 3-sample forward-fill,
    /// 64-window batches, single worker, priors on.
    ///
    /// ```
    /// let cfg = camal::fleet::FleetConfig::at_step(60);
    /// assert_eq!((cfg.step_s, cfg.max_ffill_s, cfg.threads), (60, 180, 1));
    /// ```
    pub fn at_step(step_s: u32) -> Self {
        FleetConfig { step_s, max_ffill_s: 3 * step_s, batch: 64, threads: 1, apply_priors: true }
    }
}

/// Why a fleet pass could not run.
#[derive(Debug)]
pub enum FleetError {
    /// No appliance keys were requested.
    NoAppliances,
    /// A model could not be fetched from the registry.
    Registry(RegistryError),
    /// A model's checkpoint does not record its training window, so feeds
    /// cannot be sliced safely.
    UnknownWindow(ModelKey),
    /// The requested models were trained at different window lengths and
    /// cannot share one preprocessing pass.
    WindowMismatch {
        /// The offending model.
        key: ModelKey,
        /// Its training window.
        window: usize,
        /// The window of the models before it.
        expected: usize,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::NoAppliances => write!(f, "fleet pass requested with no appliances"),
            FleetError::Registry(e) => write!(f, "{e}"),
            FleetError::UnknownWindow(key) => {
                write!(f, "model {key} does not record its training window")
            }
            FleetError::WindowMismatch { key, window, expected } => write!(
                f,
                "model {key} was trained at window {window} but the fleet runs at {expected}; \
                 mixed-window fleets cannot share one preprocessing pass"
            ),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Registry(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RegistryError> for FleetError {
    fn from(e: RegistryError) -> Self {
        FleetError::Registry(e)
    }
}

/// One household's localization across every served appliance.
#[derive(Clone, Debug)]
pub struct FleetHouseholdResult {
    /// Echo of the input household identifier.
    pub id: String,
    /// One timeline per appliance, parallel to [`FleetResult::appliances`].
    pub timelines: Vec<HouseholdTimeline>,
    /// `Some(reason)` when this household's shard worker panicked twice and
    /// the timelines are zeroed placeholders of the correct resampled
    /// length; `None` for a normally served household.
    pub degraded: Option<String>,
}

/// Fleet-level throughput and coverage counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct FleetSummary {
    /// Households served.
    pub households: usize,
    /// Appliance models fanned out per feed.
    pub appliances: usize,
    /// Shared window length of every model in the pass.
    pub window: usize,
    /// Worker shards the households were distributed over.
    pub shards: usize,
    /// Windows the feeds were sliced into (counted once per feed).
    pub feed_windows_total: usize,
    /// NaN-free windows scored (counted once per feed; each is inferred by
    /// every model).
    pub feed_windows_scored: usize,
    /// Model inferences performed: `feed_windows_scored × appliances`.
    pub inferences: usize,
    /// Batch tensors assembled across all shards.
    pub batches: usize,
    /// Wall-clock seconds of the fan-out (model snapshots excluded).
    pub elapsed_s: f64,
    /// `inferences / elapsed_s`.
    pub windows_per_second: f64,
    /// CPU-seconds in the preprocess stage, summed across shards (can
    /// exceed `elapsed_s` when shards run in parallel).
    pub preprocess_s: f64,
    /// CPU-seconds in the batched-inference stage, summed across shards.
    pub infer_s: f64,
    /// CPU-seconds in the stitch/power stage, summed across shards.
    pub stitch_s: f64,
    /// Shards that panicked once and were retried on fresh model copies.
    pub shard_retries: usize,
    /// Households answered with zeroed placeholder timelines because their
    /// shard panicked twice (see [`FleetHouseholdResult::degraded`]).
    pub households_degraded: usize,
}

/// Result of one [`serve_fleet`] pass.
#[derive(Clone, Debug)]
pub struct FleetResult {
    /// The appliances served, in the order of every per-household
    /// `timelines` vector.
    pub appliances: Vec<ModelKey>,
    /// Per-household results, in input household order.
    pub households: Vec<FleetHouseholdResult>,
    /// Fleet-level counters.
    pub summary: FleetSummary,
}

impl FleetResult {
    /// The timeline of `key` for household index `house`, if both exist.
    pub fn timeline(&self, house: usize, key: ModelKey) -> Option<&HouseholdTimeline> {
        let ai = self.appliances.iter().position(|&k| k == key)?;
        self.households.get(house).map(|h| &h.timelines[ai])
    }
}

/// One shard's outcome after panic isolation: results and counters on
/// success, zeroed placeholders plus the panic message when both attempts
/// failed.
struct ShardOutcome {
    timelines: Vec<Vec<HouseholdTimeline>>,
    counters: SharedPassCounters,
    retries: usize,
    degraded: Option<String>,
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".into()
    }
}

/// One attempt at a shard on freshly rebuilt model copies. A panic anywhere
/// inside — snapshot rebuild, preprocessing, inference, post-processing — is
/// caught and returned as the panic message instead of unwinding into the
/// caller (under rayon an uncaught worker panic would poison the whole
/// fan-out).
fn attempt_shard(
    snapshots: &[Vec<u8>],
    plans: &[AppliancePlan],
    shard: &[HouseholdSeries],
    window: usize,
    cfg: &FleetConfig,
) -> Result<(Vec<Vec<HouseholdTimeline>>, SharedPassCounters), String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut local: Vec<CamalModel> = snapshots
            .iter()
            .map(|bytes| {
                CamalModel::from_bytes(bytes).expect(
                    "fleet snapshot must reload: it was serialized from a live model this call",
                )
            })
            .collect();
        let mut refs: Vec<&mut CamalModel> = local.iter_mut().collect();
        serve_shared(&mut refs, plans, shard, window, cfg.step_s, cfg.max_ffill_s, cfg.batch)
    }))
    .map_err(panic_message)
}

/// Zeroed placeholder timelines for a shard whose worker panicked twice:
/// per household the correct resampled length, everything OFF at 0 W and no
/// windows scored. The gateway surfaces these as structured degraded rows.
fn degraded_shard(
    plans: &[AppliancePlan],
    shard: &[HouseholdSeries],
    window: usize,
    step_s: u32,
) -> Vec<Vec<HouseholdTimeline>> {
    (0..plans.len())
        .map(|_| {
            shard
                .iter()
                .map(|hh| {
                    let n = resample(&hh.series, step_s).len();
                    HouseholdTimeline {
                        id: hh.id.clone(),
                        step_s,
                        raw_status: vec![0u8; n],
                        status: vec![0u8; n],
                        power_w: vec![0.0; n],
                        detection_proba: Vec::new(),
                        windows_total: n / window.max(1),
                        windows_scored: 0,
                        windows_detected: 0,
                        scored_starts: Vec::new(),
                    }
                })
                .collect()
        })
        .collect()
}

/// Runs one shard with panic isolation: first attempt, one retry on fresh
/// model copies, then degraded placeholders if both panicked.
fn run_shard_guarded(
    snapshots: &[Vec<u8>],
    plans: &[AppliancePlan],
    shard: &[HouseholdSeries],
    window: usize,
    cfg: &FleetConfig,
) -> ShardOutcome {
    match attempt_shard(snapshots, plans, shard, window, cfg) {
        Ok((timelines, counters)) => {
            ShardOutcome { timelines, counters, retries: 0, degraded: None }
        }
        Err(first) => match attempt_shard(snapshots, plans, shard, window, cfg) {
            Ok((timelines, counters)) => {
                ShardOutcome { timelines, counters, retries: 1, degraded: None }
            }
            Err(second) => ShardOutcome {
                timelines: degraded_shard(plans, shard, window, cfg.step_s),
                counters: SharedPassCounters::default(),
                retries: 1,
                degraded: Some(format!("shard worker panicked twice ({first}; then {second})")),
            },
        },
    }
}

/// Serves every household against every requested appliance model in one
/// shared pass per feed (see the module docs for the pipeline).
///
/// Models are fetched (lazily loading checkpoints) from `registry`,
/// snapshotted once, and re-materialized privately inside each worker
/// shard, so the pass leaves the registry's resident set untouched and
/// scales across threads without locks. Per-appliance duration priors and
/// average power come from each key's dataset template (Table I); a key
/// absent from its template falls back to 1 kW with priors still applied.
///
/// All requested models must share one training window — a mixed-window
/// fleet cannot share a preprocessing pass and is rejected with
/// [`FleetError::WindowMismatch`].
///
/// ```
/// use camal::ensemble::EnsembleMember;
/// use camal::fleet::{serve_fleet, FleetConfig};
/// use camal::registry::{ModelKey, ModelRegistry};
/// use camal::stream::HouseholdSeries;
/// use camal::{CamalConfig, CamalModel};
/// use nilm_data::prelude::*;
/// use nilm_models::{build_from_spec, BackboneSpec};
///
/// // Two tiny untrained detectors stand in for a trained zoo.
/// let mut registry = ModelRegistry::unbounded();
/// let keys = [
///     ModelKey::new(DatasetId::Refit, ApplianceKind::Kettle),
///     ModelKey::new(DatasetId::Refit, ApplianceKind::Microwave),
/// ];
/// for (i, &key) in keys.iter().enumerate() {
///     let cfg = CamalConfig { n_ensemble: 1, kernels: vec![5], width_div: 16, ..Default::default() };
///     let mut rng = nilm_tensor::init::rng(i as u64);
///     let spec = BackboneSpec::ResNet { kernel: 5, width_div: 16 };
///     let member = EnsembleMember { net: build_from_spec(&mut rng, spec), spec, val_loss: 0.1 };
///     let mut model = CamalModel::from_members(cfg, vec![member]);
///     model.set_window(32);
///     registry.insert(key, model);
/// }
///
/// let feed = HouseholdSeries {
///     id: "house-0".into(),
///     series: TimeSeries::new(vec![150.0; 96], 60),
/// };
/// let out = serve_fleet(&mut registry, &keys, &[feed], &FleetConfig::at_step(60)).unwrap();
/// assert_eq!(out.summary.appliances, 2);
/// assert_eq!(out.summary.inferences, 2 * out.summary.feed_windows_scored);
/// let kettle = out.timeline(0, keys[0]).unwrap();
/// assert_eq!(kettle.raw_status.len(), 96);
/// ```
pub fn serve_fleet(
    registry: &mut ModelRegistry,
    keys: &[ModelKey],
    households: &[HouseholdSeries],
    cfg: &FleetConfig,
) -> Result<FleetResult, FleetError> {
    if keys.is_empty() {
        return Err(FleetError::NoAppliances);
    }
    // Fetch (lazily loading) every model once, validating that the fleet
    // shares a single training window.
    let mut plans: Vec<AppliancePlan> = Vec::with_capacity(keys.len());
    let mut window = 0usize;
    for &key in keys {
        let model = registry.get_mut(key)?;
        let w = model.window();
        if w == 0 {
            return Err(FleetError::UnknownWindow(key));
        }
        if window == 0 {
            window = w;
        } else if w != window {
            return Err(FleetError::WindowMismatch { key, window: w, expected: window });
        }
        let avg_power_w =
            template(key.dataset).case(key.appliance).map(|c| c.avg_power_w).unwrap_or(1000.0);
        plans.push(AppliancePlan {
            appliance: cfg.apply_priors.then_some(key.appliance),
            avg_power_w,
        });
    }

    // Shard households contiguously, one shard per worker thread. Model
    // staging (checkout or snapshot) happens before the throughput timer
    // starts: `elapsed_s` measures serving, not serialization.
    let shards = cfg.threads.max(1).min(households.len().max(1));
    let per_shard = households.len().div_ceil(shards).max(1);
    let shard_results: Vec<ShardOutcome>;
    let elapsed_s;
    if shards <= 1 {
        // Single-shard fast path: check the resident models out of the
        // registry and use them directly — no serialization, no rebuild.
        // A bounded registry may have evicted an earlier key while the
        // validation loop loaded a later one, so reload on demand; once a
        // model is checked out it occupies no slot and cannot be evicted
        // by the loads that follow.
        let mut local: Vec<CamalModel> = Vec::with_capacity(keys.len());
        for &k in keys {
            let model = match registry.take_resident(k) {
                Some(model) => model,
                None => {
                    registry.get_mut(k)?;
                    registry.take_resident(k).expect("model resident after reload")
                }
            };
            local.push(model);
        }
        let start = Instant::now();
        let first = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut refs: Vec<&mut CamalModel> = local.iter_mut().collect();
            serve_shared(
                &mut refs,
                &plans,
                households,
                window,
                cfg.step_s,
                cfg.max_ffill_s,
                cfg.batch,
            )
        }));
        let outcome = match first {
            Ok((timelines, counters)) => {
                ShardOutcome { timelines, counters, retries: 0, degraded: None }
            }
            Err(payload) => {
                // A panic can only interrupt scratch-buffer work — the
                // checked-out models' weights are intact — so snapshot them
                // and retry once on fresh rebuilds, exactly like the
                // multi-shard path.
                let first_msg = panic_message(payload);
                let snapshots: Vec<Vec<u8>> = local.iter_mut().map(|m| m.to_bytes()).collect();
                match attempt_shard(&snapshots, &plans, households, window, cfg) {
                    Ok((timelines, counters)) => {
                        ShardOutcome { timelines, counters, retries: 1, degraded: None }
                    }
                    Err(second) => ShardOutcome {
                        timelines: degraded_shard(&plans, households, window, cfg.step_s),
                        counters: SharedPassCounters::default(),
                        retries: 1,
                        degraded: Some(format!(
                            "shard worker panicked twice ({first_msg}; then {second})"
                        )),
                    },
                }
            }
        };
        elapsed_s = start.elapsed().as_secs_f64();
        for (&k, model) in keys.iter().zip(local) {
            registry.restore(k, model);
        }
        shard_results = vec![outcome];
    } else {
        // Multi-shard: snapshot each model to checkpoint bytes (`persist`
        // format) and let every worker rebuild private copies — the
        // persistence tests pin the rebuilds bit-identical to the
        // originals, so shard count never changes results. Each shard runs
        // panic-isolated: one retry on fresh copies, then degraded
        // placeholders, so a poisoned worker cannot sink the whole pass.
        let mut snapshots: Vec<Vec<u8>> = Vec::with_capacity(keys.len());
        for &key in keys {
            snapshots.push(registry.get_mut(key)?.to_bytes());
        }
        let start = Instant::now();
        // Shard workers run on pool threads with no trace context of their
        // own; hand each one a snapshot of the caller's so per-stage spans
        // (and kernel children) keep landing in the requests' traces.
        let trace_ctx = nilm_obs::trace::snapshot();
        shard_results = households
            .par_chunks(per_shard)
            .map(|shard| {
                let _ctx = nilm_obs::trace::set_context(&trace_ctx);
                run_shard_guarded(&snapshots, &plans, shard, window, cfg)
            })
            .collect();
        elapsed_s = start.elapsed().as_secs_f64();
    }

    // Reassemble: transpose each shard's [model][household] timelines into
    // per-household rows, preserving input household order.
    let mut out_households: Vec<FleetHouseholdResult> = Vec::with_capacity(households.len());
    let mut counters = SharedPassCounters::default();
    let mut shard_retries = 0usize;
    let mut households_degraded = 0usize;
    let actual_shards = shard_results.len();
    for outcome in shard_results {
        let c = outcome.counters;
        counters.windows_total += c.windows_total;
        counters.windows_scored += c.windows_scored;
        counters.inferences += c.inferences;
        counters.batches += c.batches;
        counters.preprocess_s += c.preprocess_s;
        counters.infer_s += c.infer_s;
        counters.stitch_s += c.stitch_s;
        shard_retries += outcome.retries;
        let shard_len = outcome.timelines.first().map_or(0, Vec::len);
        if outcome.degraded.is_some() {
            households_degraded += shard_len;
        }
        let mut iters: Vec<_> = outcome.timelines.into_iter().map(Vec::into_iter).collect();
        for _ in 0..shard_len {
            let timelines: Vec<HouseholdTimeline> =
                iters.iter_mut().map(|it| it.next().expect("shard rows are rectangular")).collect();
            out_households.push(FleetHouseholdResult {
                id: timelines[0].id.clone(),
                timelines,
                degraded: outcome.degraded.clone(),
            });
        }
    }

    let summary = FleetSummary {
        households: households.len(),
        appliances: keys.len(),
        window,
        shards: actual_shards,
        feed_windows_total: counters.windows_total,
        feed_windows_scored: counters.windows_scored,
        inferences: counters.inferences,
        batches: counters.batches,
        elapsed_s,
        windows_per_second: counters.inferences as f64 / elapsed_s.max(1e-9),
        preprocess_s: counters.preprocess_s,
        infer_s: counters.infer_s,
        stitch_s: counters.stitch_s,
        shard_retries,
        households_degraded,
    };
    Ok(FleetResult { appliances: keys.to_vec(), households: out_households, summary })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CamalConfig;
    use crate::ensemble::EnsembleMember;
    use crate::registry::ModelRegistry;
    use crate::stream::serve;
    use crate::stream::StreamConfig;
    use nilm_data::templates::DatasetId;
    use nilm_models::detector::{build_from_spec, BackboneSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const WINDOW: usize = 32;

    fn random_model(kernels: &[usize], seed: u64) -> CamalModel {
        let cfg = CamalConfig {
            n_ensemble: kernels.len(),
            kernels: kernels.to_vec(),
            trials: 1,
            width_div: 16,
            ..Default::default()
        };
        let members = kernels
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64));
                let spec = BackboneSpec::ResNet { kernel: k, width_div: cfg.width_div };
                EnsembleMember {
                    net: build_from_spec(&mut rng, spec),
                    spec,
                    val_loss: 0.5 + i as f32,
                }
            })
            .collect();
        let mut model = CamalModel::from_members(cfg, members);
        model.set_window(WINDOW);
        model
    }

    fn toy_household(n_windows: usize, seed: u64) -> HouseholdSeries {
        let mut rng = nilm_tensor::init::rng(seed);
        let n = n_windows * WINDOW + 5;
        let mut values = Vec::with_capacity(n);
        for t in 0..n {
            let plateau = (t / 12) % 3 == 0;
            let base = if plateau { 1900.0 } else { 140.0 };
            values.push(base + nilm_tensor::init::randn(&mut rng).abs() * 25.0);
        }
        HouseholdSeries { id: format!("house-{seed}"), series: TimeSeries::new(values, 60) }
    }

    fn kettle_key() -> ModelKey {
        ModelKey::new(DatasetId::Refit, ApplianceKind::Kettle)
    }

    #[test]
    fn fleet_result_is_rectangular_and_indexed() {
        let mut reg = ModelRegistry::unbounded();
        let k1 = kettle_key();
        let k2 = ModelKey::new(DatasetId::Refit, ApplianceKind::Microwave);
        reg.insert(k1, random_model(&[5], 1));
        reg.insert(k2, random_model(&[7], 2));
        let households = vec![toy_household(4, 1), toy_household(6, 2), toy_household(3, 3)];
        let cfg = FleetConfig { batch: 5, ..FleetConfig::at_step(60) };
        let out = serve_fleet(&mut reg, &[k1, k2], &households, &cfg).unwrap();
        assert_eq!(out.appliances, vec![k1, k2]);
        assert_eq!(out.households.len(), 3);
        for (hh, input) in out.households.iter().zip(&households) {
            assert_eq!(hh.id, input.id);
            assert_eq!(hh.timelines.len(), 2);
            for tl in &hh.timelines {
                assert_eq!(tl.raw_status.len(), input.series.len());
            }
        }
        assert!(out.timeline(1, k2).is_some());
        assert!(out.timeline(1, ModelKey::new(DatasetId::Ideal, ApplianceKind::Shower)).is_none());
        let s = out.summary;
        assert_eq!(s.households, 3);
        assert_eq!(s.appliances, 2);
        assert_eq!(s.window, WINDOW);
        assert_eq!(s.feed_windows_scored, 4 + 6 + 3);
        assert_eq!(s.inferences, 2 * s.feed_windows_scored);
        assert!(s.batches >= 3, "batch of 5 over 13 jobs needs >= 3 assemblies");
    }

    #[test]
    fn empty_key_set_and_mixed_windows_are_rejected() {
        let mut reg = ModelRegistry::unbounded();
        let cfg = FleetConfig::at_step(60);
        let households = vec![toy_household(2, 9)];
        assert!(matches!(
            serve_fleet(&mut reg, &[], &households, &cfg),
            Err(FleetError::NoAppliances)
        ));
        let k1 = kettle_key();
        let k2 = ModelKey::new(DatasetId::UkDale, ApplianceKind::Dishwasher);
        reg.insert(k1, random_model(&[5], 3));
        let mut other = random_model(&[5], 4);
        other.set_window(64);
        reg.insert(k2, other);
        assert!(matches!(
            serve_fleet(&mut reg, &[k1, k2], &households, &cfg),
            Err(FleetError::WindowMismatch { .. })
        ));
        let k3 = ModelKey::new(DatasetId::Refit, ApplianceKind::Dishwasher);
        let mut unknown_window = random_model(&[5], 5);
        unknown_window.set_window(0);
        reg.insert(k3, unknown_window);
        assert!(matches!(
            serve_fleet(&mut reg, &[k3], &households, &cfg),
            Err(FleetError::UnknownWindow(_))
        ));
    }

    #[test]
    fn single_appliance_fleet_matches_stream_serve() {
        // The N=1 fleet must be bit-identical to `stream::serve` — the
        // fleet path is a superset, not a different pipeline.
        let mut model = random_model(&[5, 7], 11);
        let households = vec![toy_household(5, 4), toy_household(4, 5)];
        let key = kettle_key();
        let tmpl_avg = template(key.dataset).case(key.appliance).unwrap().avg_power_w;
        let stream_cfg = StreamConfig {
            window: WINDOW,
            step_s: 60,
            max_ffill_s: 180,
            batch: 4,
            appliance: Some(key.appliance),
            avg_power_w: tmpl_avg,
        };
        let solo = serve(&mut model, &households, &stream_cfg);
        let mut reg = ModelRegistry::unbounded();
        reg.insert(key, model);
        let fleet_cfg = FleetConfig { batch: 4, max_ffill_s: 180, ..FleetConfig::at_step(60) };
        let fleet = serve_fleet(&mut reg, &[key], &households, &fleet_cfg).unwrap();
        for (hi, tl) in solo.iter().enumerate() {
            let ftl = fleet.timeline(hi, key).unwrap();
            assert_eq!(ftl.raw_status, tl.raw_status);
            assert_eq!(ftl.status, tl.status);
            let bits = |v: &[f32]| v.iter().map(|p| p.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&ftl.detection_proba), bits(&tl.detection_proba));
            assert_eq!(bits(&ftl.power_w), bits(&tl.power_w));
            assert_eq!(ftl.scored_starts, tl.scored_starts);
        }
    }

    #[test]
    fn shard_count_does_not_change_results() {
        let mut reg = ModelRegistry::unbounded();
        let k1 = kettle_key();
        let k2 = ModelKey::new(DatasetId::UkDale, ApplianceKind::Dishwasher);
        reg.insert(k1, random_model(&[5], 21));
        reg.insert(k2, random_model(&[9], 22));
        let households: Vec<HouseholdSeries> =
            (0..5).map(|i| toy_household(3 + i % 3, 30 + i as u64)).collect();
        let base = FleetConfig { batch: 3, ..FleetConfig::at_step(60) };
        let one = serve_fleet(&mut reg, &[k1, k2], &households, &base).unwrap();
        let four = serve_fleet(
            &mut reg,
            &[k1, k2],
            &households,
            &FleetConfig { threads: 4, ..base.clone() },
        )
        .unwrap();
        assert!(four.summary.shards > 1, "5 households over 4 threads must shard");
        for (a, b) in one.households.iter().zip(&four.households) {
            assert_eq!(a.id, b.id);
            for (ta, tb) in a.timelines.iter().zip(&b.timelines) {
                assert_eq!(ta.raw_status, tb.raw_status);
                assert_eq!(ta.status, tb.status);
                let bits = |v: &[f32]| v.iter().map(|p| p.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&ta.detection_proba), bits(&tb.detection_proba));
                assert_eq!(bits(&ta.power_w), bits(&tb.power_w));
            }
        }
    }

    #[test]
    fn bounded_registry_survives_single_shard_pass_with_many_keys() {
        // Regression: with max_loaded < keys.len(), the validation loop's
        // later loads evict earlier models; the single-shard checkout must
        // reload them on demand instead of panicking, and restoring the
        // checked-out models must re-enforce the budget.
        let dir = std::env::temp_dir().join(format!("camal_fleet_bounded_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let keys = [
            kettle_key(),
            ModelKey::new(DatasetId::Refit, ApplianceKind::Microwave),
            ModelKey::new(DatasetId::UkDale, ApplianceKind::Dishwasher),
        ];
        let mut reg = ModelRegistry::new(1);
        for (i, &key) in keys.iter().enumerate() {
            let path = dir.join(key.file_name());
            random_model(&[5], 50 + i as u64).save(&path).unwrap();
            reg.register_file(key, &path);
        }
        let households = vec![toy_household(3, 41)];
        let cfg = FleetConfig::at_step(60); // threads: 1 -> single shard
        let out = serve_fleet(&mut reg, &keys, &households, &cfg).unwrap();
        assert_eq!(out.summary.shards, 1);
        assert_eq!(out.households[0].timelines.len(), 3);
        assert!(reg.loaded_count() <= 1, "budget must hold after the pass");
        // And the bounded pass matches an unbounded one bit-for-bit.
        let mut unbounded = ModelRegistry::unbounded();
        unbounded.register_dir(&dir).unwrap();
        let free = serve_fleet(&mut unbounded, &keys, &households, &cfg).unwrap();
        for (ta, tb) in out.households[0].timelines.iter().zip(&free.households[0].timelines) {
            assert_eq!(ta.raw_status, tb.raw_status);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fleet_pass_leaves_registry_residency_unchanged() {
        // Workers use snapshots; a bounded registry must not thrash.
        let dir = std::env::temp_dir().join(format!("camal_fleet_reg_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let key = kettle_key();
        let path = dir.join(key.file_name());
        random_model(&[5], 31).save(&path).unwrap();
        let mut reg = ModelRegistry::new(1);
        reg.register_file(key, &path);
        let households = vec![toy_household(3, 40)];
        let cfg = FleetConfig { threads: 2, ..FleetConfig::at_step(60) };
        let _ = serve_fleet(&mut reg, &[key], &households, &cfg).unwrap();
        assert_eq!(reg.loaded_count(), 1);
        assert_eq!(reg.stats().loads, 1, "one lazy load, no thrash");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
