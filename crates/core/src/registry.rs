//! Model registry: the checkpoint zoo of a multi-appliance deployment.
//!
//! A utility running CamAL at fleet scale holds one trained detector per
//! `(dataset template, appliance)` pair — the `refit:kettle` model, the
//! `ukdale:dishwasher` model, and so on. [`ModelRegistry`] owns that zoo:
//! models can be inserted directly after training (pinned in memory) or
//! registered as checkpoint files (loaded lazily on first use via
//! [`crate::persist`]), and a bounded registry evicts the least-recently-used
//! reloadable model when the resident count exceeds its budget. The
//! [`ModelRegistry::manifest`] listing is what a serving process reports to
//! operators, and [`ModelRegistry::stats`] counts hits / loads / evictions
//! plus load failures and quarantines.
//!
//! Checkpoints that repeatedly fail to load are **quarantined**: after
//! [`QuarantinePolicy::threshold`] consecutive failures the registry stops
//! touching the file for an exponentially growing backoff window and lookups
//! fail fast with [`RegistryError::Quarantined`] (which carries a
//! `retry_after` hint). A successful load after the window expires clears
//! the quarantine, so a checkpoint that is repaired on disk heals without a
//! restart.
//!
//! The registry is the model source of the [`crate::fleet`] scheduler, which
//! snapshots the models it needs and fans them out across worker shards.

use crate::model::CamalModel;
use nilm_data::appliance::ApplianceKind;
use nilm_data::templates::DatasetId;
use nilm_tensor::serialize::SerializeError;
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Identity of one deployed detector: the dataset template it was trained on
/// and the appliance it detects.
///
/// ```
/// use camal::registry::ModelKey;
/// use nilm_data::prelude::*;
///
/// let key = ModelKey::new(DatasetId::Refit, ApplianceKind::Kettle);
/// assert_eq!(key.label(), "refit:kettle");
/// assert_eq!(key.file_name(), "refit_kettle.ckpt");
/// assert_eq!(ModelKey::from_file_name(&key.file_name()), Some(key));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModelKey {
    /// Dataset template the model was trained on (fixes ∆t and Table I
    /// thresholds).
    pub dataset: DatasetId,
    /// Appliance the model detects and localizes.
    pub appliance: ApplianceKind,
}

impl ModelKey {
    /// Builds a key.
    pub fn new(dataset: DatasetId, appliance: ApplianceKind) -> Self {
        ModelKey { dataset, appliance }
    }

    /// `dataset:appliance` display label (matches the evaluation cases).
    pub fn label(&self) -> String {
        format!("{}:{}", self.dataset.name(), self.appliance.name())
    }

    /// Canonical checkpoint file name, `<dataset>_<appliance>.ckpt`.
    pub fn file_name(&self) -> String {
        format!("{}_{}.ckpt", self.dataset.name(), self.appliance.name())
    }

    /// Parses a [`ModelKey::file_name`]-shaped name back into a key.
    /// Appliance names never contain `_`, so the split is unambiguous even
    /// for `edf_ev` / `edf_weak` datasets.
    pub fn from_file_name(name: &str) -> Option<Self> {
        let stem = name.strip_suffix(".ckpt")?;
        let (dataset, appliance) = stem.rsplit_once('_')?;
        Some(ModelKey {
            dataset: DatasetId::from_name(dataset)?,
            appliance: ApplianceKind::from_name(appliance)?,
        })
    }

    /// Parses a [`ModelKey::label`]-shaped `dataset:appliance` string back
    /// into a key — the wire format the network gateway accepts.
    ///
    /// ```
    /// use camal::registry::ModelKey;
    /// use nilm_data::prelude::*;
    ///
    /// let key = ModelKey::new(DatasetId::UkDale, ApplianceKind::Dishwasher);
    /// assert_eq!(ModelKey::from_label(&key.label()), Some(key));
    /// assert_eq!(ModelKey::from_label("mars:kettle"), None);
    /// assert_eq!(ModelKey::from_label("refit"), None);
    /// ```
    pub fn from_label(label: &str) -> Option<Self> {
        let (dataset, appliance) = label.split_once(':')?;
        Some(ModelKey {
            dataset: DatasetId::from_name(dataset)?,
            appliance: ApplianceKind::from_name(appliance)?,
        })
    }
}

impl fmt::Display for ModelKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Why a registry lookup failed.
#[derive(Debug)]
pub enum RegistryError {
    /// The key was never registered.
    Unknown(ModelKey),
    /// The backing checkpoint file could not be loaded.
    Load {
        /// Key whose load failed.
        key: ModelKey,
        /// Checkpoint path that was read.
        path: PathBuf,
        /// The underlying checkpoint error.
        source: SerializeError,
    },
    /// The backing checkpoint failed to load too many times in a row and is
    /// inside its quarantine backoff window; the file was not touched.
    Quarantined {
        /// Key whose checkpoint is quarantined.
        key: ModelKey,
        /// The quarantined checkpoint path.
        path: PathBuf,
        /// Time remaining until the registry will retry the load.
        retry_after: Duration,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Unknown(key) => write!(f, "model {key} is not registered"),
            RegistryError::Load { key, path, source } => {
                write!(f, "cannot load model {key} from {}: {source}", path.display())
            }
            RegistryError::Quarantined { key, path, retry_after } => write!(
                f,
                "model {key} ({}) is quarantined after repeated load failures; retry in {:.1}s",
                path.display(),
                retry_after.as_secs_f64()
            ),
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Unknown(_) | RegistryError::Quarantined { .. } => None,
            RegistryError::Load { source, .. } => Some(source),
        }
    }
}

/// When and for how long the registry quarantines a failing checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuarantinePolicy {
    /// Consecutive load failures before the first quarantine window opens.
    pub threshold: u32,
    /// Length of the first quarantine window; doubles with every further
    /// failure past the threshold.
    pub base_backoff: Duration,
    /// Upper bound on the backoff window.
    pub max_backoff: Duration,
}

impl Default for QuarantinePolicy {
    fn default() -> Self {
        QuarantinePolicy {
            threshold: 3,
            base_backoff: Duration::from_millis(500),
            max_backoff: Duration::from_secs(30),
        }
    }
}

impl QuarantinePolicy {
    /// Backoff window after `failures` consecutive failures (≥ threshold):
    /// `base_backoff * 2^(failures - threshold)`, capped at `max_backoff`.
    fn backoff(&self, failures: u32) -> Duration {
        let exp = failures.saturating_sub(self.threshold).min(16);
        let window = self.base_backoff.saturating_mul(1u32 << exp);
        window.min(self.max_backoff)
    }
}

/// Access counters of a registry (monotonic over its lifetime).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// `get_mut` calls served by an already-resident model.
    pub hits: u64,
    /// Checkpoint loads performed (first access or reload after eviction).
    pub loads: u64,
    /// Models dropped from memory by the LRU budget.
    pub evictions: u64,
    /// Checkpoint loads that failed (missing, torn or corrupt file).
    pub load_failures: u64,
    /// Quarantine windows opened by consecutive load failures.
    pub quarantines: u64,
}

/// One row of [`ModelRegistry::manifest`].
#[derive(Clone, Debug)]
pub struct ManifestEntry {
    /// The model's identity.
    pub key: ModelKey,
    /// Whether the model is currently resident in memory.
    pub loaded: bool,
    /// Backing checkpoint file, if the entry is reloadable.
    pub path: Option<PathBuf>,
    /// Training window length (0 until the model has been loaded once).
    pub window: usize,
    /// Ensemble size (0 until the model has been loaded once).
    pub ensemble_size: usize,
    /// Per-member backbone descriptions, e.g. `resnet(k5/div8)` (empty
    /// until the model has been loaded once).
    pub backbones: Vec<String>,
    /// Per-member trainable-parameter counts, aligned with `backbones`
    /// (empty until the model has been loaded once).
    pub param_counts: Vec<usize>,
}

struct Slot {
    /// Backing checkpoint; `None` for pinned in-memory models, which are
    /// never evicted.
    path: Option<PathBuf>,
    /// The resident model (`None` = registered but not loaded / evicted).
    model: Option<CamalModel>,
    /// LRU clock value of the last access.
    last_used: u64,
    /// Metadata cached at insert/first-load time for the manifest.
    window: usize,
    ensemble_size: usize,
    backbones: Vec<String>,
    param_counts: Vec<usize>,
    /// Consecutive checkpoint load failures (reset on success).
    failures: u32,
    /// End of the current quarantine window, if one is open.
    quarantined_until: Option<Instant>,
}

/// Holds the per-appliance detector zoo of a serving process.
///
/// ```
/// use camal::ensemble::EnsembleMember;
/// use camal::registry::{ModelKey, ModelRegistry};
/// use camal::{CamalConfig, CamalModel};
/// use nilm_data::prelude::*;
/// use nilm_models::{build_from_spec, BackboneSpec};
///
/// // A tiny untrained single-member model stands in for a trained one.
/// let cfg = CamalConfig { n_ensemble: 1, kernels: vec![5], width_div: 16, ..Default::default() };
/// let mut rng = nilm_tensor::init::rng(7);
/// let spec = BackboneSpec::ResNet { kernel: 5, width_div: 16 };
/// let member = EnsembleMember { net: build_from_spec(&mut rng, spec), spec, val_loss: 0.1 };
/// let mut model = CamalModel::from_members(cfg, vec![member]);
/// model.set_window(64);
///
/// let mut registry = ModelRegistry::unbounded();
/// let key = ModelKey::new(DatasetId::Refit, ApplianceKind::Kettle);
/// registry.insert(key, model);
/// assert_eq!(registry.len(), 1);
/// assert_eq!(registry.get_mut(key).unwrap().window(), 64);
/// let manifest = registry.manifest();
/// assert!(manifest[0].loaded && manifest[0].path.is_none());
/// ```
pub struct ModelRegistry {
    slots: BTreeMap<ModelKey, Slot>,
    /// Maximum resident models (0 = unbounded).
    max_loaded: usize,
    clock: u64,
    stats: RegistryStats,
    quarantine: QuarantinePolicy,
}

impl ModelRegistry {
    /// A registry keeping at most `max_loaded` models resident (0 disables
    /// the budget). Only file-backed models count as evictable; models
    /// added with [`ModelRegistry::insert`] are pinned.
    pub fn new(max_loaded: usize) -> Self {
        ModelRegistry {
            slots: BTreeMap::new(),
            max_loaded,
            clock: 0,
            stats: RegistryStats::default(),
            quarantine: QuarantinePolicy::default(),
        }
    }

    /// Replaces the quarantine policy (default:
    /// [`QuarantinePolicy::default`]). Tests use tight windows; operators
    /// can widen them for slow shared storage.
    pub fn set_quarantine_policy(&mut self, policy: QuarantinePolicy) {
        self.quarantine = policy;
    }

    /// The active quarantine policy.
    pub fn quarantine_policy(&self) -> QuarantinePolicy {
        self.quarantine
    }

    /// A registry with no residency budget.
    pub fn unbounded() -> Self {
        ModelRegistry::new(0)
    }

    /// The residency budget this registry was built with (0 = unbounded).
    pub fn max_loaded(&self) -> usize {
        self.max_loaded
    }

    /// Number of registered models (resident or not).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of models currently resident in memory.
    pub fn loaded_count(&self) -> usize {
        self.slots.values().filter(|s| s.model.is_some()).count()
    }

    /// All registered keys, in sorted order.
    pub fn keys(&self) -> Vec<ModelKey> {
        self.slots.keys().copied().collect()
    }

    /// True when `key` is registered.
    pub fn contains(&self, key: ModelKey) -> bool {
        self.slots.contains_key(&key)
    }

    /// Access counters (hits / loads / evictions).
    pub fn stats(&self) -> RegistryStats {
        self.stats
    }

    /// Registers an in-memory model (e.g. straight out of training). The
    /// model is pinned: it has no backing file, so the LRU budget never
    /// evicts it. Replaces any previous entry under `key`.
    pub fn insert(&mut self, key: ModelKey, mut model: CamalModel) {
        self.clock += 1;
        let slot = Slot {
            path: None,
            window: model.window(),
            ensemble_size: model.ensemble_size(),
            backbones: model.describe_members(),
            param_counts: model.member_param_counts(),
            model: Some(model),
            last_used: self.clock,
            failures: 0,
            quarantined_until: None,
        };
        self.slots.insert(key, slot);
    }

    /// Registers a checkpoint file to be loaded lazily on first
    /// [`ModelRegistry::get_mut`]. The file is not touched here; a missing
    /// or corrupt checkpoint surfaces as [`RegistryError::Load`] at access
    /// time. Replaces any previous entry under `key`.
    pub fn register_file(&mut self, key: ModelKey, path: impl Into<PathBuf>) {
        self.clock += 1;
        let slot = Slot {
            path: Some(path.into()),
            model: None,
            last_used: self.clock,
            window: 0,
            ensemble_size: 0,
            backbones: Vec::new(),
            param_counts: Vec::new(),
            failures: 0,
            quarantined_until: None,
        };
        self.slots.insert(key, slot);
    }

    /// Scans `dir` for `<dataset>_<appliance>.ckpt` files (the
    /// [`ModelKey::file_name`] convention) and registers each lazily.
    /// Returns the keys found, sorted. Files with other names are ignored.
    pub fn register_dir(&mut self, dir: impl AsRef<Path>) -> std::io::Result<Vec<ModelKey>> {
        let mut found = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(key) = ModelKey::from_file_name(name) {
                self.register_file(key, entry.path());
                found.push(key);
            }
        }
        found.sort();
        Ok(found)
    }

    /// Returns the model for `key`, loading it from its checkpoint if it is
    /// not resident. Updates the LRU clock and, when a load pushes the
    /// resident count over the budget, evicts least-recently-used
    /// file-backed models until it fits again.
    ///
    /// Load failures count toward the quarantine policy: inside an open
    /// quarantine window the file is not touched and the lookup fails fast
    /// with [`RegistryError::Quarantined`]; a successful load clears the
    /// failure streak.
    pub fn get_mut(&mut self, key: ModelKey) -> Result<&mut CamalModel, RegistryError> {
        if !self.slots.contains_key(&key) {
            return Err(RegistryError::Unknown(key));
        }
        self.clock += 1;
        let clock = self.clock;
        let resident = self.slots.get(&key).expect("checked above").model.is_some();
        if resident {
            self.stats.hits += 1;
        } else {
            let slot = self.slots.get(&key).expect("checked above");
            let path = slot.path.clone().expect("non-resident slot always has a backing path");
            if let Some(until) = slot.quarantined_until {
                let now = Instant::now();
                if now < until {
                    return Err(RegistryError::Quarantined { key, path, retry_after: until - now });
                }
            }
            match CamalModel::load(&path) {
                Ok(mut model) => {
                    let slot = self.slots.get_mut(&key).expect("checked above");
                    slot.window = model.window();
                    slot.ensemble_size = model.ensemble_size();
                    slot.backbones = model.describe_members();
                    slot.param_counts = model.member_param_counts();
                    slot.model = Some(model);
                    slot.last_used = clock;
                    slot.failures = 0;
                    slot.quarantined_until = None;
                    self.stats.loads += 1;
                    self.enforce_budget(key);
                }
                Err(source) => {
                    let policy = self.quarantine;
                    let slot = self.slots.get_mut(&key).expect("checked above");
                    slot.failures += 1;
                    self.stats.load_failures += 1;
                    if slot.failures >= policy.threshold {
                        slot.quarantined_until =
                            Some(Instant::now() + policy.backoff(slot.failures));
                        self.stats.quarantines += 1;
                    }
                    return Err(RegistryError::Load { key, path, source });
                }
            }
        }
        let slot = self.slots.get_mut(&key).expect("checked above");
        slot.last_used = clock;
        Ok(slot.model.as_mut().expect("slot resident after load"))
    }

    /// Drops `key`'s model from memory, keeping the registration. Returns
    /// `false` when the model is not resident or has no backing file (a
    /// pinned model cannot be evicted — it would be lost).
    pub fn evict(&mut self, key: ModelKey) -> bool {
        match self.slots.get_mut(&key) {
            Some(slot) if slot.model.is_some() && slot.path.is_some() => {
                slot.model = None;
                self.stats.evictions += 1;
                true
            }
            _ => false,
        }
    }

    /// Evicts LRU file-backed models (never `keep`) until the resident
    /// count fits the budget.
    fn enforce_budget(&mut self, keep: ModelKey) {
        if self.max_loaded == 0 {
            return;
        }
        while self.loaded_count() > self.max_loaded {
            let victim = self
                .slots
                .iter()
                .filter(|(k, s)| **k != keep && s.model.is_some() && s.path.is_some())
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    self.slots.get_mut(&k).expect("victim exists").model = None;
                    self.stats.evictions += 1;
                }
                // Everything else is pinned: allow exceeding the budget
                // rather than dropping models that cannot be reloaded.
                None => break,
            }
        }
    }

    /// Temporarily removes a resident model from its slot (no stats or
    /// eviction bookkeeping) so a caller can hold several models mutably at
    /// once. The caller must hand the model back with
    /// [`ModelRegistry::restore`]; the slot stays registered meanwhile.
    /// A checked-out model cannot be evicted (it is not in its slot).
    /// Used by the fleet scheduler's single-shard fast path.
    pub(crate) fn take_resident(&mut self, key: ModelKey) -> Option<CamalModel> {
        self.slots.get_mut(&key).and_then(|slot| slot.model.take())
    }

    /// Returns a model checked out with [`ModelRegistry::take_resident`],
    /// then re-enforces the residency budget (restoring several checked-out
    /// models must not permanently overshoot `max_loaded`).
    pub(crate) fn restore(&mut self, key: ModelKey, model: CamalModel) {
        let slot = self.slots.get_mut(&key).expect("restore of a key that was never registered");
        slot.model = Some(model);
        self.enforce_budget(key);
    }

    /// One row per registered model: residency, backing file and (once
    /// loaded at least once) window length, ensemble size and the
    /// per-member backbone descriptions with parameter counts.
    pub fn manifest(&self) -> Vec<ManifestEntry> {
        self.slots
            .iter()
            .map(|(key, slot)| ManifestEntry {
                key: *key,
                loaded: slot.model.is_some(),
                path: slot.path.clone(),
                window: slot.window,
                ensemble_size: slot.ensemble_size,
                backbones: slot.backbones.clone(),
                param_counts: slot.param_counts.clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CamalConfig;
    use crate::ensemble::EnsembleMember;
    use nilm_models::detector::{build_from_spec, BackboneSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model(seed: u64) -> CamalModel {
        let cfg = CamalConfig {
            n_ensemble: 1,
            kernels: vec![5],
            trials: 1,
            width_div: 16,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = BackboneSpec::ResNet { kernel: 5, width_div: cfg.width_div };
        let member = EnsembleMember { net: build_from_spec(&mut rng, spec), spec, val_loss: 0.1 };
        let mut model = CamalModel::from_members(cfg, vec![member]);
        model.set_window(32);
        model
    }

    fn temp_zoo(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("camal_registry_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn save_tiny(dir: &Path, key: ModelKey, seed: u64) -> PathBuf {
        let path = dir.join(key.file_name());
        tiny_model(seed).save(&path).unwrap();
        path
    }

    #[test]
    fn key_file_name_roundtrips_for_every_pair() {
        for dataset in DatasetId::all() {
            for appliance in [
                ApplianceKind::Kettle,
                ApplianceKind::Microwave,
                ApplianceKind::Dishwasher,
                ApplianceKind::WashingMachine,
                ApplianceKind::Shower,
                ApplianceKind::ElectricVehicle,
            ] {
                let key = ModelKey::new(dataset, appliance);
                assert_eq!(ModelKey::from_file_name(&key.file_name()), Some(key));
            }
        }
        assert_eq!(ModelKey::from_file_name("notacheckpoint.bin"), None);
        assert_eq!(ModelKey::from_file_name("mars_kettle.ckpt"), None);
    }

    #[test]
    fn lazy_load_and_hit_counters() {
        let dir = temp_zoo("lazy");
        let key = ModelKey::new(DatasetId::Refit, ApplianceKind::Kettle);
        save_tiny(&dir, key, 1);
        let mut reg = ModelRegistry::unbounded();
        reg.register_file(key, dir.join(key.file_name()));
        assert_eq!(reg.loaded_count(), 0, "registration must not load");
        assert_eq!(reg.get_mut(key).unwrap().window(), 32);
        assert_eq!(reg.loaded_count(), 1);
        let _ = reg.get_mut(key).unwrap();
        let stats = reg.stats();
        assert_eq!((stats.loads, stats.hits, stats.evictions), (1, 1, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A two-member mixed ResNet + TransApp model for manifest tests.
    fn mixed_model(seed: u64) -> CamalModel {
        let specs = [
            BackboneSpec::ResNet { kernel: 5, width_div: 16 },
            BackboneSpec::TransApp { d_model: 16, heads: 2, d_ff: 32, layers: 1, downsample: 4 },
        ];
        let cfg = CamalConfig {
            n_ensemble: specs.len(),
            kernels: vec![5],
            candidates: vec![specs[1]],
            trials: 1,
            width_div: 16,
            ..Default::default()
        };
        let members = specs
            .iter()
            .enumerate()
            .map(|(i, &spec)| {
                let mut rng = StdRng::seed_from_u64(seed + i as u64);
                EnsembleMember {
                    net: build_from_spec(&mut rng, spec),
                    spec,
                    val_loss: 0.1 * (i + 1) as f32,
                }
            })
            .collect();
        let mut model = CamalModel::from_members(cfg, members);
        model.set_window(32);
        model
    }

    #[test]
    fn manifest_reports_backbones_and_param_counts() {
        let dir = temp_zoo("backbones");
        let pinned = ModelKey::new(DatasetId::Refit, ApplianceKind::Kettle);
        let lazy = ModelKey::new(DatasetId::UkDale, ApplianceKind::Dishwasher);
        let mut expected = mixed_model(11);
        let expected_backbones = expected.describe_members();
        let expected_params = expected.member_param_counts();
        mixed_model(11).save(dir.join(lazy.file_name())).unwrap();

        let mut reg = ModelRegistry::unbounded();
        reg.insert(pinned, mixed_model(11));
        reg.register_file(lazy, dir.join(lazy.file_name()));

        // Pinned models report their zoo immediately; lazy ones only after
        // the first load.
        let manifest = reg.manifest();
        let row = manifest.iter().find(|m| m.key == pinned).unwrap();
        assert_eq!(row.backbones, expected_backbones);
        assert_eq!(row.param_counts, expected_params);
        assert!(row.backbones.iter().any(|b| b.starts_with("transapp(")), "{:?}", row.backbones);
        let row = manifest.iter().find(|m| m.key == lazy).unwrap();
        assert!(row.backbones.is_empty() && row.param_counts.is_empty());

        let _ = reg.get_mut(lazy).unwrap();
        let manifest = reg.manifest();
        let row = manifest.iter().find(|m| m.key == lazy).unwrap();
        assert_eq!(row.backbones, expected_backbones);
        assert_eq!(row.param_counts, expected_params);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_evicts_least_recently_used() {
        let dir = temp_zoo("lru");
        let k1 = ModelKey::new(DatasetId::Refit, ApplianceKind::Kettle);
        let k2 = ModelKey::new(DatasetId::Refit, ApplianceKind::Microwave);
        let k3 = ModelKey::new(DatasetId::UkDale, ApplianceKind::Dishwasher);
        let mut reg = ModelRegistry::new(2);
        for (key, seed) in [(k1, 1), (k2, 2), (k3, 3)] {
            save_tiny(&dir, key, seed);
            reg.register_file(key, dir.join(key.file_name()));
        }
        let _ = reg.get_mut(k1).unwrap();
        let _ = reg.get_mut(k2).unwrap();
        // k1 is LRU; loading k3 must push it out.
        let _ = reg.get_mut(k3).unwrap();
        assert_eq!(reg.loaded_count(), 2);
        let resident: Vec<ModelKey> =
            reg.manifest().iter().filter(|m| m.loaded).map(|m| m.key).collect();
        assert!(resident.contains(&k2) && resident.contains(&k3), "{resident:?}");
        assert_eq!(reg.stats().evictions, 1);
        // The evicted model transparently reloads.
        assert_eq!(reg.get_mut(k1).unwrap().window(), 32);
        assert_eq!(reg.stats().loads, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pinned_models_are_never_evicted() {
        let dir = temp_zoo("pinned");
        let pinned = ModelKey::new(DatasetId::Refit, ApplianceKind::Kettle);
        let filed = ModelKey::new(DatasetId::Refit, ApplianceKind::Microwave);
        let mut reg = ModelRegistry::new(1);
        reg.insert(pinned, tiny_model(9));
        save_tiny(&dir, filed, 10);
        reg.register_file(filed, dir.join(filed.file_name()));
        let _ = reg.get_mut(filed).unwrap();
        // Budget is 1 but both stay: the pinned model cannot be dropped and
        // the just-loaded one is protected.
        assert_eq!(reg.loaded_count(), 2);
        assert!(!reg.evict(pinned), "pinned model must refuse manual eviction");
        assert!(reg.evict(filed));
        assert_eq!(reg.loaded_count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_and_corrupt_entries_error() {
        let dir = temp_zoo("err");
        let key = ModelKey::new(DatasetId::EdfEv, ApplianceKind::ElectricVehicle);
        let mut reg = ModelRegistry::unbounded();
        assert!(matches!(reg.get_mut(key), Err(RegistryError::Unknown(k)) if k == key));
        let path = dir.join(key.file_name());
        std::fs::write(&path, b"not a checkpoint").unwrap();
        reg.register_file(key, &path);
        assert!(matches!(reg.get_mut(key), Err(RegistryError::Load { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn repeated_load_failures_quarantine_then_heal() {
        let dir = temp_zoo("quarantine");
        let key = ModelKey::new(DatasetId::Refit, ApplianceKind::Kettle);
        let path = dir.join(key.file_name());
        std::fs::write(&path, b"garbage, not a checkpoint").unwrap();
        let mut reg = ModelRegistry::unbounded();
        reg.set_quarantine_policy(QuarantinePolicy {
            threshold: 2,
            base_backoff: std::time::Duration::from_millis(40),
            max_backoff: std::time::Duration::from_secs(1),
        });
        reg.register_file(key, &path);
        // Failures below the threshold keep hitting the disk.
        assert!(matches!(reg.get_mut(key), Err(RegistryError::Load { .. })));
        // The second failure reaches the threshold and opens the window.
        assert!(matches!(reg.get_mut(key), Err(RegistryError::Load { .. })));
        match reg.get_mut(key) {
            Err(RegistryError::Quarantined { retry_after, .. }) => {
                assert!(retry_after <= std::time::Duration::from_millis(40));
            }
            other => panic!("expected Quarantined, got {:?}", other.map(|_| ())),
        }
        let stats = reg.stats();
        assert_eq!((stats.load_failures, stats.quarantines), (2, 1));
        // Repair the checkpoint on disk; after the window expires the next
        // lookup retries, succeeds and clears the streak.
        tiny_model(3).save(&path).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(60));
        assert_eq!(reg.get_mut(key).unwrap().window(), 32);
        assert_eq!(reg.stats().loads, 1);
        // The healed entry quarantines again only after fresh failures.
        assert!(reg.get_mut(key).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn register_dir_discovers_checkpoints() {
        let dir = temp_zoo("scan");
        let k1 = ModelKey::new(DatasetId::Refit, ApplianceKind::Kettle);
        let k2 = ModelKey::new(DatasetId::EdfEv, ApplianceKind::ElectricVehicle);
        save_tiny(&dir, k1, 4);
        save_tiny(&dir, k2, 5);
        std::fs::write(dir.join("README.txt"), b"ignored").unwrap();
        let mut reg = ModelRegistry::unbounded();
        let found = reg.register_dir(&dir).unwrap();
        assert_eq!(found, vec![k1, k2].into_iter().collect::<Vec<_>>());
        assert_eq!(reg.len(), 2);
        assert!(reg.get_mut(k2).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
