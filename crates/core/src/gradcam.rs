//! Grad-CAM (Selvaraju et al., paper ref. \[12\]) adapted to 1-D series, as an
//! alternative explainer for the localization step.
//!
//! Grad-CAM weights each feature map by the average gradient of the class
//! logit with respect to it: `α_k = mean_t ∂y_c/∂f_k(t)`, then
//! `GradCAM_c(t) = ReLU(Σ_k α_k f_k(t))`.
//!
//! For CamAL's ResNet the classifier head is a single linear layer behind
//! global average pooling, so `∂y_c/∂f_k(t) = w_ck / T` is constant and
//! Grad-CAM reduces *exactly* to `ReLU(CAM_c / T)` — i.e., after the
//! max-normalization of the localization pipeline, the two explainers are
//! identical. This module exists to (a) prove that equivalence in tests
//! (validating both implementations) and (b) support architectures whose
//! heads are deeper than one linear layer.

use nilm_models::Detector;
use nilm_tensor::layer::Mode;
use nilm_tensor::tensor::Tensor;

/// Computes Grad-CAM maps `[b, t]` for `class` by differentiating the class
/// logit with respect to the feature maps.
///
/// The gradient is obtained analytically for the GAP + linear head: the
/// feature-map gradient of logit `c` is `w_ck / T`. (Running the network's
/// full backward pass would also update parameter gradients, which an
/// explainer must not do.)
pub fn grad_cam(net: &mut dyn Detector, x: &Tensor, class: usize) -> Tensor {
    // `Infer`: eval numerics without backward bookkeeping — an explainer
    // must not leave gradient state behind anyway.
    let (features, _logits) = net.forward_features(x, Mode::Infer);
    let (b, c, t) = features.dims3();
    let w = net.head_weights();
    assert!(class < w.dims2().0, "class {class} out of range");

    let mut out = Tensor::zeros(&[b, t]);
    for bi in 0..b {
        // α_k = mean_t ∂y/∂f_k(t) = w_ck / T  (constant per channel).
        for ci in 0..c {
            let alpha = w.at2(class, ci) / t as f32;
            if alpha == 0.0 {
                continue;
            }
            let row = features.row(bi, ci);
            let or = &mut out.data_mut()[bi * t..(bi + 1) * t];
            for (o, &f) in or.iter_mut().zip(row) {
                *o += alpha * f;
            }
        }
        // Final ReLU per Grad-CAM.
        for o in &mut out.data_mut()[bi * t..(bi + 1) * t] {
            *o = o.max(0.0);
        }
    }
    out
}

/// Maximum relative deviation between normalized Grad-CAM and normalized CAM
/// (should be ~0 for GAP-linear heads; useful as a self-check diagnostic).
pub fn cam_gradcam_divergence(net: &mut dyn Detector, x: &Tensor, class: usize) -> f32 {
    let gc = grad_cam(net, x, class);
    let cam = net.cam(class);
    let (b, t) = gc.dims2();
    let mut worst = 0.0f32;
    for bi in 0..b {
        let g = &gc.data()[bi * t..(bi + 1) * t];
        let c = &cam.data()[bi * t..(bi + 1) * t];
        let gmax = g.iter().copied().fold(0.0f32, f32::max);
        let cmax = c.iter().copied().fold(0.0f32, f32::max);
        if gmax == 0.0 || cmax == 0.0 {
            continue;
        }
        for (gv, cv) in g.iter().zip(c) {
            let gn = gv / gmax;
            let cn = (cv / cmax).max(0.0);
            worst = worst.max((gn - cn).abs());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilm_models::resnet::{ResNet, ResNetConfig};
    use nilm_tensor::init::{randn_tensor, rng};
    use nilm_tensor::layer::Layer;

    fn tiny_net() -> ResNet {
        let mut r = rng(4);
        ResNet::new(&mut r, ResNetConfig { kernel: 5, channels: [4, 8, 8], num_classes: 2 })
    }

    #[test]
    fn gradcam_shape_matches_input() {
        let mut net = tiny_net();
        let mut r = rng(5);
        let x = randn_tensor(&mut r, &[2, 1, 24], 1.0);
        let gc = grad_cam(&mut net, &x, 1);
        assert_eq!(gc.shape(), &[2, 24]);
        assert!(gc.data().iter().all(|&v| v >= 0.0), "Grad-CAM is ReLU'd");
    }

    #[test]
    fn gradcam_equals_cam_for_gap_linear_head() {
        // The theoretical equivalence: for a GAP + single-linear head,
        // normalized Grad-CAM == normalized (ReLU'd) CAM.
        let mut net = tiny_net();
        let mut r = rng(6);
        let x = randn_tensor(&mut r, &[3, 1, 32], 1.0);
        let div = cam_gradcam_divergence(&mut net, &x, 1);
        assert!(div < 1e-4, "divergence {div}");
    }

    #[test]
    fn gradcam_does_not_touch_parameter_gradients() {
        let mut net = tiny_net();
        let mut r = rng(7);
        let x = randn_tensor(&mut r, &[1, 1, 16], 1.0);
        net.zero_grad();
        let _ = grad_cam(&mut net, &x, 1);
        let mut grad_norm = 0.0f32;
        net.visit_params(&mut |p| grad_norm += p.grad.norm());
        assert_eq!(grad_norm, 0.0, "explainer must not accumulate gradients");
    }
}
