//! # camal
//!
//! Rust implementation of **CamAL** (Class Activation Map based Appliance
//! Localization), the weakly supervised NILM framework of Petralia et al.,
//! ICDE 2025. CamAL trains an ensemble of convolutional ResNet classifiers
//! on *weak* labels (one label per window — or one possession answer per
//! household), then localizes appliance activations by averaging the
//! ensemble's Class Activation Maps and applying them as an attention mask
//! over the input.
//!
//! Pipeline (paper Fig. 3):
//! 1. [`ensemble`] — Algorithm 1: train `|K_p| × trials` ResNet candidates,
//!    keep the `n` best by validation loss.
//! 2. [`localize`] — extract/normalize/average CAMs, attention-sigmoid.
//! 3. [`power`] — binary status → per-appliance power, clipped by the
//!    aggregate.
//!
//! Serving layers on top of the pipeline: [`persist`] checkpoints a trained
//! model, [`stream`] localizes one appliance over arbitrary-length household
//! feeds, [`registry`] holds the per-`(dataset, appliance)` checkpoint zoo,
//! and [`fleet`] fans every registered detector over shared preprocessed
//! feeds — the multi-appliance scale-out ([`stream::serve`] is its N=1
//! case).
//!
//! ## Example
//!
//! ```no_run
//! use camal::{CamalConfig, CamalModel};
//! use nilm_data::prelude::*;
//!
//! let ds = generate_dataset(&refit(), ScaleOverride::default(), 1);
//! let case = prepare_case(&ds, ApplianceKind::Kettle, 510, &SplitConfig::default());
//! let mut model = CamalModel::train(&CamalConfig::small(), &case.train, &case.val, 4);
//! let report = model.evaluate(&case.test, 2000.0, 16);
//! println!("localization F1 = {:.3}", report.localization.f1);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod gradcam;
pub mod postprocess;

pub mod ensemble;
pub mod fleet;
pub mod localize;
pub mod model;
pub mod persist;
pub mod power;
pub mod registry;
pub mod stream;
#[cfg(test)]
pub(crate) mod test_support;

pub use config::{CamalConfig, DEFAULT_KERNELS};
pub use ensemble::{train_ensemble, EnsembleMember, EnsembleStats};
pub use fleet::{serve_fleet, FleetConfig, FleetError, FleetResult, FleetSummary};
pub use gradcam::{cam_gradcam_divergence, grad_cam};
pub use model::{report_from_status, CamalModel, CaseReport, Localization};
pub use power::estimate_power;
pub use registry::{ModelKey, ModelRegistry, RegistryError, RegistryStats};
pub use stream::{serve, HouseholdSeries, HouseholdTimeline, StreamConfig};
