//! Streaming inference: localize appliances over arbitrary-length meter
//! series, the shape a production service ingests (one continuous series
//! per household, not pre-sliced windows).
//!
//! The pipeline mirrors the paper's §V-B preprocessing — resample to the
//! model's resolution, forward-fill bounded gaps, slice into non-overlapping
//! model windows — then batches windows **across households** through one
//! loaded ensemble (large batches keep the GEMM backend fed), stitches the
//! per-window statuses back into a continuous per-household timeline, and
//! finally applies the duration priors of [`crate::postprocess`] *on the
//! stitched timeline*. Running the priors after stitching matters: an
//! activation that spans a window boundary is two short fragments at the
//! window level (which a per-window prior would delete) but one plausible
//! run at the timeline level.
//!
//! Windows that still contain missing values after forward-filling are
//! skipped, exactly like the training pipeline drops them; the
//! corresponding timeline region stays OFF and is reported in the coverage
//! counters.
//!
//! Since the fleet-serving PR, [`serve`] is the N=1 special case of the
//! shared-pass engine in [`crate::fleet`]: one registered appliance, one
//! worker shard. The multi-appliance scheduler ([`crate::fleet::serve_fleet`])
//! runs the very same stages, amortizing the preprocessing and batch
//! assembly across every model of the fleet.

use crate::fleet::AppliancePlan;
use crate::model::CamalModel;
use nilm_data::appliance::ApplianceKind;
use nilm_data::series::TimeSeries;

/// How a [`serve`] call preprocesses, batches and post-processes.
///
/// ```
/// use camal::stream::StreamConfig;
/// use nilm_data::prelude::ApplianceKind;
///
/// let cfg = StreamConfig::for_appliance(128, 60, ApplianceKind::Kettle, 2000.0);
/// assert_eq!(cfg.max_ffill_s, 180, "default forward-fill bound is 3 samples");
/// assert_eq!(cfg.appliance, Some(ApplianceKind::Kettle));
/// ```
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Model window length `w` (must match the training window).
    pub window: usize,
    /// Target sampling step in seconds (the resolution the model was
    /// trained at); inputs are downsampled to it.
    pub step_s: u32,
    /// Maximum gap (seconds) forward-filled before windows are sliced.
    pub max_ffill_s: u32,
    /// Windows per inference batch, pooled across every household.
    pub batch: usize,
    /// Appliance whose duration priors are applied to the stitched
    /// timeline; `None` disables post-processing.
    pub appliance: Option<ApplianceKind>,
    /// Average running power P_a for the §IV-C power estimate.
    pub avg_power_w: f32,
}

impl StreamConfig {
    /// A config with post-processing and power estimation for `kind`.
    pub fn for_appliance(
        window: usize,
        step_s: u32,
        kind: ApplianceKind,
        avg_power_w: f32,
    ) -> Self {
        StreamConfig {
            window,
            step_s,
            max_ffill_s: 3 * step_s,
            batch: 64,
            appliance: Some(kind),
            avg_power_w,
        }
    }
}

/// One household's input: an identifier plus its raw aggregate series (any
/// length, any step that divides `step_s`, NaN = missing).
///
/// ```
/// use camal::stream::HouseholdSeries;
/// use nilm_data::prelude::TimeSeries;
///
/// let hh = HouseholdSeries {
///     id: "house-0".into(),
///     series: TimeSeries::new(vec![120.0, 2000.0, 1950.0, 130.0], 60),
/// };
/// assert_eq!(hh.series.len(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct HouseholdSeries {
    /// Caller-chosen identifier, echoed in the output.
    pub id: String,
    /// Raw mains readings in Watts.
    pub series: TimeSeries,
}

/// One household's stitched inference output at [`StreamConfig::step_s`]
/// resolution.
///
/// ```
/// use camal::stream::HouseholdTimeline;
///
/// let tl = HouseholdTimeline {
///     id: "h".into(),
///     step_s: 1800,
///     raw_status: vec![0, 1, 1, 0, 1, 0],
///     status: vec![0, 1, 1, 0, 1, 0],
///     power_w: vec![0.0, 1000.0, 1000.0, 0.0, 1000.0, 0.0],
///     detection_proba: vec![0.9],
///     scored_starts: vec![0],
///     windows_total: 1,
///     windows_scored: 1,
///     windows_detected: 1,
/// };
/// assert_eq!(tl.activations(), 2);
/// assert!((tl.on_fraction() - 0.5).abs() < 1e-9);
/// assert!((tl.energy_wh() - 1500.0).abs() < 1e-6);
/// ```
#[derive(Clone, Debug)]
pub struct HouseholdTimeline {
    /// Echo of the input identifier.
    pub id: String,
    /// Sampling step of every per-timestep vector below.
    pub step_s: u32,
    /// Stitched ON/OFF status straight from the ensemble (pre-prior) — the
    /// exact concatenation of the per-window statuses.
    pub raw_status: Vec<u8>,
    /// Status after the duration priors (equals `raw_status` when
    /// [`StreamConfig::appliance`] is `None`).
    pub status: Vec<u8>,
    /// Estimated appliance power in Watts (from `status`, §IV-C).
    pub power_w: Vec<f32>,
    /// Ensemble detection probability per scored window, in window order.
    pub detection_proba: Vec<f32>,
    /// Timeline start sample of each scored window (aligned with
    /// `detection_proba`), so callers can map per-window results — or
    /// compare against the windowed batch API — without re-deriving the
    /// NaN-skip bookkeeping.
    pub scored_starts: Vec<usize>,
    /// Windows the resampled series was sliced into (tail excluded).
    pub windows_total: usize,
    /// Windows actually scored (NaN-free after forward-filling).
    pub windows_scored: usize,
    /// Scored windows whose detection probability cleared the threshold.
    pub windows_detected: usize,
}

impl HouseholdTimeline {
    /// Fraction of timeline samples predicted ON.
    pub fn on_fraction(&self) -> f64 {
        if self.status.is_empty() {
            return 0.0;
        }
        self.status.iter().filter(|&&s| s != 0).count() as f64 / self.status.len() as f64
    }

    /// Number of contiguous ON runs (appliance activations).
    pub fn activations(&self) -> usize {
        let mut runs = 0;
        let mut prev = 0u8;
        for &s in &self.status {
            if s == 1 && prev == 0 {
                runs += 1;
            }
            prev = s;
        }
        runs
    }

    /// Estimated appliance energy over the timeline, in watt-hours.
    pub fn energy_wh(&self) -> f64 {
        let hours = self.step_s as f64 / 3600.0;
        self.power_w.iter().map(|&p| p as f64 * hours).sum()
    }
}

/// Runs the full streaming pipeline for a set of households against one
/// loaded model. See the module docs for the stages. The model's window
/// length must equal `cfg.window`; series must be sampled at a step that
/// divides `cfg.step_s`.
///
/// This is the N=1 case of the fleet engine: one appliance plan, one worker
/// shard ([`crate::fleet::serve_fleet`] runs the identical stages for N
/// models over shared batches).
///
/// ```no_run
/// use camal::stream::{serve, HouseholdSeries, StreamConfig};
/// use camal::CamalModel;
/// use nilm_data::prelude::*;
///
/// let mut model = CamalModel::load("refit_kettle.ckpt").unwrap();
/// let cfg = StreamConfig::for_appliance(model.window(), 60, ApplianceKind::Kettle, 2000.0);
/// let feed = HouseholdSeries {
///     id: "house-0".into(),
///     series: TimeSeries::new(vec![120.0; 24 * 60], 60),
/// };
/// let timelines = serve(&mut model, &[feed], &cfg);
/// println!("kettle ran {} times", timelines[0].activations());
/// ```
pub fn serve(
    model: &mut CamalModel,
    households: &[HouseholdSeries],
    cfg: &StreamConfig,
) -> Vec<HouseholdTimeline> {
    let plans = [AppliancePlan { appliance: cfg.appliance, avg_power_w: cfg.avg_power_w }];
    let (mut per_model, _) = crate::fleet::serve_shared(
        &mut [model],
        &plans,
        households,
        cfg.window,
        cfg.step_s,
        cfg.max_ffill_s,
        cfg.batch,
    );
    per_model.pop().expect("shared pass returns one timeline set per model")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CamalConfig;
    use crate::model::CamalModel;
    use crate::postprocess::apply_duration_prior;
    use crate::test_support::toy_set;
    use nilm_models::TrainConfig;

    fn trained_model() -> CamalModel {
        let cfg = CamalConfig {
            n_ensemble: 2,
            kernels: vec![5, 9],
            trials: 1,
            width_div: 16,
            train: TrainConfig { epochs: 6, batch_size: 8, lr: 2e-3, clip: 5.0, seed: 3 },
            ..Default::default()
        };
        let train = toy_set(32, 32, 1);
        let val = toy_set(8, 32, 2);
        CamalModel::train(&cfg, &train, &val, 2)
    }

    /// A clean 60 s series with square activations, long enough for
    /// several 32-sample windows.
    fn toy_series(n: usize, seed: u64) -> TimeSeries {
        let mut vals = Vec::with_capacity(n);
        for t in 0..n {
            let phase = (t as u64).wrapping_mul(2654435761).wrapping_add(seed * 97);
            let on = (t / 8) % 4 == (phase % 3) as usize;
            vals.push(if on { 2000.0 } else { 100.0 });
        }
        TimeSeries::new(vals, 60)
    }

    #[test]
    fn serve_covers_every_household_and_sample() {
        let mut model = trained_model();
        let hh: Vec<HouseholdSeries> = (0..3)
            .map(|i| HouseholdSeries {
                id: format!("house-{i}"),
                series: toy_series(32 * 5 + 7, i as u64),
            })
            .collect();
        let cfg = StreamConfig {
            window: 32,
            step_s: 60,
            max_ffill_s: 180,
            batch: 4,
            appliance: None,
            avg_power_w: 2000.0,
        };
        let out = serve(&mut model, &hh, &cfg);
        assert_eq!(out.len(), 3);
        for tl in &out {
            assert_eq!(tl.windows_total, 5);
            assert_eq!(tl.windows_scored, 5);
            assert_eq!(tl.raw_status.len(), 32 * 5 + 7);
            assert_eq!(tl.status, tl.raw_status, "no prior requested");
            assert_eq!(tl.detection_proba.len(), 5);
            // The tail (7 samples) can never be ON: it was never scored.
            assert!(tl.raw_status[160..].iter().all(|&s| s == 0));
            assert_eq!(tl.power_w.len(), tl.status.len());
        }
    }

    #[test]
    fn streaming_matches_windowed_batch_pre_prior() {
        // The stitched raw statuses must equal `localize_set` run over the
        // same windows — streaming is a transport, not a different model.
        let mut model = trained_model();
        let series = toy_series(32 * 6, 9);
        let hh = vec![HouseholdSeries { id: "h".into(), series: series.clone() }];
        let cfg = StreamConfig {
            window: 32,
            step_s: 60,
            max_ffill_s: 180,
            batch: 3, // deliberately unaligned with the window count
            appliance: None,
            avg_power_w: 2000.0,
        };
        let out = serve(&mut model, &hh, &cfg);
        let windows = nilm_data::preprocess::slice_windows(&series, None, 300.0, 32, 0, false);
        let set = nilm_data::windows::WindowSet::new(windows);
        let loc = model.localize_set(&set, 16);
        for (wi, st) in loc.status.iter().enumerate() {
            assert_eq!(
                &out[0].raw_status[wi * 32..(wi + 1) * 32],
                &st[..],
                "window {wi} differs between streaming and batch"
            );
        }
    }

    #[test]
    fn gaps_are_skipped_but_timeline_stays_full_length() {
        let mut model = trained_model();
        let mut series = toy_series(32 * 4, 5);
        // Poison one window with an unfillable gap.
        for v in series.values[40..70].iter_mut() {
            *v = f32::NAN;
        }
        let hh = vec![HouseholdSeries { id: "gappy".into(), series }];
        let cfg = StreamConfig {
            window: 32,
            step_s: 60,
            max_ffill_s: 120, // 2 samples — the 30-sample gap stays
            batch: 8,
            appliance: None,
            avg_power_w: 2000.0,
        };
        let out = serve(&mut model, &hh, &cfg);
        assert_eq!(out[0].windows_total, 4);
        assert!(out[0].windows_scored < 4, "gap window must be skipped");
        assert_eq!(out[0].raw_status.len(), 32 * 4);
        // The gap region was never scored -> OFF.
        assert!(out[0].raw_status[40..64].iter().all(|&s| s == 0));
    }

    #[test]
    fn priors_merge_boundary_spanning_activations() {
        // Force a raw status pattern that crosses a window boundary by
        // post-processing a synthetic timeline directly: the stitched-level
        // prior keeps it, demonstrating why priors run after stitching.
        let mut status = vec![0u8; 96];
        for s in status[24..40].iter_mut() {
            *s = 1; // spans the 32-boundary: 8 samples left, 8 right
        }
        status[28] = 0; // micro-gap inside the run
        let mut stitched = status.clone();
        apply_duration_prior(&mut stitched, ApplianceKind::Dishwasher, 120);
        // Dishwasher @120 s: min ON 10 samples, gap 5 — the 16-sample run
        // survives as one merged activation.
        assert!(stitched[24..40].iter().all(|&s| s == 1));
        // Per-window application would have deleted both 8-sample halves.
        let mut left = status[..32].to_vec();
        let mut right = status[32..64].to_vec();
        apply_duration_prior(&mut left, ApplianceKind::Dishwasher, 120);
        apply_duration_prior(&mut right, ApplianceKind::Dishwasher, 120);
        assert!(left.iter().all(|&s| s == 0) && right.iter().all(|&s| s == 0));
    }

    #[test]
    #[should_panic(expected = "trained at window")]
    fn serve_rejects_mismatched_window() {
        let mut model = trained_model(); // trained at window 32
        let hh = vec![HouseholdSeries { id: "h".into(), series: toy_series(128, 1) }];
        let cfg = StreamConfig {
            window: 64, // wrong: silently degraded output without the guard
            step_s: 60,
            max_ffill_s: 180,
            batch: 8,
            appliance: None,
            avg_power_w: 2000.0,
        };
        let _ = serve(&mut model, &hh, &cfg);
    }

    #[test]
    fn timeline_summary_helpers() {
        let tl = HouseholdTimeline {
            id: "x".into(),
            step_s: 1800,
            raw_status: vec![0, 1, 1, 0, 1, 0],
            status: vec![0, 1, 1, 0, 1, 0],
            power_w: vec![0.0, 1000.0, 1000.0, 0.0, 1000.0, 0.0],
            detection_proba: vec![0.9],
            scored_starts: vec![0],
            windows_total: 1,
            windows_scored: 1,
            windows_detected: 1,
        };
        assert_eq!(tl.activations(), 2);
        assert!((tl.on_fraction() - 0.5).abs() < 1e-9);
        assert!((tl.energy_wh() - 1500.0).abs() < 1e-6);
    }
}
