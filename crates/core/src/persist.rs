//! Checkpointing: save a trained [`CamalModel`] to a single binary file and
//! reload it in a fresh process with bit-identical inference behaviour.
//!
//! A checkpoint is the full [`CamalConfig`] plus, per ensemble member, the
//! member metadata (architecture spec, validation loss) and the backbone's
//! tensor-state blob in the [`nilm_tensor::serialize`] format. Loading
//! rebuilds each backbone through [`build_from_spec`] (the same constructor
//! used by training) and then overwrites every parameter and batch-norm
//! buffer from the blob, so the reconstructed ensemble reproduces
//! `detect_proba` and `localize_batch` bit-for-bit.
//!
//! ```
//! use camal::ensemble::EnsembleMember;
//! use camal::{CamalConfig, CamalModel};
//! use nilm_models::{build_from_spec, BackboneSpec};
//!
//! // A tiny untrained model round-trips bit-for-bit through bytes.
//! let cfg = CamalConfig { n_ensemble: 1, kernels: vec![5], width_div: 16, ..Default::default() };
//! let mut rng = nilm_tensor::init::rng(3);
//! let spec = BackboneSpec::ResNet { kernel: 5, width_div: 16 };
//! let member = EnsembleMember { net: build_from_spec(&mut rng, spec), spec, val_loss: 0.2 };
//! let mut model = CamalModel::from_members(cfg, vec![member]);
//! model.set_window(64);
//! let bytes = model.to_bytes();
//! let mut back = CamalModel::from_bytes(&bytes).unwrap();
//! assert_eq!(back.window(), 64);
//! assert_eq!(back.to_bytes(), bytes);
//! ```
//!
//! Layout (little-endian throughout; format v3):
//!
//! ```text
//! magic    [8]  b"CAMALCKP"
//! version  u32  CHECKPOINT_VERSION
//! config       backbone:u8, width_div:u32, n_ensemble:u32, trials:u32,
//!              detection_threshold:f32, attention_margin:f32,
//!              use_attention:u8, balance:u8,
//!              kernels: count:u32 + u32 each,
//!              candidates: count:u32 + spec each          (v3+)
//!              train: epochs:u32, batch_size:u32, lr:f32, clip:f32, seed:u64,
//!              seed:u64
//! window   u32 training window length (0 = unknown)
//! members  u32 count, then per member:
//!              spec, val_loss:f32, blob: len:u64 + bytes
//! crc      u32 IEEE CRC-32 of every preceding byte (magic through members)
//! ```
//!
//! where a `spec` record is a tag byte (0 = ResNet, 1 = InceptionTime,
//! 2 = TransApp) followed by the variant's fields as u32s (`kernel,
//! width_div` for the conv families; `d_model, heads, d_ff, layers,
//! downsample` for TransApp).
//!
//! Version history: v2 appended the IEEE CRC-32 footer and stored a bare
//! per-member `kernel:u32`; v3 replaced it with the full per-member spec
//! (and added the config's extra-candidate grid), so heterogeneous
//! ensembles persist. [`from_bytes`] still accepts v2 files — the stored
//! kernel is widened into a spec through the config's `backbone`/`width_div`,
//! which is exactly how v2 loading reconstructed members.
//!
//! The CRC footer (new in v2) is verified by [`from_bytes`] before any
//! payload parsing, so a torn or bit-flipped file fails loudly as a checksum
//! mismatch instead of as a confusing parse error deep in a member blob.
//! [`save`] writes through a same-directory temp file with `sync_all` and an
//! atomic rename, so a crash mid-save can never leave a partial checkpoint
//! at the target path.

use crate::config::CamalConfig;
use crate::ensemble::EnsembleMember;
use crate::model::CamalModel;
use nilm_models::detector::{build_from_spec, BackboneSpec};
use nilm_models::{Backbone, TrainConfig};
use nilm_tensor::serialize::{ByteReader, ByteWriter, SerializeError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;

/// File magic of a CamAL checkpoint.
pub const MAGIC: [u8; 8] = *b"CAMALCKP";

/// Current checkpoint version; bumped on any layout change.
/// v2 appended the IEEE CRC-32 footer; v3 replaced the per-member kernel
/// with a full [`BackboneSpec`] record (still loadable: see
/// [`MIN_SUPPORTED_VERSION`]).
pub const CHECKPOINT_VERSION: u32 = 3;

/// Oldest checkpoint version [`from_bytes`] still loads (v2: CRC-gated,
/// kernel-only member records).
pub const MIN_SUPPORTED_VERSION: u32 = 2;

/// IEEE CRC-32 (the zlib/ethernet polynomial, reflected) of `bytes`.
///
/// Exposed so tooling can recompute or verify the checkpoint footer without
/// a full [`from_bytes`] parse.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

fn backbone_tag(b: Backbone) -> u8 {
    match b {
        Backbone::ResNet => 0,
        Backbone::InceptionTime => 1,
    }
}

fn backbone_from_tag(tag: u8) -> Result<Backbone, SerializeError> {
    match tag {
        0 => Ok(Backbone::ResNet),
        1 => Ok(Backbone::InceptionTime),
        other => Err(SerializeError::Format(format!("unknown backbone tag {other}"))),
    }
}

fn write_spec(w: &mut ByteWriter, spec: BackboneSpec) {
    match spec {
        BackboneSpec::ResNet { kernel, width_div } => {
            w.put_u8(0);
            w.put_u32(kernel as u32);
            w.put_u32(width_div as u32);
        }
        BackboneSpec::InceptionTime { kernel, width_div } => {
            w.put_u8(1);
            w.put_u32(kernel as u32);
            w.put_u32(width_div as u32);
        }
        BackboneSpec::TransApp { d_model, heads, d_ff, layers, downsample } => {
            w.put_u8(2);
            w.put_u32(d_model as u32);
            w.put_u32(heads as u32);
            w.put_u32(d_ff as u32);
            w.put_u32(layers as u32);
            w.put_u32(downsample as u32);
        }
    }
}

fn read_spec(r: &mut ByteReader) -> Result<BackboneSpec, SerializeError> {
    match r.get_u8("spec tag")? {
        0 => Ok(BackboneSpec::ResNet {
            kernel: r.get_u32("spec kernel")? as usize,
            width_div: r.get_u32("spec width_div")? as usize,
        }),
        1 => Ok(BackboneSpec::InceptionTime {
            kernel: r.get_u32("spec kernel")? as usize,
            width_div: r.get_u32("spec width_div")? as usize,
        }),
        2 => Ok(BackboneSpec::TransApp {
            d_model: r.get_u32("spec d_model")? as usize,
            heads: r.get_u32("spec heads")? as usize,
            d_ff: r.get_u32("spec d_ff")? as usize,
            layers: r.get_u32("spec layers")? as usize,
            downsample: r.get_u32("spec downsample")? as usize,
        }),
        other => Err(SerializeError::Format(format!("unknown backbone spec tag {other}"))),
    }
}

fn write_config(w: &mut ByteWriter, cfg: &CamalConfig) {
    w.put_u8(backbone_tag(cfg.backbone));
    w.put_u32(cfg.width_div as u32);
    w.put_u32(cfg.n_ensemble as u32);
    w.put_u32(cfg.trials as u32);
    w.put_f32(cfg.detection_threshold);
    w.put_f32(cfg.attention_margin);
    w.put_u8(cfg.use_attention as u8);
    w.put_u8(cfg.balance as u8);
    w.put_u32(cfg.kernels.len() as u32);
    for &k in &cfg.kernels {
        w.put_u32(k as u32);
    }
    w.put_u32(cfg.candidates.len() as u32);
    for &spec in &cfg.candidates {
        write_spec(w, spec);
    }
    w.put_u32(cfg.train.epochs as u32);
    w.put_u32(cfg.train.batch_size as u32);
    w.put_f32(cfg.train.lr);
    w.put_f32(cfg.train.clip);
    w.put_u64(cfg.train.seed);
    w.put_u64(cfg.seed);
}

fn read_config(r: &mut ByteReader, version: u32) -> Result<CamalConfig, SerializeError> {
    let backbone = backbone_from_tag(r.get_u8("backbone tag")?)?;
    let width_div = r.get_u32("width_div")? as usize;
    let n_ensemble = r.get_u32("n_ensemble")? as usize;
    let trials = r.get_u32("trials")? as usize;
    let detection_threshold = r.get_f32("detection_threshold")?;
    let attention_margin = r.get_f32("attention_margin")?;
    let use_attention = r.get_u8("use_attention")? != 0;
    let balance = r.get_u8("balance")? != 0;
    let n_kernels = r.get_u32("kernel count")? as usize;
    if n_kernels > r.remaining() / 4 {
        // Guard before allocating: a corrupted count must become an error,
        // not a huge `with_capacity` request that aborts the process.
        return Err(SerializeError::Format(format!(
            "kernel count {n_kernels} exceeds remaining payload"
        )));
    }
    let mut kernels = Vec::with_capacity(n_kernels);
    for _ in 0..n_kernels {
        kernels.push(r.get_u32("kernel")? as usize);
    }
    let candidates = if version >= 3 {
        let n_candidates = r.get_u32("candidate count")? as usize;
        // Smallest spec record is tag + two u32 fields (conv families).
        if n_candidates > r.remaining() / 9 {
            return Err(SerializeError::Format(format!(
                "candidate count {n_candidates} exceeds remaining payload"
            )));
        }
        let mut candidates = Vec::with_capacity(n_candidates);
        for _ in 0..n_candidates {
            candidates.push(read_spec(r)?);
        }
        candidates
    } else {
        // v2 predates the extra-candidate grid: the kernel sweep was the
        // whole candidate set.
        Vec::new()
    };
    let train = TrainConfig {
        epochs: r.get_u32("epochs")? as usize,
        batch_size: r.get_u32("batch_size")? as usize,
        lr: r.get_f32("lr")?,
        clip: r.get_f32("clip")?,
        seed: r.get_u64("train seed")?,
    };
    let seed = r.get_u64("seed")?;
    Ok(CamalConfig {
        n_ensemble,
        kernels,
        trials,
        detection_threshold,
        attention_margin,
        use_attention,
        width_div,
        backbone,
        candidates,
        train,
        balance,
        seed,
    })
}

/// Serializes a model into checkpoint bytes (see the module docs for the
/// layout). `&mut` because walking layer state requires mutable access.
pub fn to_bytes(model: &mut CamalModel) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_bytes(&MAGIC);
    w.put_u32(CHECKPOINT_VERSION);
    write_config(&mut w, model.config());
    w.put_u32(model.window() as u32);
    let members = model.members_mut();
    w.put_u32(members.len() as u32);
    for member in members {
        write_spec(&mut w, member.spec);
        w.put_f32(member.val_loss);
        let blob = member.net.save_state();
        w.put_u64(blob.len() as u64);
        w.put_bytes(&blob);
    }
    let mut bytes = w.finish();
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    bytes
}

/// Reconstructs a model from checkpoint bytes. Rejects bad magic, unknown
/// versions, truncated or trailing data, and any member blob whose tensor
/// shapes do not match the architecture implied by the stored config.
pub fn from_bytes(bytes: &[u8]) -> Result<CamalModel, SerializeError> {
    // Probe magic and version first for precise error messages, then verify
    // the CRC footer over everything before it, and only then parse the
    // payload — any torn or bit-flipped file is caught as a checksum
    // mismatch rather than a parse error deep in a member blob.
    let mut probe = ByteReader::new(bytes);
    let magic = probe.get_bytes(MAGIC.len(), "magic")?;
    if magic != MAGIC {
        return Err(SerializeError::Format(format!(
            "bad magic {magic:02x?}, expected {MAGIC:02x?} — not a CamAL checkpoint"
        )));
    }
    let version = probe.get_u32("version")?;
    if !(MIN_SUPPORTED_VERSION..=CHECKPOINT_VERSION).contains(&version) {
        return Err(SerializeError::Format(format!(
            "unsupported checkpoint version {version}, \
             expected {MIN_SUPPORTED_VERSION}..={CHECKPOINT_VERSION}"
        )));
    }
    if bytes.len() < MAGIC.len() + 4 + 4 {
        return Err(SerializeError::Format("checkpoint truncated before CRC footer".into()));
    }
    let (payload, footer) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(footer.try_into().expect("footer is 4 bytes"));
    let computed = crc32(payload);
    if stored != computed {
        return Err(SerializeError::Format(format!(
            "checkpoint CRC mismatch: stored {stored:08x}, computed {computed:08x} — \
             file is torn or corrupt"
        )));
    }
    let mut r = ByteReader::new(payload);
    r.get_bytes(MAGIC.len(), "magic")?;
    r.get_u32("version")?;
    let cfg = read_config(&mut r, version)?;
    let window = r.get_u32("window length")? as usize;
    let n_members = r.get_u32("member count")? as usize;
    if n_members == 0 {
        return Err(SerializeError::Format("checkpoint holds no ensemble members".into()));
    }
    // Each member record is at least spec (or v2 kernel) + val_loss + blob
    // length.
    if n_members > r.remaining() / 16 {
        return Err(SerializeError::Format(format!(
            "member count {n_members} exceeds remaining payload"
        )));
    }
    let mut members = Vec::with_capacity(n_members);
    for i in 0..n_members {
        let spec = if version >= 3 {
            read_spec(&mut r)?
        } else {
            // v2 stored a bare kernel; the member architecture was implied by
            // the config's backbone family and width divisor, so widening it
            // into a spec reconstructs exactly what v2 loading built.
            let kernel = r.get_u32("member kernel")? as usize;
            BackboneSpec::from_kernel(cfg.backbone, kernel, cfg.width_div)
        };
        let val_loss = r.get_f32("member val_loss")?;
        let blob_len = r.get_u64("member state length")? as usize;
        let blob = r.get_bytes(blob_len, "member state")?;
        // The RNG only seeds the soon-overwritten init, but keep it
        // deterministic anyway so partial failures are reproducible.
        let mut rng = StdRng::seed_from_u64(0x10AD ^ i as u64);
        let mut net = build_from_spec(&mut rng, spec);
        net.load_state(blob).map_err(|e| match e {
            SerializeError::Format(msg) => {
                SerializeError::Format(format!("member {i} ({}): {msg}", spec.describe()))
            }
            io => io,
        })?;
        members.push(EnsembleMember { net, spec, val_loss });
    }
    r.expect_end()?;
    let mut model = CamalModel::from_members(cfg, members);
    model.set_window(window);
    Ok(model)
}

/// Sibling path used for the write-then-rename dance: same directory (so
/// the rename cannot cross filesystems), file name suffixed with `.tmp`.
fn temp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| std::ffi::OsString::from("checkpoint"));
    name.push(".tmp");
    path.with_file_name(name)
}

/// Writes a checkpoint file at `path` crash-safely: the bytes go to a
/// same-directory temp file, are flushed with `sync_all`, and only then
/// atomically renamed over `path`. A crash (or the injected
/// `persist.save.torn` fault) at any point leaves the previous checkpoint at
/// `path` untouched — never a partial file.
///
/// ```no_run
/// # fn trained_model() -> camal::CamalModel { unimplemented!() }
/// let mut model = trained_model();
/// camal::persist::save(&mut model, "refit_kettle.ckpt").unwrap();
/// ```
pub fn save(model: &mut CamalModel, path: impl AsRef<Path>) -> Result<(), SerializeError> {
    let path = path.as_ref();
    let bytes = to_bytes(model);
    let tmp = temp_sibling(path);
    if nilm_fault::fires("persist.save.torn") {
        // Simulate a crash mid-write: a truncated temp file is left behind
        // (as a real crash would) but the target path is never touched.
        let _ = std::fs::write(&tmp, &bytes[..bytes.len() / 2]);
        return Err(SerializeError::Io(std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            "injected fault: persist.save.torn",
        )));
    }
    let result = (|| -> std::io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result.map_err(SerializeError::from)
}

/// Loads a checkpoint file written by [`save`], verifying the CRC footer.
///
/// ```no_run
/// let mut model = camal::persist::load("refit_kettle.ckpt").unwrap();
/// assert!(model.ensemble_size() > 0);
/// ```
pub fn load(path: impl AsRef<Path>) -> Result<CamalModel, SerializeError> {
    let bytes = std::fs::read(&path)?;
    if nilm_fault::fires("persist.load.corrupt") {
        return Err(SerializeError::Format(format!(
            "injected fault: persist.load.corrupt while reading {}",
            path.as_ref().display()
        )));
    }
    from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::toy_set;

    fn untrained_model(backbone: Backbone, kernels: &[usize]) -> CamalModel {
        let cfg = CamalConfig {
            n_ensemble: kernels.len(),
            kernels: kernels.to_vec(),
            trials: 1,
            width_div: 16,
            backbone,
            ..Default::default()
        };
        let members = kernels
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                let mut rng = StdRng::seed_from_u64(42 + i as u64);
                let spec = BackboneSpec::from_kernel(backbone, k, cfg.width_div);
                EnsembleMember {
                    net: build_from_spec(&mut rng, spec),
                    spec,
                    val_loss: 0.1 * (i + 1) as f32,
                }
            })
            .collect();
        CamalModel::from_members(cfg, members)
    }

    /// An untrained model over an arbitrary spec list — the heterogeneous
    /// sibling of [`untrained_model`].
    fn untrained_model_from_specs(specs: &[BackboneSpec]) -> CamalModel {
        let cfg = CamalConfig {
            n_ensemble: specs.len(),
            kernels: Vec::new(),
            candidates: specs.to_vec(),
            trials: 1,
            ..Default::default()
        };
        let members = specs
            .iter()
            .enumerate()
            .map(|(i, &spec)| {
                let mut rng = StdRng::seed_from_u64(42 + i as u64);
                EnsembleMember {
                    net: build_from_spec(&mut rng, spec),
                    spec,
                    val_loss: 0.1 * (i + 1) as f32,
                }
            })
            .collect();
        CamalModel::from_members(cfg, members)
    }

    #[test]
    fn roundtrip_preserves_config_and_members() {
        let mut model = untrained_model(Backbone::ResNet, &[5, 9]);
        model.set_window(96);
        let bytes = to_bytes(&mut model);
        let mut back = from_bytes(&bytes).expect("roundtrip");
        assert_eq!(back.ensemble_size(), 2);
        assert_eq!(
            back.member_specs(),
            vec![
                BackboneSpec::ResNet { kernel: 5, width_div: 16 },
                BackboneSpec::ResNet { kernel: 9, width_div: 16 },
            ]
        );
        assert_eq!(back.config().width_div, 16);
        assert_eq!(back.window(), 96, "training window length must survive the roundtrip");
        assert_eq!(to_bytes(&mut back), bytes, "re-serialization must be stable");
    }

    #[test]
    fn heterogeneous_roundtrip_preserves_specs_and_candidates() {
        let specs = [
            BackboneSpec::ResNet { kernel: 5, width_div: 16 },
            BackboneSpec::TransApp { d_model: 8, heads: 2, d_ff: 16, layers: 1, downsample: 4 },
            BackboneSpec::InceptionTime { kernel: 7, width_div: 16 },
        ];
        let mut model = untrained_model_from_specs(&specs);
        model.set_window(64);
        let bytes = to_bytes(&mut model);
        let mut back = from_bytes(&bytes).expect("heterogeneous roundtrip");
        assert_eq!(back.member_specs(), specs.to_vec());
        assert_eq!(back.config().candidates, specs.to_vec());
        assert_eq!(to_bytes(&mut back), bytes, "re-serialization must be stable");
    }

    #[test]
    fn roundtrip_localization_is_bit_identical() {
        let set = toy_set(6, 32, 21);
        let idx: Vec<usize> = (0..set.len()).collect();
        let x = set.batch_inputs(&idx);
        let mut model = untrained_model(Backbone::ResNet, &[5, 7]);
        let bytes = to_bytes(&mut model);
        let mut back = from_bytes(&bytes).unwrap();
        let a = model.localize_batch(&x);
        let b = back.localize_batch(&x);
        assert_eq!(a.status, b.status);
        let bits = |v: &[Vec<f32>]| -> Vec<Vec<u32>> {
            v.iter().map(|r| r.iter().map(|s| s.to_bits()).collect()).collect()
        };
        assert_eq!(bits(&a.scores), bits(&b.scores));
        assert_eq!(bits(&a.cam), bits(&b.cam));
        let pa: Vec<u32> = model.detect_proba(&x).iter().map(|p| p.to_bits()).collect();
        let pb: Vec<u32> = back.detect_proba(&x).iter().map(|p| p.to_bits()).collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn wrong_magic_version_and_truncation_are_rejected() {
        let mut model = untrained_model(Backbone::ResNet, &[5]);
        let bytes = to_bytes(&mut model);
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0x55;
        assert!(from_bytes(&bad_magic).is_err());
        let mut bad_version = bytes.clone();
        bad_version[8..12].copy_from_slice(&7u32.to_le_bytes());
        assert!(from_bytes(&bad_version).is_err());
        assert!(from_bytes(&bytes[..bytes.len() / 2]).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(from_bytes(&trailing).is_err());
    }

    /// Recomputes the CRC footer after a test deliberately edits the payload,
    /// so the edit reaches the parser instead of tripping the checksum.
    fn refresh_crc(bytes: &mut [u8]) {
        let n = bytes.len() - 4;
        let crc = crc32(&bytes[..n]);
        bytes[n..].copy_from_slice(&crc.to_le_bytes());
    }

    #[test]
    fn member_architecture_mismatch_is_rejected() {
        // Corrupt the stored kernel of member 0's spec record: the rebuilt
        // backbone then has different conv shapes than the blob and the load
        // must fail instead of silently mis-assigning weights.
        let mut model = untrained_model(Backbone::ResNet, &[5]);
        let mut bytes = to_bytes(&mut model);
        let kernel_pos = bytes.len()
            - 4  // CRC footer
            - model.members_mut()[0].net.save_state().len()
            - 8  // blob length
            - 4  // val_loss
            - 4  // spec width_div
            - 4; // spec kernel
        bytes[kernel_pos..kernel_pos + 4].copy_from_slice(&25u32.to_le_bytes());
        refresh_crc(&mut bytes);
        let err = match from_bytes(&bytes) {
            Err(e) => e,
            Ok(_) => panic!("mismatched member architecture was accepted"),
        };
        assert!(format!("{err}").contains("member 0"), "{err}");
    }

    #[test]
    fn unknown_spec_tag_is_rejected() {
        let mut model = untrained_model(Backbone::ResNet, &[5]);
        let mut bytes = to_bytes(&mut model);
        let tag_pos = bytes.len()
            - 4  // CRC footer
            - model.members_mut()[0].net.save_state().len()
            - 8  // blob length
            - 4  // val_loss
            - 8  // spec kernel + width_div
            - 1; // spec tag
        bytes[tag_pos] = 9;
        refresh_crc(&mut bytes);
        let err = match from_bytes(&bytes) {
            Err(e) => e,
            Ok(_) => panic!("unknown spec tag was accepted"),
        };
        assert!(format!("{err}").contains("spec tag"), "{err}");
    }

    #[test]
    fn pre_crc_versions_are_rejected() {
        // v1 files carried no CRC footer; loading one must fail on the
        // version gate, never by misreading payload bytes as a checksum.
        let mut model = untrained_model(Backbone::ResNet, &[5]);
        let mut bytes = to_bytes(&mut model);
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        let err = match from_bytes(&bytes) {
            Err(e) => e,
            Ok(_) => panic!("version 1 was accepted"),
        };
        assert!(format!("{err}").contains("unsupported checkpoint version"), "{err}");
    }

    #[test]
    fn crc_footer_detects_any_bit_flip() {
        let mut model = untrained_model(Backbone::ResNet, &[5]);
        let bytes = to_bytes(&mut model);
        // Flip one bit at a sampling of payload offsets past the version
        // field; every flip must be rejected as a CRC mismatch, not survive
        // as a silently different model.
        for pos in (13..bytes.len() - 4).step_by(101) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x01;
            let err = match from_bytes(&bad) {
                Err(e) => e,
                Ok(_) => panic!("bit flip at {pos} was accepted"),
            };
            assert!(format!("{err}").contains("CRC"), "offset {pos}: {err}");
        }
    }

    #[test]
    fn save_renames_atomically_and_cleans_temp() {
        let dir = std::env::temp_dir().join(format!("camal_persist_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        let mut model = untrained_model(Backbone::ResNet, &[5]);
        save(&mut model, &path).unwrap();
        let mut back = load(&path).unwrap();
        assert_eq!(to_bytes(&mut back), to_bytes(&mut model));
        // No temp debris after a clean save.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp file left behind: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
