//! The CamAL model: the full pipeline of Fig. 3 — ensemble detection, CAM
//! extraction/averaging, attention-sigmoid localization, and binary→power
//! post-processing — over preprocessed windows.

use crate::config::CamalConfig;
use crate::ensemble::{train_ensemble, EnsembleMember, EnsembleStats};
use crate::localize::{attention_status, average_cams, normalize_cam, raw_cam_status};
use crate::power::estimate_power;
use nilm_data::windows::WindowSet;
use nilm_metrics::{ClassificationReport, Confusion, EnergyReport};

use nilm_tensor::layer::Mode;
use nilm_tensor::tensor::Tensor;
use std::time::Instant;

/// Localization output for a batch of windows.
#[derive(Clone, Debug, Default)]
pub struct Localization {
    /// Ensemble detection probability per window.
    pub detection_proba: Vec<f32>,
    /// Detection decision per window (`proba > threshold`).
    pub detected: Vec<bool>,
    /// Predicted per-timestep status ŝ(t) per window (all-zero when the
    /// appliance is not detected — paper step 2).
    pub status: Vec<Vec<u8>>,
    /// Post-sigmoid localization scores in `[0, 1]` per window — the soft
    /// labels of the RQ5 augmentation (`status` is `scores > 0.5`).
    /// All-zero for undetected windows.
    pub scores: Vec<Vec<f32>>,
    /// The averaged, normalized ensemble CAM per window.
    pub cam: Vec<Vec<f32>>,
}

/// Evaluation bundle: the metrics reported in Table III plus detection
/// balanced accuracy (Fig. 6(b)).
#[derive(Clone, Copy, Debug, Default)]
pub struct CaseReport {
    /// Localization metrics (per-timestep status vs ground truth).
    pub localization: ClassificationReport,
    /// Energy metrics (estimated power vs submeter).
    pub energy: EnergyReport,
    /// Window-level detection metrics.
    pub detection: ClassificationReport,
}

/// A trained CamAL instance for one appliance.
pub struct CamalModel {
    cfg: CamalConfig,
    members: Vec<EnsembleMember>,
    /// Window length the ensemble was trained at (0 = unknown, e.g. models
    /// assembled via [`CamalModel::from_members`]). Persisted in
    /// checkpoints so a serving process can slice inputs correctly.
    window: usize,
    /// Statistics of the Algorithm 1 run that produced this model.
    pub train_stats: EnsembleStats,
}

impl CamalModel {
    /// Trains CamAL with Algorithm 1. `threads` bounds candidate-training
    /// parallelism.
    pub fn train(cfg: &CamalConfig, train: &WindowSet, val: &WindowSet, threads: usize) -> Self {
        let (members, stats) = train_ensemble(cfg, train, val, threads);
        assert!(!members.is_empty(), "ensemble training produced no members");
        CamalModel { cfg: cfg.clone(), members, window: train.window_len(), train_stats: stats }
    }

    /// Builds a model from pre-trained members (used by ablation studies).
    pub fn from_members(cfg: CamalConfig, members: Vec<EnsembleMember>) -> Self {
        assert!(!members.is_empty());
        CamalModel { cfg, members, window: 0, train_stats: EnsembleStats::default() }
    }

    /// Configuration the model was trained with.
    pub fn config(&self) -> &CamalConfig {
        &self.cfg
    }

    /// Window length the model was trained at (0 when unknown).
    pub fn window(&self) -> usize {
        self.window
    }

    /// Records the training window length (used by checkpoint loading and
    /// by callers assembling models from pre-trained members).
    pub fn set_window(&mut self, window: usize) {
        self.window = window;
    }

    /// Number of ensemble members.
    pub fn ensemble_size(&self) -> usize {
        self.members.len()
    }

    /// Architecture specs of the selected members (ascending val loss).
    pub fn member_specs(&self) -> Vec<nilm_models::BackboneSpec> {
        self.members.iter().map(|m| m.spec).collect()
    }

    /// Compact human-readable descriptions of the selected members, e.g.
    /// `["resnet(k5/div8)", "transapp(d16xh2,ff32,l1,ds4)"]` — what demos,
    /// manifests and `/v1/models` print.
    pub fn describe_members(&self) -> Vec<String> {
        self.members.iter().map(|m| m.spec.describe()).collect()
    }

    /// Consumes the model and returns its members (ascending validation
    /// loss) — used by the ensemble-size ablation to share one candidate
    /// pool across sizes.
    pub fn into_members(self) -> Vec<EnsembleMember> {
        self.members
    }

    /// Mutable access to the members — used by checkpointing, which needs
    /// to walk each backbone's layer state.
    pub(crate) fn members_mut(&mut self) -> &mut [EnsembleMember] {
        &mut self.members
    }

    /// Serializes the model into checkpoint bytes (see [`crate::persist`]).
    pub fn to_bytes(&mut self) -> Vec<u8> {
        crate::persist::to_bytes(self)
    }

    /// Reconstructs a model from checkpoint bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, nilm_tensor::serialize::SerializeError> {
        crate::persist::from_bytes(bytes)
    }

    /// Writes a checkpoint file; reload it with [`CamalModel::load`] to get
    /// bit-identical `detect_proba` / `localize_batch` behaviour in a fresh
    /// process.
    pub fn save(
        &mut self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), nilm_tensor::serialize::SerializeError> {
        crate::persist::save(self, path)
    }

    /// Loads a checkpoint file written by [`CamalModel::save`].
    pub fn load(
        path: impl AsRef<std::path::Path>,
    ) -> Result<Self, nilm_tensor::serialize::SerializeError> {
        crate::persist::load(path)
    }

    /// Total trainable parameters across the ensemble (Table II row CamAL).
    pub fn num_params(&mut self) -> usize {
        self.members.iter_mut().map(|m| m.net.num_params()).sum()
    }

    /// Trainable parameters of each member (ascending val loss) — paired
    /// with [`CamalModel::describe_members`] in manifests and `/v1/models`.
    pub fn member_param_counts(&mut self) -> Vec<usize> {
        self.members.iter_mut().map(|m| m.net.num_params()).collect()
    }

    /// Ensemble detection probability (mean of member class-1 softmax) for a
    /// `[b, 1, t]` input batch (paper step 1).
    pub fn detect_proba(&mut self, x: &Tensor) -> Vec<f32> {
        let b = x.dims3().0;
        let mut probs = vec![0.0f32; b];
        for member in &mut self.members {
            let p = member.net.predict_proba(x);
            for (bi, pr) in probs.iter_mut().enumerate() {
                *pr += p.at2(bi, 1);
            }
        }
        let inv = 1.0 / self.members.len() as f32;
        probs.iter_mut().for_each(|p| *p *= inv);
        probs
    }

    /// Runs the full CamAL pipeline (Fig. 3) on a `[b, 1, t]` batch whose
    /// rows are the scaled inputs of `windows` (needed for the attention
    /// mask). Returns per-window detection and localization.
    pub fn localize_batch(&mut self, x: &Tensor) -> Localization {
        let (b, _, t) = x.dims3();
        // Step 1–2: ensemble probability and detection gate. The member
        // forward passes also cache the feature maps for CAM extraction.
        // `Mode::Infer` is bit-identical to eval but skips every
        // backward-only cache — the serving path never differentiates.
        let mut probs = vec![0.0f32; b];
        let mut member_cams: Vec<Tensor> = Vec::with_capacity(self.members.len());
        for member in &mut self.members {
            let (_, logits) = member.net.forward_features(x, Mode::Infer);
            let p = nilm_tensor::activation::softmax_rows(&logits);
            for (bi, pr) in probs.iter_mut().enumerate() {
                *pr += p.at2(bi, 1);
            }
            // Step 3–4: per-member CAM for class 1, normalized per window.
            let mut cam = member.net.cam(1);
            for bi in 0..b {
                normalize_cam(&mut cam.data_mut()[bi * t..(bi + 1) * t]);
            }
            member_cams.push(cam);
        }
        let inv = 1.0 / self.members.len() as f32;
        probs.iter_mut().for_each(|p| *p *= inv);
        let cam_ens = average_cams(&member_cams);

        let mut out = Localization::default();
        for bi in 0..b {
            let detected = probs[bi] > self.cfg.detection_threshold;
            let cam_row = &cam_ens.data()[bi * t..(bi + 1) * t];
            let input_row = x.row(bi, 0);
            let (status, scores) = if !detected {
                (vec![0u8; t], vec![0.0f32; t])
            } else if self.cfg.use_attention {
                // Step 5–6: attention-sigmoid module.
                attention_status(cam_row, input_row, self.cfg.attention_margin)
            } else {
                raw_cam_status(cam_row)
            };
            out.detection_proba.push(probs[bi]);
            out.detected.push(detected);
            out.status.push(status);
            out.scores.push(scores);
            out.cam.push(cam_row.to_vec());
        }
        out
    }

    /// Localizes every window of a set (batched).
    pub fn localize_set(&mut self, set: &WindowSet, batch: usize) -> Localization {
        let mut all = Localization::default();
        let indices: Vec<usize> = (0..set.len()).collect();
        let mut x = Tensor::zeros(&[0]);
        for chunk in indices.chunks(batch.max(1)) {
            set.batch_inputs_into(chunk, &mut x);
            let part = self.localize_batch(&x);
            all.detection_proba.extend(part.detection_proba);
            all.detected.extend(part.detected);
            all.status.extend(part.status);
            all.scores.extend(part.scores);
            all.cam.extend(part.cam);
        }
        all
    }

    /// Generates per-timestep soft labels (post-sigmoid localization scores
    /// in `[0, 1]`) for a window set — the RQ5 data-augmentation output.
    /// Undetected windows yield all-zero labels; detected windows carry the
    /// graded attention-sigmoid scores (a historical bug returned the
    /// binarized status cast to `f32`, collapsing the augmentation into
    /// hard labels).
    pub fn soft_labels(&mut self, set: &WindowSet, batch: usize) -> Vec<Vec<f32>> {
        self.localize_set(set, batch).scores
    }

    /// Evaluates localization + energy + detection on a ground-truth window
    /// set, applying the §IV-C power post-processing with `avg_power_w`.
    pub fn evaluate(&mut self, set: &WindowSet, avg_power_w: f32, batch: usize) -> CaseReport {
        let loc = self.localize_set(set, batch);
        report_from_status(set, &loc.status, &loc.detected, avg_power_w)
    }

    /// Single-threaded inference throughput in windows/second (Fig. 7(c)).
    pub fn throughput(&mut self, set: &WindowSet, batch: usize) -> f64 {
        let start = Instant::now();
        let _ = self.localize_set(set, batch);
        set.len() as f64 / start.elapsed().as_secs_f64().max(1e-9)
    }
}

/// Builds a [`CaseReport`] from predicted statuses (shared by CamAL and the
/// baseline evaluations so every method is scored identically).
pub fn report_from_status(
    set: &WindowSet,
    status: &[Vec<u8>],
    detected: &[bool],
    avg_power_w: f32,
) -> CaseReport {
    assert_eq!(status.len(), set.len(), "one status sequence per window");
    let mut loc_conf = Confusion::default();
    let mut det_conf = Confusion::default();
    let mut pred_power = Vec::new();
    let mut true_power = Vec::new();
    for (i, window) in set.windows.iter().enumerate() {
        assert!(!window.status.is_empty(), "evaluation requires ground-truth status");
        for (&p, &t) in status[i].iter().zip(&window.status) {
            loc_conf.push(p != 0, t != 0);
        }
        det_conf.push(detected.get(i).copied().unwrap_or(false), window.weak_label == 1);
        pred_power.extend(estimate_power(&status[i], avg_power_w, &window.aggregate_w));
        true_power.extend_from_slice(&window.appliance_w);
    }
    CaseReport {
        localization: ClassificationReport::from_confusion(&loc_conf),
        energy: EnergyReport::compute(&pred_power, &true_power),
        detection: ClassificationReport::from_confusion(&det_conf),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::toy_set;
    use nilm_models::TrainConfig;

    fn fast_cfg() -> CamalConfig {
        CamalConfig {
            n_ensemble: 2,
            kernels: vec![5, 9],
            trials: 1,
            width_div: 16,
            train: TrainConfig { epochs: 8, batch_size: 8, lr: 2e-3, clip: 0.0, seed: 3 },
            ..Default::default()
        }
    }

    #[test]
    fn end_to_end_localization_beats_trivial_baselines() {
        let train = toy_set(32, 32, 1);
        let val = toy_set(8, 32, 2);
        let test = toy_set(16, 32, 9);
        let mut model = CamalModel::train(&fast_cfg(), &train, &val, 2);
        let report = model.evaluate(&test, 2000.0, 8);
        // The toy signal is trivially separable; CamAL must do clearly
        // better than random (F1 of all-ones predictor ~ 0.5 here).
        assert!(report.detection.balanced_accuracy > 0.8, "{:?}", report.detection);
        assert!(report.localization.f1 > 0.5, "{:?}", report.localization);
    }

    #[test]
    fn undetected_windows_have_all_zero_status() {
        let train = toy_set(32, 32, 3);
        let val = toy_set(8, 32, 4);
        let mut model = CamalModel::train(&fast_cfg(), &train, &val, 2);
        let test = toy_set(12, 32, 5);
        let loc = model.localize_set(&test, 4);
        for (i, det) in loc.detected.iter().enumerate() {
            if !det {
                assert!(loc.status[i].iter().all(|&s| s == 0));
            }
        }
    }

    #[test]
    fn cams_are_normalized() {
        let train = toy_set(16, 32, 6);
        let mut model = CamalModel::train(&fast_cfg(), &train, &train, 2);
        let loc = model.localize_set(&train, 4);
        for cam in &loc.cam {
            assert!(cam.iter().all(|&v| (0.0..=1.0).contains(&v)), "CAM out of [0,1]");
        }
    }

    #[test]
    fn soft_labels_are_scores_consistent_with_status() {
        let train = toy_set(16, 32, 7);
        let mut model = CamalModel::train(&fast_cfg(), &train, &train, 2);
        let soft = model.soft_labels(&train, 4);
        let loc = model.localize_set(&train, 4);
        assert_eq!(soft.len(), loc.status.len());
        for ((s, st), det) in soft.iter().zip(&loc.status).zip(&loc.detected) {
            for (&sv, &bv) in s.iter().zip(st) {
                assert!((0.0..=1.0).contains(&sv), "score {sv} out of [0,1]");
                // Status is the 0.5-thresholded score; undetected windows
                // are all-zero in both.
                assert_eq!(sv > 0.5, bv == 1);
                if !det {
                    assert_eq!(sv, 0.0);
                }
            }
        }
    }

    #[test]
    fn soft_labels_are_not_binary_on_detected_windows() {
        // Regression for the RQ5 bug: `soft_labels` used to return
        // `status as f32`, so every value was exactly 0.0 or 1.0. Real
        // post-sigmoid scores must be graded.
        let train = toy_set(32, 32, 7);
        let mut model = CamalModel::train(&fast_cfg(), &train, &train, 2);
        let soft = model.soft_labels(&train, 8);
        let loc = model.localize_set(&train, 8);
        let detected: Vec<usize> = (0..train.len()).filter(|&i| loc.detected[i]).collect();
        assert!(!detected.is_empty(), "toy model detected nothing");
        let graded = detected.iter().any(|&i| soft[i].iter().any(|&s| s > 0.0 && s < 1.0));
        assert!(graded, "detected windows carry only hard 0/1 soft labels");
    }

    #[test]
    fn detection_probability_is_mean_of_members() {
        let train = toy_set(16, 32, 8);
        let mut model = CamalModel::train(&fast_cfg(), &train, &train, 2);
        let idx: Vec<usize> = (0..4).collect();
        let x = train.batch_inputs(&idx);
        let probs = model.detect_proba(&x);
        assert_eq!(probs.len(), 4);
        assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }
}
