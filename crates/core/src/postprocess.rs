//! Status post-processing: duration filters that remove physically
//! implausible predictions (an extension the paper's conclusion calls for —
//! "more advanced post-processing methods are needed").
//!
//! Two morphological filters on the binary status sequence:
//! - [`drop_short_on_runs`]: an appliance cannot run for less than its
//!   minimal program duration (e.g. a dishwasher never runs 1 minute).
//! - [`fill_short_off_gaps`]: micro-gaps inside one activation (duty
//!   cycling, sensor jitter) are merged.

use nilm_data::appliance::ApplianceKind;

/// Removes ON-runs shorter than `min_len` samples.
pub fn drop_short_on_runs(status: &mut [u8], min_len: usize) {
    if min_len <= 1 {
        return;
    }
    let n = status.len();
    let mut i = 0;
    while i < n {
        if status[i] == 1 {
            let start = i;
            while i < n && status[i] == 1 {
                i += 1;
            }
            if i - start < min_len {
                status[start..i].iter_mut().for_each(|s| *s = 0);
            }
        } else {
            i += 1;
        }
    }
}

/// Fills OFF-gaps shorter than `max_gap` samples that are surrounded by ON.
pub fn fill_short_off_gaps(status: &mut [u8], max_gap: usize) {
    if max_gap == 0 {
        return;
    }
    let n = status.len();
    let mut i = 0;
    while i < n {
        if status[i] == 0 {
            let start = i;
            while i < n && status[i] == 0 {
                i += 1;
            }
            let bounded_left = start > 0 && status[start - 1] == 1;
            let bounded_right = i < n && status[i] == 1;
            if bounded_left && bounded_right && i - start <= max_gap {
                status[start..i].iter_mut().for_each(|s| *s = 1);
            }
        } else {
            i += 1;
        }
    }
}

/// Appliance-specific duration priors in seconds: (min ON duration,
/// mergeable OFF gap). Derived from the signature models in `nilm-data`.
pub fn duration_prior_s(kind: ApplianceKind) -> (u32, u32) {
    match kind {
        ApplianceKind::Kettle => (60, 60),
        ApplianceKind::Microwave => (60, 120),
        ApplianceKind::Dishwasher => (20 * 60, 10 * 60),
        ApplianceKind::WashingMachine => (15 * 60, 10 * 60),
        ApplianceKind::Shower => (2 * 60, 60),
        ApplianceKind::ElectricVehicle => (30 * 60, 30 * 60),
        ApplianceKind::Fridge => (5 * 60, 5 * 60),
    }
}

/// Applies both filters using the appliance's duration prior at the given
/// sampling interval.
pub fn apply_duration_prior(status: &mut [u8], kind: ApplianceKind, step_s: u32) {
    let (min_on_s, max_gap_s) = duration_prior_s(kind);
    let min_on = (min_on_s / step_s.max(1)).max(1) as usize;
    let max_gap = (max_gap_s / step_s.max(1)) as usize;
    fill_short_off_gaps(status, max_gap);
    drop_short_on_runs(status, min_on);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drops_isolated_blips() {
        let mut s = vec![0, 1, 0, 1, 1, 1, 0, 1, 0];
        drop_short_on_runs(&mut s, 2);
        assert_eq!(s, vec![0, 0, 0, 1, 1, 1, 0, 0, 0]);
    }

    #[test]
    fn keeps_runs_at_exact_threshold() {
        let mut s = vec![1, 1, 0, 1];
        drop_short_on_runs(&mut s, 2);
        assert_eq!(s, vec![1, 1, 0, 0]);
    }

    #[test]
    fn min_len_one_is_identity() {
        let mut s = vec![0, 1, 0];
        drop_short_on_runs(&mut s, 1);
        assert_eq!(s, vec![0, 1, 0]);
    }

    #[test]
    fn fills_interior_gaps_only() {
        let mut s = vec![0, 1, 0, 1, 0, 0];
        fill_short_off_gaps(&mut s, 1);
        // Gap at index 2 is bounded by ON on both sides -> filled.
        // Leading zeros and trailing zeros stay.
        assert_eq!(s, vec![0, 1, 1, 1, 0, 0]);
    }

    #[test]
    fn respects_gap_limit() {
        let mut s = vec![1, 0, 0, 0, 1];
        fill_short_off_gaps(&mut s, 2);
        assert_eq!(s, vec![1, 0, 0, 0, 1]);
        fill_short_off_gaps(&mut s, 3);
        assert_eq!(s, vec![1, 1, 1, 1, 1]);
    }

    #[test]
    fn duration_prior_end_to_end() {
        // Dishwasher at 60 s sampling: min ON = 20 samples, gap = 10.
        let mut s = vec![0u8; 64];
        // Plausible 25-sample run with a 3-sample dropout inside.
        for v in s[10..35].iter_mut() {
            *v = 1;
        }
        for v in s[20..23].iter_mut() {
            *v = 0;
        }
        // Implausible 2-sample blip.
        s[50] = 1;
        s[51] = 1;
        apply_duration_prior(&mut s, ApplianceKind::Dishwasher, 60);
        assert!(s[10..35].iter().all(|&v| v == 1), "dropout not merged");
        assert!(s[50] == 0 && s[51] == 0, "blip not removed");
    }

    #[test]
    fn all_kinds_have_positive_priors() {
        for &k in ApplianceKind::targets() {
            let (on, gap) = duration_prior_s(k);
            assert!(on > 0);
            assert!(gap > 0);
        }
    }

    #[test]
    fn empty_status_is_fine() {
        let mut s: Vec<u8> = vec![];
        apply_duration_prior(&mut s, ApplianceKind::Kettle, 60);
        assert!(s.is_empty());
    }
}
