//! Shared test fixtures for the camal crate.

use nilm_data::preprocess::Window;
use nilm_data::windows::WindowSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Separable toy data: ON windows contain a strong plateau.
pub(crate) fn toy_set(n: usize, w: usize, seed: u64) -> WindowSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut windows = Vec::new();
    for i in 0..n {
        let on = i % 2 == 0;
        let mut input = vec![0.15f32; w];
        let mut status = vec![0u8; w];
        for v in input.iter_mut() {
            *v += nilm_tensor::init::randn(&mut rng).abs() * 0.02;
        }
        if on {
            let start = (i * 3) % (w / 2);
            for t in start..(start + w / 3).min(w) {
                input[t] += 2.0;
                status[t] = 1;
            }
        }
        windows.push(Window {
            aggregate_w: input.iter().map(|v| v * 1000.0).collect(),
            appliance_w: status.iter().map(|&s| s as f32 * 2000.0).collect(),
            input,
            status,
            weak_label: on as u8,
            house_id: i % 4,
        });
    }
    WindowSet::new(windows)
}
