//! Algorithm 1: training and selection of the CamAL ensemble.
//!
//! For each candidate architecture spec (the kernel grid expanded through
//! the configured backbone family, plus any explicit extra candidates —
//! e.g. a TransApp attention detector) and each trial, a detector is
//! trained on an 80% sub-split of the training windows (cross-entropy on
//! the weak labels); candidates are ranked by loss on the validation set
//! and the best `n` are kept, regardless of family. Candidate training runs
//! on parallel threads.

use crate::config::CamalConfig;
use nilm_data::windows::WindowSet;
use nilm_models::detector::{build_from_spec, BackboneSpec, Detector};
use nilm_tensor::layer::Mode;
use nilm_tensor::loss::cross_entropy;
use nilm_tensor::optim::{clip_grad_norm, Adam};
use nilm_tensor::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One trained candidate/member of the ensemble.
pub struct EnsembleMember {
    /// The trained detector.
    pub net: Box<dyn Detector>,
    /// The full architecture spec this member was built from.
    pub spec: BackboneSpec,
    /// Cross-entropy loss on the validation windows (selection criterion).
    pub val_loss: f32,
}

/// Statistics of one ensemble training run.
#[derive(Clone, Debug, Default)]
pub struct EnsembleStats {
    /// Candidates trained ( |candidate specs| × trials ).
    pub candidates: usize,
    /// Members selected.
    pub selected: usize,
    /// Validation losses of the selected members (ascending).
    pub selected_losses: Vec<f32>,
    /// Wall-clock seconds for the whole Algorithm 1 run.
    pub total_secs: f64,
    /// Sum over candidates of per-candidate training seconds (CPU work).
    pub candidate_secs_total: f64,
}

/// Trains one candidate of architecture `spec` on `train` and scores it on
/// `val`.
fn train_candidate(
    spec: BackboneSpec,
    cfg: &CamalConfig,
    train: &WindowSet,
    val: &WindowSet,
    seed: u64,
) -> (Box<dyn Detector>, f32, f64) {
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = build_from_spec(&mut rng, spec);
    let mut opt = Adam::new(cfg.train.lr);
    let mut order_rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    // Scratch buffers hoisted out of the epoch × batch loop: every chunk
    // refills the same tensor instead of allocating a fresh one.
    let mut x = Tensor::zeros(&[0]);
    let mut labels = Vec::new();
    for _ in 0..cfg.train.epochs {
        let order = train.shuffled_indices(&mut order_rng);
        for chunk in order.chunks(cfg.train.batch_size.max(1)) {
            train.batch_inputs_into(chunk, &mut x);
            train.batch_weak_labels_into(chunk, &mut labels);
            net.zero_grad();
            let logits = net.forward(&x, Mode::Train);
            let (_, grad) = cross_entropy(&logits, &labels);
            net.backward(&grad);
            if cfg.train.clip > 0.0 {
                clip_grad_norm(net.as_mut(), cfg.train.clip);
            }
            opt.step(net.as_mut());
        }
    }
    let val_loss = eval_loss(net.as_mut(), val, cfg.train.batch_size);
    (net, val_loss, start.elapsed().as_secs_f64())
}

/// Mean cross-entropy of `net` on `data` (weak labels), eval mode.
pub fn eval_loss(net: &mut dyn Detector, data: &WindowSet, batch: usize) -> f32 {
    if data.is_empty() {
        return f32::INFINITY;
    }
    let indices: Vec<usize> = (0..data.len()).collect();
    let mut total = 0.0f64;
    let mut n = 0usize;
    let mut x = Tensor::zeros(&[0]);
    let mut labels = Vec::new();
    for chunk in indices.chunks(batch.max(1)) {
        data.batch_inputs_into(chunk, &mut x);
        data.batch_weak_labels_into(chunk, &mut labels);
        let logits = net.forward(&x, Mode::Eval);
        let (loss, _) = cross_entropy(&logits, &labels);
        total += loss as f64 * chunk.len() as f64;
        n += chunk.len();
    }
    (total / n as f64) as f32
}

/// Runs Algorithm 1 and returns the selected members (ascending val loss)
/// plus run statistics.
///
/// `threads` caps the number of concurrently training candidates
/// (1 = sequential, useful for timing experiments).
pub fn train_ensemble(
    cfg: &CamalConfig,
    train_set: &WindowSet,
    val_set: &WindowSet,
    threads: usize,
) -> (Vec<EnsembleMember>, EnsembleStats) {
    assert!(!train_set.is_empty(), "cannot train the ensemble on an empty training set");
    let start = Instant::now();
    // Algorithm 1 line 1: split D_train into 80% train-sub / 20% val-sub to
    // monitor training; selection uses the separate validation dataset.
    let mut split_rng = StdRng::seed_from_u64(cfg.seed ^ 0x80);
    let balanced;
    let train_for_members = if cfg.balance {
        balanced = train_set.balance_undersample(&mut split_rng);
        &balanced
    } else {
        train_set
    };
    let (train_sub, _val_sub) = train_for_members.split_train_val(0.2, &mut split_rng);

    // Candidate grid: every spec × every trial. Salts are a pure function
    // of the grid definition, never of scheduling: kernel-grid candidates
    // keep the historical `(kernel << 32) | trial` salt (so pure-ResNet
    // configs reproduce pre-spec checkpoints exactly), while extra spec
    // candidates salt by their position in `cfg.candidates` under a
    // distinct high tag that cannot collide with any 32-bit kernel.
    let kernel_specs = cfg.kernels.len();
    let salted: Vec<(BackboneSpec, u64)> = cfg
        .candidate_specs()
        .into_iter()
        .enumerate()
        .map(|(i, spec)| {
            let base = match spec.kernel() {
                Some(k) if i < kernel_specs => (k as u64) << 32,
                _ => 0xB5ACu64 << 48 | ((i - kernel_specs) as u64) << 32,
            };
            (spec, base)
        })
        .collect();
    let jobs: Vec<(BackboneSpec, u64)> = salted
        .iter()
        .flat_map(|&(spec, base)| (0..cfg.trials.max(1)).map(move |t| (spec, base | t as u64)))
        .collect();

    // Shared work queue over one thread scope: each worker pops the next
    // job index as soon as it finishes its previous candidate, so a slow
    // candidate never idles the remaining cores (the old implementation
    // barriered on `chunks(threads)`). Each job's RNG seed depends only on
    // its (kernel, trial) salt and results land in per-job slots, so the
    // outcome is identical for any thread count.
    let threads = threads.max(1).min(jobs.len().max(1));
    let slots: Mutex<Vec<Option<(BackboneSpec, Box<dyn Detector>, f32, f64)>>> =
        Mutex::new((0..jobs.len()).map(|_| None).collect());
    let next_job = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let cfg_ref = &*cfg;
            let train_ref = &train_sub;
            let val_ref = val_set;
            let jobs_ref = &jobs;
            let slots_ref = &slots;
            let next_ref = &next_job;
            scope.spawn(move || loop {
                let i = next_ref.fetch_add(1, Ordering::Relaxed);
                let Some(&(spec, salt)) = jobs_ref.get(i) else {
                    break;
                };
                let (net, loss, secs) =
                    train_candidate(spec, cfg_ref, train_ref, val_ref, cfg_ref.seed ^ salt);
                slots_ref.lock().expect("result slots poisoned")[i] = Some((spec, net, loss, secs));
            });
        }
    });
    let mut results: Vec<(BackboneSpec, Box<dyn Detector>, f32, f64)> = slots
        .into_inner()
        .expect("result slots poisoned")
        .into_iter()
        .map(|slot| slot.expect("worker completed every popped job"))
        .collect();

    let candidate_secs_total: f64 = results.iter().map(|r| r.3).sum();
    let candidates = results.len();
    // Rank by validation loss (NaN losses sink to the end).
    results.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Greater));
    results.truncate(cfg.n_ensemble.max(1));

    let selected_losses: Vec<f32> = results.iter().map(|r| r.2).collect();
    let members = results
        .into_iter()
        .map(|(spec, net, val_loss, _)| EnsembleMember { net, spec, val_loss })
        .collect::<Vec<_>>();
    let stats = EnsembleStats {
        candidates,
        selected: members.len(),
        selected_losses,
        total_secs: start.elapsed().as_secs_f64(),
        candidate_secs_total,
    };
    (members, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CamalConfig;
    use crate::test_support::toy_set;
    use nilm_models::TrainConfig;

    fn fast_cfg() -> CamalConfig {
        CamalConfig {
            n_ensemble: 2,
            kernels: vec![5, 9],
            trials: 1,
            width_div: 16,
            train: TrainConfig { epochs: 3, batch_size: 8, lr: 2e-3, clip: 0.0, seed: 3 },
            ..Default::default()
        }
    }

    #[test]
    fn algorithm1_selects_n_members_sorted_by_val_loss() {
        let train = toy_set(24, 32, 1);
        let val = toy_set(8, 32, 2);
        let (members, stats) = train_ensemble(&fast_cfg(), &train, &val, 2);
        assert_eq!(members.len(), 2);
        assert_eq!(stats.candidates, 2);
        assert!(members[0].val_loss <= members[1].val_loss);
        assert!(stats.total_secs > 0.0);
    }

    #[test]
    fn trained_ensemble_detects_toy_signal() {
        let train = toy_set(32, 32, 3);
        let val = toy_set(8, 32, 4);
        let mut cfg = fast_cfg();
        cfg.train.epochs = 8;
        let (mut members, _) = train_ensemble(&cfg, &train, &val, 2);
        // Evaluate detection accuracy on fresh data.
        let test = toy_set(16, 32, 5);
        let idx: Vec<usize> = (0..test.len()).collect();
        let x = test.batch_inputs(&idx);
        let mut correct = 0;
        let probs = members[0].net.predict_proba(&x);
        for (i, w) in test.windows.iter().enumerate() {
            let p1 = probs.at2(i, 1);
            if (p1 > 0.5) == (w.weak_label == 1) {
                correct += 1;
            }
        }
        assert!(correct >= 12, "detection too weak: {correct}/16");
    }

    #[test]
    fn eval_loss_empty_set_is_infinite() {
        let train = toy_set(8, 16, 6);
        let cfg = fast_cfg();
        let (mut members, _) = train_ensemble(&cfg, &train, &train, 1);
        let empty = WindowSet::default();
        assert_eq!(eval_loss(members[0].net.as_mut(), &empty, 4), f32::INFINITY);
    }

    #[test]
    fn selection_is_invariant_to_thread_count() {
        // The work-queue scheduler must be a pure performance knob: member
        // selection (kernels, losses, weights) is bit-identical whether the
        // candidates trained on 1 thread or 4.
        let train = toy_set(24, 32, 11);
        let val = toy_set(8, 32, 12);
        let mut cfg = fast_cfg();
        cfg.kernels = vec![5, 7, 9];
        cfg.trials = 2;
        cfg.n_ensemble = 3;
        let (m1, s1) = train_ensemble(&cfg, &train, &val, 1);
        let (m4, s4) = train_ensemble(&cfg, &train, &val, 4);
        assert_eq!(s1.candidates, s4.candidates);
        let summary = |ms: &[EnsembleMember]| -> Vec<(BackboneSpec, u32)> {
            ms.iter().map(|m| (m.spec, m.val_loss.to_bits())).collect()
        };
        assert_eq!(summary(&m1), summary(&m4), "selection depends on thread count");
        for (mut a, mut b) in m1.into_iter().zip(m4) {
            assert_eq!(a.net.save_state(), b.net.save_state(), "member weights differ");
        }
    }

    #[test]
    fn mixed_spec_selection_is_invariant_to_thread_count() {
        // The heterogeneous grid (ResNet kernels + an explicit TransApp
        // candidate) must select identically — specs, losses, and weights
        // bit-for-bit — whether candidates trained on 1 thread or 4.
        let train = toy_set(24, 32, 15);
        let val = toy_set(8, 32, 16);
        let mut cfg = fast_cfg();
        cfg.kernels = vec![5, 9];
        cfg.candidates = vec![BackboneSpec::TransApp {
            d_model: 8,
            heads: 2,
            d_ff: 16,
            layers: 1,
            downsample: 4,
        }];
        cfg.trials = 2;
        cfg.n_ensemble = 4;
        let (m1, s1) = train_ensemble(&cfg, &train, &val, 1);
        let (m4, s4) = train_ensemble(&cfg, &train, &val, 4);
        assert_eq!(s1.candidates, 6, "3 specs x 2 trials");
        assert_eq!(s1.candidates, s4.candidates);
        let summary = |ms: &[EnsembleMember]| -> Vec<(BackboneSpec, u32)> {
            ms.iter().map(|m| (m.spec, m.val_loss.to_bits())).collect()
        };
        assert_eq!(summary(&m1), summary(&m4), "mixed selection depends on thread count");
        for (mut a, mut b) in m1.into_iter().zip(m4) {
            assert_eq!(a.net.save_state(), b.net.save_state(), "member weights differ");
        }
    }

    #[test]
    fn extra_candidates_enter_the_sweep_and_can_be_selected() {
        // With the TransApp candidate as the only spec, every selected
        // member must be a transformer.
        let train = toy_set(16, 32, 17);
        let mut cfg = fast_cfg();
        cfg.kernels = Vec::new();
        cfg.candidates = vec![BackboneSpec::TransApp {
            d_model: 8,
            heads: 2,
            d_ff: 16,
            layers: 1,
            downsample: 4,
        }];
        cfg.n_ensemble = 1;
        let (members, stats) = train_ensemble(&cfg, &train, &train, 2);
        assert_eq!(stats.candidates, 1);
        assert_eq!(members.len(), 1);
        assert_eq!(members[0].spec.family(), "transapp");
    }

    #[test]
    fn gradient_clipping_changes_training_when_enabled() {
        // `train_candidate` must honor `cfg.train.clip` (the historical bug
        // silently ignored it): an aggressively small clip produces
        // different weights than no clip under the same seed.
        let train = toy_set(16, 32, 13);
        let val = toy_set(8, 32, 14);
        let mut clipped = fast_cfg();
        clipped.train.clip = 1e-3;
        let mut unclipped = clipped.clone();
        unclipped.train.clip = 0.0;
        let (mut mc, _) = train_ensemble(&clipped, &train, &val, 1);
        let (mut mu, _) = train_ensemble(&unclipped, &train, &val, 1);
        assert_ne!(
            mc[0].net.save_state(),
            mu[0].net.save_state(),
            "clip had no effect on training"
        );
    }

    #[test]
    fn kernel_grid_times_trials_candidates() {
        let train = toy_set(12, 16, 7);
        let mut cfg = fast_cfg();
        cfg.kernels = vec![5, 7, 9];
        cfg.trials = 2;
        cfg.n_ensemble = 4;
        let (members, stats) = train_ensemble(&cfg, &train, &train, 3);
        assert_eq!(stats.candidates, 6);
        assert_eq!(members.len(), 4);
    }
}
