//! From binary labels to per-appliance consumption (paper §IV-C):
//! `p̂_init(t) = ŝ(t) · P_a`, clipped so the estimate never exceeds the
//! observed aggregate: `p̂(t) = min(p̂_init(t), x(t))`.

/// Estimates appliance power in Watts from predicted status, the appliance's
/// average running power `avg_power_w`, and the raw aggregate `aggregate_w`.
pub fn estimate_power(status: &[u8], avg_power_w: f32, aggregate_w: &[f32]) -> Vec<f32> {
    assert_eq!(status.len(), aggregate_w.len(), "status/aggregate length mismatch");
    status
        .iter()
        .zip(aggregate_w)
        .map(|(&s, &x)| if s != 0 { (avg_power_w).min(x.max(0.0)) } else { 0.0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_timesteps_are_zero() {
        let p = estimate_power(&[0, 1, 0], 800.0, &[1000.0, 1000.0, 1000.0]);
        assert_eq!(p, vec![0.0, 800.0, 0.0]);
    }

    #[test]
    fn clipped_by_aggregate() {
        let p = estimate_power(&[1, 1], 2000.0, &[500.0, 3000.0]);
        assert_eq!(p, vec![500.0, 2000.0]);
    }

    #[test]
    fn never_exceeds_aggregate_or_goes_negative() {
        let agg = [0.0, -5.0, 100.0, 1e6];
        let p = estimate_power(&[1, 1, 1, 1], 800.0, &agg);
        for (est, x) in p.iter().zip(&agg) {
            assert!(*est >= 0.0);
            assert!(*est <= x.max(0.0));
        }
    }
}
