//! Step 2 of CamAL (paper §IV-B): CAM extraction, normalization, ensemble
//! averaging, and the attention-sigmoid module that turns the averaged CAM
//! into per-timestep ON/OFF status.
//!
//! Normalization note: the paper states each CAM is "normalized to [0, 1] by
//! dividing by its maximum value" and that the averaged CAM is applied to
//! the input by pointwise multiplication followed by a sigmoid. Taken
//! literally (non-negative CAM × non-negative power), `sigmoid(·) ≥ 0.5`
//! would hold everywhere. We therefore (a) clamp negative CAM values to
//! zero and divide by the max (the standard CAM practice), and (b) apply the
//! attention mask to the *window-standardized* input (zero mean, unit
//! variance), so the decision rule is `CAM(t) > 0 AND x(t) above the window
//! mean` — this reproduces the paper's described behaviour (the attention
//! module suppresses activations in low-power regions, trading a little
//! recall for much higher precision; see Table IV).

use nilm_tensor::activation::sigmoid;
use nilm_tensor::tensor::Tensor;

/// Normalizes one CAM row in place: negatives clamped to zero, then divided
/// by the maximum. A CAM with no positive value becomes all-zero.
pub fn normalize_cam(cam: &mut [f32]) {
    let mut max = 0.0f32;
    for v in cam.iter_mut() {
        if *v < 0.0 {
            *v = 0.0;
        } else if *v > max {
            max = *v;
        }
    }
    if max > 0.0 {
        let inv = 1.0 / max;
        cam.iter_mut().for_each(|v| *v *= inv);
    }
}

/// Averages per-member normalized CAMs: `cams[i]` is member `i`'s `[b, t]`
/// map. Returns the `[b, t]` ensemble CAM (paper step 4).
pub fn average_cams(cams: &[Tensor]) -> Tensor {
    assert!(!cams.is_empty(), "no CAMs to average");
    let shape = cams[0].shape().to_vec();
    let mut out = Tensor::zeros(&shape);
    for cam in cams {
        assert_eq!(cam.shape(), &shape[..], "CAM shape mismatch");
        out.add_assign(cam);
    }
    out.scale_inplace(1.0 / cams.len() as f32);
    out
}

/// Standardizes one window to zero mean / unit variance (constant windows
/// become all-zero).
pub fn standardize(x: &[f32]) -> Vec<f32> {
    let n = x.len().max(1) as f32;
    let mean = x.iter().sum::<f32>() / n;
    let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
    let std = var.sqrt();
    if std <= 1e-12 {
        return vec![0.0; x.len()];
    }
    x.iter().map(|v| (v - mean) / std).collect()
}

/// The attention-sigmoid module (paper steps 5–6): multiplies the ensemble
/// CAM with the standardized input, squashes through a sigmoid and rounds.
/// Returns the binary status and the post-sigmoid localization scores.
///
/// `margin` shifts the sigmoid so that a timestep counts as ON only when
/// `CAM(t) · x̃(t) > margin`. The paper's literal formula corresponds to
/// `margin = 0`; because both factors are non-negative after normalization,
/// that degenerates to "any positive CAM over any above-mean power", so a
/// small positive margin (default 0.5 in [`crate::CamalConfig`]) restores
/// the precision/recall trade-off the paper reports for this module
/// (Table IV). Scores stay in [0, 1] with 0.5 as the decision boundary.
pub fn attention_status(cam_ens: &[f32], input: &[f32], margin: f32) -> (Vec<u8>, Vec<f32>) {
    assert_eq!(cam_ens.len(), input.len(), "CAM/input length mismatch");
    let xs = standardize(input);
    let mut status = Vec::with_capacity(input.len());
    let mut scores = Vec::with_capacity(input.len());
    for (&c, &x) in cam_ens.iter().zip(&xs) {
        let s = sigmoid(c * x - margin);
        scores.push(s);
        status.push((s > 0.5) as u8);
    }
    (status, scores)
}

/// The Table IV "w/o Attention module" ablation: thresholds the averaged
/// normalized CAM directly (sigmoid of the raw CAM, rounded — since the
/// normalized CAM is in [0, 1], this is `cam > 0`).
pub fn raw_cam_status(cam_ens: &[f32]) -> (Vec<u8>, Vec<f32>) {
    let mut status = Vec::with_capacity(cam_ens.len());
    let mut scores = Vec::with_capacity(cam_ens.len());
    for &c in cam_ens {
        let s = sigmoid(c);
        scores.push(s);
        status.push((s > 0.5) as u8);
    }
    (status, scores)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_clamps_and_scales() {
        let mut cam = vec![-1.0, 0.5, 2.0];
        normalize_cam(&mut cam);
        assert_eq!(cam, vec![0.0, 0.25, 1.0]);
    }

    #[test]
    fn normalize_all_negative_is_zero() {
        let mut cam = vec![-3.0, -1.0];
        normalize_cam(&mut cam);
        assert_eq!(cam, vec![0.0, 0.0]);
    }

    #[test]
    fn normalized_cam_is_in_unit_interval() {
        let mut cam: Vec<f32> = (-10..10).map(|i| i as f32 * 0.7).collect();
        normalize_cam(&mut cam);
        assert!(cam.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!((cam.iter().fold(0.0f32, |a, &b| a.max(b)) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn average_is_elementwise_mean() {
        let a = Tensor::from_vec(vec![0.0, 1.0], &[1, 2]);
        let b = Tensor::from_vec(vec![1.0, 0.0], &[1, 2]);
        let avg = average_cams(&[a, b]);
        assert_eq!(avg.data(), &[0.5, 0.5]);
    }

    #[test]
    fn standardize_centers_and_scales() {
        let z = standardize(&[1.0, 2.0, 3.0]);
        let mean: f32 = z.iter().sum::<f32>() / 3.0;
        assert!(mean.abs() < 1e-6);
        assert!(z[0] < 0.0 && z[2] > 0.0);
    }

    #[test]
    fn standardize_constant_window_is_zero() {
        assert_eq!(standardize(&[5.0; 4]), vec![0.0; 4]);
    }

    #[test]
    fn attention_fires_on_supported_high_power() {
        // CAM positive only on the plateau; power above mean there.
        let cam = vec![0.0, 0.0, 1.0, 1.0, 0.0, 0.0];
        let x = vec![0.1, 0.1, 2.0, 2.0, 0.1, 0.1];
        let (status, scores) = attention_status(&cam, &x, 0.5);
        assert_eq!(status, vec![0, 0, 1, 1, 0, 0]);
        assert!(scores.iter().all(|&s| (0.0..=1.0).contains(&s)));
    }

    #[test]
    fn attention_suppresses_low_power_even_with_cam() {
        // CAM fires everywhere, but only the plateau is above window mean.
        let cam = vec![1.0; 6];
        let x = vec![0.1, 0.1, 2.0, 2.0, 0.1, 0.1];
        let (status, _) = attention_status(&cam, &x, 0.5);
        assert_eq!(status, vec![0, 0, 1, 1, 0, 0]);
    }

    #[test]
    fn raw_cam_fires_wherever_cam_is_positive() {
        let cam = vec![0.0, 0.2, 0.9];
        let (status, _) = raw_cam_status(&cam);
        assert_eq!(status, vec![0, 1, 1]);
    }

    #[test]
    fn raw_cam_has_higher_or_equal_recall_than_attention() {
        // The ablation finding of Table IV: raw CAM activates a superset of
        // cam-positive regions, so its recall can only be >= attention's.
        let cam = vec![0.3, 0.8, 0.0, 0.6];
        let x = vec![0.1, 5.0, 0.1, 0.05];
        let (att, _) = attention_status(&cam, &x, 0.0);
        let (raw, _) = raw_cam_status(&cam);
        for (a, r) in att.iter().zip(&raw) {
            assert!(r >= a, "raw must dominate attention activations");
        }
    }
}
