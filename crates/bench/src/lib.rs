//! # nilm-bench
//!
//! Criterion benchmarks, one target per table/figure of the CamAL paper.
//! Each benchmark exercises the same code path as the corresponding
//! `nilm-eval` experiment binary at smoke scale, so `cargo bench` doubles as
//! a performance regression suite for the reproduction.
//!
//! ## Example
//!
//! The shared fixtures keep every bench at seconds scale:
//!
//! ```
//! let scale = nilm_bench::bench_scale();
//! assert_eq!((scale.epochs, scale.trials, scale.n_ensemble), (1, 1, 1));
//!
//! let cfg = nilm_bench::bench_camal_cfg();
//! assert_eq!(cfg.train.epochs, 1);
//! ```

use camal::{CamalConfig, CamalModel};
use nilm_data::prelude::*;
use nilm_eval::runner::Scale;
use nilm_models::TrainConfig;

/// The tiniest usable experiment scale (single kernel, one epoch) —
/// [`Scale::bench`], shared with `nilm_eval`'s `bench_conv_gemm` harness.
pub fn bench_scale() -> Scale {
    Scale::bench()
}

/// A CamAL configuration matching [`bench_scale`].
pub fn bench_camal_cfg() -> CamalConfig {
    let mut cfg = bench_scale().camal_config();
    cfg.train = TrainConfig { epochs: 1, batch_size: 16, lr: 1e-3, clip: 0.0, seed: 1 };
    cfg
}

/// A small REFIT kettle case shared by several benches.
pub fn bench_case() -> CaseData {
    let scale =
        ScaleOverride { submetered_houses: Some(5), days_per_house: Some(2), ..Default::default() };
    let ds = generate_dataset(&refit(), scale, 3);
    prepare_case(&ds, ApplianceKind::Kettle, 128, &SplitConfig::default())
}

/// A pre-trained tiny CamAL model on [`bench_case`].
pub fn bench_model(case: &CaseData) -> CamalModel {
    CamalModel::train(&bench_camal_cfg(), &case.train, &case.val, 2)
}

/// A tiny untrained single-member model recorded at `window`, for the
/// fleet-serving bench: scheduler throughput does not depend on trained
/// weights, so skipping training keeps the fixture instant.
pub fn bench_fleet_model(window: usize, seed: u64) -> CamalModel {
    let cfg = CamalConfig {
        n_ensemble: 1,
        kernels: vec![5],
        trials: 1,
        width_div: 16,
        ..Default::default()
    };
    let mut rng = nilm_tensor::init::rng(seed);
    let spec = nilm_models::BackboneSpec::ResNet { kernel: 5, width_div: cfg.width_div };
    let member = camal::ensemble::EnsembleMember {
        net: nilm_models::build_from_spec(&mut rng, spec),
        spec,
        val_loss: 0.1,
    };
    let mut model = CamalModel::from_members(cfg, vec![member]);
    model.set_window(window);
    model
}
