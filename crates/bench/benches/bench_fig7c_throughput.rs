//! Fig. 7(c): inference throughput vs input length — this bench IS the
//! figure: criterion reports elements/second per input length.

use camal::CamalModel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nilm_bench::{bench_camal_cfg, bench_case};
use nilm_data::preprocess::Window;
use nilm_data::windows::WindowSet;
use rand::{RngExt, SeedableRng};

fn windows_of_len(w: usize, n: usize) -> WindowSet {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    WindowSet::new(
        (0..n)
            .map(|i| {
                let input: Vec<f32> = (0..w).map(|_| rng.random::<f32>()).collect();
                Window {
                    aggregate_w: input.iter().map(|v| v * 1000.0).collect(),
                    appliance_w: vec![0.0; w],
                    status: vec![0; w],
                    weak_label: 0,
                    input,
                    house_id: i,
                }
            })
            .collect(),
    )
}

fn bench(c: &mut Criterion) {
    let case = bench_case();
    let mut model = CamalModel::train(&bench_camal_cfg(), &case.train, &case.val, 2);
    let mut g = c.benchmark_group("fig7c_throughput_vs_length");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_secs(1));
    for len in [128usize, 256, 510] {
        let data = windows_of_len(len, 8);
        g.throughput(Throughput::Elements(data.len() as u64));
        g.bench_with_input(BenchmarkId::new("camal_localize", len), &data, |b, d| {
            b.iter(|| std::hint::black_box(model.localize_set(d, 1).status.len()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
