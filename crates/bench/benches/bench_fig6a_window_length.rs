//! Fig. 6(a): training at an alternative window length.

use camal::CamalModel;
use criterion::{criterion_group, criterion_main, Criterion};
use nilm_bench::bench_camal_cfg;
use nilm_data::prelude::*;

fn bench(c: &mut Criterion) {
    let scale =
        ScaleOverride { submetered_houses: Some(5), days_per_house: Some(2), ..Default::default() };
    let ds = generate_dataset(&refit(), scale, 3);
    let mut g = c.benchmark_group("fig6a_train_at_window");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_secs(1));
    for w in [64usize, 128] {
        let case = prepare_case(&ds, ApplianceKind::Kettle, w, &SplitConfig::default());
        g.bench_function(format!("w{w}"), |b| {
            b.iter(|| {
                let m = CamalModel::train(&bench_camal_cfg(), &case.train, &case.val, 2);
                std::hint::black_box(m.ensemble_size())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
