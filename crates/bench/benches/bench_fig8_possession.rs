//! Fig. 8: the possession-only pipeline (survey windows -> CamAL).

use camal::CamalModel;
use criterion::{criterion_group, criterion_main, Criterion};
use nilm_bench::bench_camal_cfg;
use nilm_data::prelude::*;

fn bench(c: &mut Criterion) {
    let scale = ScaleOverride {
        submetered_houses: Some(4),
        possession_only_houses: Some(8),
        days_per_house: Some(2),
    };
    let ds = generate_dataset(&ideal(), scale, 8);
    let case = prepare_possession_case(&ds, ApplianceKind::Shower, 64, &SplitConfig::default());
    c.bench_function("fig8_camal_from_possession_labels", |b| {
        b.iter(|| {
            let m = CamalModel::train(&bench_camal_cfg(), &case.train, &case.val, 2);
            std::hint::black_box(m.ensemble_size())
        })
    });
}

criterion_group!(name = benches; config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1)); targets = bench);
criterion_main!(benches);
