//! Fig. 1 headline: CamAL trained with weak labels on the dishwasher case.

use camal::CamalModel;
use criterion::{criterion_group, criterion_main, Criterion};
use nilm_bench::{bench_camal_cfg, bench_case};

fn bench(c: &mut Criterion) {
    let case = bench_case();
    c.bench_function("fig1_camal_train_weak_labels", |b| {
        b.iter(|| {
            let model = CamalModel::train(&bench_camal_cfg(), &case.train, &case.val, 2);
            std::hint::black_box(model.ensemble_size())
        })
    });
}

criterion_group!(name = benches; config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1)); targets = bench);
criterion_main!(benches);
