//! Fig. 5: one label-budget point of the sweep (train + evaluate).

use criterion::{criterion_group, criterion_main, Criterion};
use nilm_bench::{bench_case, bench_scale};
use nilm_data::appliance::ApplianceKind;
use nilm_data::templates::DatasetId;
use nilm_eval::runner::{run_baseline, run_camal, Case};
use nilm_models::baselines::BaselineKind;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let case = Case { dataset: DatasetId::Refit, appliance: ApplianceKind::Kettle };
    let data = bench_case();
    let mut g = c.benchmark_group("fig5_one_budget_point");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.bench_function("camal", |b| {
        b.iter(|| {
            std::hint::black_box(run_camal(&case, &data, &scale, None).report.localization.f1)
        })
    });
    g.bench_function("crnn_weak", |b| {
        b.iter(|| {
            std::hint::black_box(
                run_baseline(BaselineKind::CrnnWeak, &case, &data, &scale).report.localization.f1,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
