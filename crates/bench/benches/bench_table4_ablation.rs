//! Table IV: the attention-sigmoid module vs raw CAM thresholding.

use camal::localize::{attention_status, raw_cam_status};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::{RngExt, SeedableRng};

fn bench(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let cam: Vec<f32> = (0..510).map(|_| rng.random::<f32>()).collect();
    let xs: Vec<f32> = (0..510).map(|_| rng.random::<f32>() * 3.0).collect();
    let mut g = c.benchmark_group("table4_localization_modules");
    g.bench_function("attention_sigmoid", |b| {
        b.iter(|| std::hint::black_box(attention_status(&cam, &xs, 0.5).0.len()))
    });
    g.bench_function("raw_cam", |b| b.iter(|| std::hint::black_box(raw_cam_status(&cam).0.len())));
    g.finish();
}

criterion_group!(name = benches; config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1)); targets = bench);
criterion_main!(benches);
