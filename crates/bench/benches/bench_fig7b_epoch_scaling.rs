//! Fig. 7(b): per-epoch training cost as households grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nilm_data::preprocess::Window;
use nilm_data::windows::WindowSet;
use nilm_models::baselines::BaselineKind;
use nilm_models::{train_strong, TrainConfig};
use rand::{RngExt, SeedableRng};

fn noise_windows(houses: usize, w: usize) -> WindowSet {
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let mut windows = Vec::new();
    for h in 0..houses {
        for _ in 0..4 {
            let input: Vec<f32> = (0..w).map(|_| rng.random::<f32>()).collect();
            let status: Vec<u8> = (0..w).map(|_| rng.random_bool(0.2) as u8).collect();
            windows.push(Window {
                aggregate_w: input.iter().map(|v| v * 1000.0).collect(),
                appliance_w: vec![0.0; w],
                weak_label: status.iter().any(|&s| s == 1) as u8,
                input,
                status,
                house_id: h,
            });
        }
    }
    WindowSet::new(windows)
}

fn bench(c: &mut Criterion) {
    let cfg = TrainConfig { epochs: 1, batch_size: 16, lr: 1e-3, clip: 0.0, seed: 1 };
    let mut g = c.benchmark_group("fig7b_epoch_vs_households");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_secs(1));
    for houses in [1usize, 2, 4] {
        let data = noise_windows(houses, 128);
        g.throughput(Throughput::Elements(data.len() as u64));
        g.bench_with_input(BenchmarkId::new("tpnilm", houses), &data, |b, d| {
            b.iter(|| {
                let mut rng = nilm_tensor::init::rng(1);
                let mut m = BaselineKind::TpNilm.build(&mut rng, 16);
                std::hint::black_box(train_strong(m.as_mut(), d, &cfg).final_loss())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
