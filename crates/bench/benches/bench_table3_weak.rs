//! Table III: the weakly supervised comparison on one case.

use criterion::{criterion_group, criterion_main, Criterion};
use nilm_bench::{bench_case, bench_model};

fn bench(c: &mut Criterion) {
    let case = bench_case();
    let mut model = bench_model(&case);
    c.bench_function("table3_camal_evaluate", |b| {
        b.iter(|| std::hint::black_box(model.evaluate(&case.test, 2000.0, 16).localization.f1))
    });
}

criterion_group!(name = benches; config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1)); targets = bench);
criterion_main!(benches);
