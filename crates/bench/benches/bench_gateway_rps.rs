//! Gateway throughput: socket-level loadgen against a running
//! `nilm_serve::Gateway` at 1 / 4 / 16 concurrent keep-alive connections,
//! plus the sequential-single-request baseline (one connection per
//! request, the naive-integration shape) — reporting requests/s and
//! p50/p99 latency — and an in-process measurement of the micro-batcher's
//! server-side coalescing win (one merged fleet pass for K requests vs K
//! single-request passes), which is deterministic because no socket or
//! scheduler noise is involved.
//!
//! Writes and validates `BENCH_gateway.json` (committed at the repo root
//! as the regression baseline, like `BENCH_conv_gemm.json`).
//!
//! ```text
//! cargo bench -p nilm_bench --bench bench_gateway_rps             # full
//! cargo bench -p nilm_bench --bench bench_gateway_rps -- --smoke  # CI, seconds
//! ```

use camal::fleet::{serve_fleet, FleetConfig};
use camal::registry::{ModelKey, ModelRegistry};
use camal::stream::HouseholdSeries;
use nilm_data::prelude::*;
use nilm_eval::json::{validate, JsonValue};
use nilm_serve::protocol::{localize_request, Detail};
use nilm_serve::{run_loadgen, Gateway, GatewayConfig, LoadgenReport};
use std::path::PathBuf;
use std::time::Instant;

const WINDOW: usize = 32;

fn kettle() -> ModelKey {
    ModelKey::new(DatasetId::Refit, ApplianceKind::Kettle)
}

fn registry() -> ModelRegistry {
    let mut registry = ModelRegistry::unbounded();
    registry.insert(kettle(), nilm_bench::bench_fleet_model(WINDOW, 17));
    registry
}

fn household(seed: u64, windows: usize) -> HouseholdSeries {
    let mut rng = nilm_tensor::init::rng(seed);
    let values: Vec<f32> = (0..windows * WINDOW)
        .map(|t| {
            let on = (t / 9) % 4 == 0;
            (if on { 2000.0 } else { 150.0 }) + nilm_tensor::init::randn(&mut rng).abs() * 25.0
        })
        .collect();
    HouseholdSeries { id: format!("house-{seed}"), series: TimeSeries::new(values, 60) }
}

fn report_json(r: &LoadgenReport) -> JsonValue {
    JsonValue::object([
        ("connections", JsonValue::Number(r.connections as f64)),
        ("requests_per_second", JsonValue::Number(r.requests_per_second)),
        ("p50_ms", JsonValue::Number(r.p50_ms)),
        ("p99_ms", JsonValue::Number(r.p99_ms)),
        ("ok", JsonValue::Number(r.ok as f64)),
        ("errors", JsonValue::Number(r.errors as f64)),
    ])
}

/// Median-of-3 loadgen runs (medians tame the 1-core scheduler noise).
fn measure(
    addr: &str,
    connections: usize,
    requests: usize,
    body: &str,
    keep_alive: bool,
) -> LoadgenReport {
    let mut runs: Vec<LoadgenReport> = (0..3)
        .map(|_| run_loadgen(addr, connections, requests, body, keep_alive).expect("loadgen run"))
        .collect();
    runs.sort_by(|a, b| {
        a.requests_per_second.partial_cmp(&b.requests_per_second).expect("finite rps")
    });
    runs[1].clone()
}

/// Server-side coalescing effect, no sockets: K requests' households
/// served as one merged fleet pass vs K single-household passes. Returns
/// (solo_us_per_request, coalesced_us_per_request).
fn coalescing_probe(reg: &mut ModelRegistry, windows: usize, coalesce: usize) -> (f64, f64) {
    let cfg = FleetConfig { batch: 64, ..FleetConfig::at_step(60) };
    let keys = [kettle()];
    let feeds: Vec<HouseholdSeries> =
        (0..coalesce).map(|i| household(40 + i as u64, windows)).collect();
    // Warm.
    let _ = serve_fleet(reg, &keys, &feeds, &cfg).unwrap();
    let reps = 256 / coalesce.max(1);
    let start = Instant::now();
    for _ in 0..reps {
        for feed in &feeds {
            let _ = std::hint::black_box(serve_fleet(reg, &keys, std::slice::from_ref(feed), &cfg));
        }
    }
    let solo = start.elapsed().as_secs_f64() * 1e6 / (reps * coalesce) as f64;
    let start = Instant::now();
    for _ in 0..reps {
        let _ = std::hint::black_box(serve_fleet(reg, &keys, &feeds, &cfg));
    }
    let merged = start.elapsed().as_secs_f64() * 1e6 / (reps * coalesce) as f64;
    (solo, merged)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // Bench executables run with the package dir as CWD; default to the
    // workspace root so a plain `cargo bench` refreshes the committed
    // baseline in place.
    let out_dir: PathBuf = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")));
    let requests = if smoke { 300 } else { 1500 };
    let windows_per_request = 1usize;

    println!(
        "bench_gateway_rps: mode={} window={WINDOW} requests={requests} windows/request={windows_per_request}",
        if smoke { "smoke" } else { "full" }
    );

    let gateway = Gateway::start(registry(), GatewayConfig::default()).expect("gateway starts");
    let addr = gateway.addr().to_string();
    let body = localize_request(&[kettle()], &[household(9, windows_per_request)], Detail::Summary)
        .to_compact();

    let sequential_single = measure(&addr, 1, requests, &body, false);
    println!(
        "sequential-single  {:7.1} req/s  p50 {:6.2} ms  p99 {:6.2} ms (1 conn/request)",
        sequential_single.requests_per_second, sequential_single.p50_ms, sequential_single.p99_ms
    );
    let mut keepalive_reports: Vec<(usize, LoadgenReport)> = Vec::new();
    for connections in [1usize, 4, 16] {
        let r = measure(&addr, connections, requests, &body, true);
        println!(
            "keep-alive x{connections:<3}    {:7.1} req/s  p50 {:6.2} ms  p99 {:6.2} ms",
            r.requests_per_second, r.p50_ms, r.p99_ms
        );
        keepalive_reports.push((connections, r));
    }
    gateway.shutdown();

    // Deterministic server-side coalescing effect (no sockets involved).
    let mut reg = registry();
    let (solo_us, merged_us) = coalescing_probe(&mut reg, windows_per_request, 8);
    let coalescing_speedup = solo_us / merged_us.max(1e-9);
    println!(
        "coalescing probe: {solo_us:.1} us/request solo vs {merged_us:.1} us/request merged \
         (8 requests/pass) = {coalescing_speedup:.2}x server-side"
    );

    let concurrency_speedup = keepalive_reports
        .iter()
        .find(|(c, _)| *c == 4)
        .map(|(_, r)| r.requests_per_second / sequential_single.requests_per_second.max(1e-9))
        .unwrap_or(0.0);

    let doc = JsonValue::object([
        ("schema", JsonValue::String("bench_gateway_rps/v1".into())),
        (
            "baseline_note",
            JsonValue::String(
                "Measured on a single-core container: keep-alive connection counts cannot add \
                 CPU, so the headline win is gateway-vs-naive-client (sequential_single issues \
                 one connection per request). The coalescing section isolates the batcher's \
                 server-side saving (one merged fleet pass for 8 requests vs 8 solo passes) \
                 without socket or scheduler noise; on multi-core hosts the keep-alive \
                 concurrency rows additionally scale with worker parallelism. Loadgen numbers \
                 are medians of 3 runs; run-to-run noise on this box is ±10%."
                    .into(),
            ),
        ),
        ("mode", JsonValue::String(if smoke { "smoke" } else { "full" }.into())),
        ("window", JsonValue::Number(WINDOW as f64)),
        ("requests", JsonValue::Number(requests as f64)),
        ("windows_per_request", JsonValue::Number(windows_per_request as f64)),
        ("sequential_single", report_json(&sequential_single)),
        (
            "keep_alive",
            JsonValue::Array(keepalive_reports.iter().map(|(_, r)| report_json(r)).collect()),
        ),
        (
            "coalescing",
            JsonValue::object([
                ("requests_per_pass", JsonValue::Number(8.0)),
                ("solo_us_per_request", JsonValue::Number(solo_us)),
                ("merged_us_per_request", JsonValue::Number(merged_us)),
                ("speedup", JsonValue::Number(coalescing_speedup)),
            ]),
        ),
        ("concurrency_speedup_vs_single_at_4", JsonValue::Number(concurrency_speedup)),
    ]);
    let text = doc.to_pretty();
    validate(&text).expect("bench emitted invalid JSON");
    std::fs::create_dir_all(&out_dir).expect("cannot create output directory");
    let path = out_dir.join("BENCH_gateway.json");
    std::fs::write(&path, &text).expect("cannot write benchmark artifact");
    validate(&std::fs::read_to_string(&path).expect("re-read artifact"))
        .expect("benchmark artifact on disk is invalid JSON");
    println!("wrote {} (validated)", path.display());
}
