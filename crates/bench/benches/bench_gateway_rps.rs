//! Gateway throughput: socket-level loadgen against a running
//! `nilm_serve::Gateway` at 1 / 4 / 16 / 256 concurrent keep-alive
//! connections, plus the sequential-single-request baseline (one
//! connection per request, the naive-integration shape) — reporting
//! requests/s and p50/p99 latency — and an in-process measurement of the
//! micro-batcher's server-side coalescing win (one merged fleet pass for
//! K requests vs K single-request passes), which is deterministic because
//! no socket or scheduler noise is involved. The 256-connection row is
//! the epoll reactor's headline: a thread-per-connection gateway degrades
//! or sheds there, the event loop must hold rps with zero errors.
//!
//! Writes and validates `BENCH_gateway.json` (committed at the repo root
//! as the regression baseline, like `BENCH_conv_gemm.json`).
//!
//! ```text
//! cargo bench -p nilm_bench --bench bench_gateway_rps             # full
//! cargo bench -p nilm_bench --bench bench_gateway_rps -- --smoke  # CI, seconds
//! ```

use camal::fleet::{serve_fleet, FleetConfig};
use camal::registry::{ModelKey, ModelRegistry};
use camal::stream::HouseholdSeries;
use nilm_data::prelude::*;
use nilm_eval::json::{validate, JsonValue};
use nilm_serve::protocol::{localize_request, Detail};
use nilm_serve::{
    run_loadgen, run_loadgen_with, Gateway, GatewayConfig, LoadgenOptions, LoadgenReport,
};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const WINDOW: usize = 32;

fn kettle() -> ModelKey {
    ModelKey::new(DatasetId::Refit, ApplianceKind::Kettle)
}

fn registry() -> ModelRegistry {
    let mut registry = ModelRegistry::unbounded();
    registry.insert(kettle(), nilm_bench::bench_fleet_model(WINDOW, 17));
    registry
}

fn household(seed: u64, windows: usize) -> HouseholdSeries {
    let mut rng = nilm_tensor::init::rng(seed);
    let values: Vec<f32> = (0..windows * WINDOW)
        .map(|t| {
            let on = (t / 9) % 4 == 0;
            (if on { 2000.0 } else { 150.0 }) + nilm_tensor::init::randn(&mut rng).abs() * 25.0
        })
        .collect();
    HouseholdSeries { id: format!("house-{seed}"), series: TimeSeries::new(values, 60) }
}

fn report_json(r: &LoadgenReport) -> JsonValue {
    JsonValue::object([
        ("connections", JsonValue::Number(r.connections as f64)),
        ("requests_per_second", JsonValue::Number(r.requests_per_second)),
        ("p50_ms", JsonValue::Number(r.p50_ms)),
        ("p99_ms", JsonValue::Number(r.p99_ms)),
        ("ok", JsonValue::Number(r.ok as f64)),
        ("errors", JsonValue::Number(r.errors as f64)),
    ])
}

/// Best-of-5 loadgen runs by rps. Throughput on a shared 1-core box is
/// capacity minus whatever the scheduler stole that run, so the max is
/// the uncontended-capacity estimate (same reasoning as hyperfine's
/// min-time); a single ~10 ms preemption otherwise dominates a 250 ms
/// run. Tail latency is NOT taken from here — the paced measurement
/// owns that.
fn measure(
    addr: &str,
    connections: usize,
    requests: usize,
    body: &str,
    keep_alive: bool,
) -> LoadgenReport {
    let mut runs: Vec<LoadgenReport> = (0..5)
        .map(|_| run_loadgen(addr, connections, requests, body, keep_alive).expect("loadgen run"))
        .collect();
    best_by_rps(&mut runs)
}

fn best_by_rps(runs: &mut [LoadgenReport]) -> LoadgenReport {
    runs.sort_by(|a, b| {
        a.requests_per_second.partial_cmp(&b.requests_per_second).expect("finite rps")
    });
    runs.last().expect("at least one run").clone()
}

fn median_by_p99(runs: &mut [LoadgenReport]) -> LoadgenReport {
    runs.sort_by(|a, b| a.p99_ms.partial_cmp(&b.p99_ms).expect("finite p99"));
    runs[runs.len() / 2].clone()
}

/// One paced loadgen run: fixed aggregate offered load (`target_rps`)
/// spread evenly over `connections` connections (wrk2-style open loop,
/// latency from the scheduled send time). This is the measurement that
/// makes tail latency comparable *across* connection counts: a closed
/// loop at N connections keeps N requests in flight, so its latency
/// grows ~linearly in N by Little's law even when the server is
/// perfectly flat.
fn run_paced(
    addr: &str,
    connections: usize,
    requests: usize,
    body: &str,
    target_rps: f64,
) -> LoadgenReport {
    let opts = LoadgenOptions {
        connections,
        total_requests: requests,
        keep_alive: true,
        pipeline: 1,
        pace: Some(Duration::from_secs_f64(connections as f64 / target_rps)),
    };
    run_loadgen_with(addr, body, &opts).expect("paced loadgen run")
}

/// Server-side coalescing effect, no sockets: K requests' households
/// served as one merged fleet pass vs K single-household passes. Returns
/// (solo_us_per_request, coalesced_us_per_request).
fn coalescing_probe(reg: &mut ModelRegistry, windows: usize, coalesce: usize) -> (f64, f64) {
    let cfg = FleetConfig { batch: 64, ..FleetConfig::at_step(60) };
    let keys = [kettle()];
    let feeds: Vec<HouseholdSeries> =
        (0..coalesce).map(|i| household(40 + i as u64, windows)).collect();
    // Warm.
    let _ = serve_fleet(reg, &keys, &feeds, &cfg).unwrap();
    let reps = 256 / coalesce.max(1);
    let start = Instant::now();
    for _ in 0..reps {
        for feed in &feeds {
            let _ = std::hint::black_box(serve_fleet(reg, &keys, std::slice::from_ref(feed), &cfg));
        }
    }
    let solo = start.elapsed().as_secs_f64() * 1e6 / (reps * coalesce) as f64;
    let start = Instant::now();
    for _ in 0..reps {
        let _ = std::hint::black_box(serve_fleet(reg, &keys, &feeds, &cfg));
    }
    let merged = start.elapsed().as_secs_f64() * 1e6 / (reps * coalesce) as f64;
    (solo, merged)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // Bench executables run with the package dir as CWD; default to the
    // workspace root so a plain `cargo bench` refreshes the committed
    // baseline in place.
    let out_dir: PathBuf = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")));
    let requests = if smoke { 300 } else { 1500 };
    let windows_per_request = 1usize;

    println!(
        "bench_gateway_rps: mode={} window={WINDOW} requests={requests} windows/request={windows_per_request}",
        if smoke { "smoke" } else { "full" }
    );

    let gateway = Gateway::start(registry(), GatewayConfig::default()).expect("gateway starts");
    let addr = gateway.addr().to_string();
    let body = localize_request(&[kettle()], &[household(9, windows_per_request)], Detail::Summary)
        .to_compact();

    let sequential_single = measure(&addr, 1, requests, &body, false);
    println!(
        "sequential-single  {:7.1} req/s  p50 {:6.2} ms  p99 {:6.2} ms (1 conn/request)",
        sequential_single.requests_per_second, sequential_single.p50_ms, sequential_single.p99_ms
    );

    // Tracing overhead: the closed-loop 4-connection workload with request
    // tracing off vs on (spans recorded socket-to-kernel into the bounded
    // ring). Rounds interleave off/on and ALTERNATE which side goes first
    // (off-on, on-off, ...) so monotonic drift — allocator aging, thermal —
    // cancels instead of landing on whichever side always ran second. Runs
    // *before* the concurrency sweep: the 256-connection row fragments the
    // heap, which adds noise larger than the delta being measured. The
    // claim is that the on/off delta stays within the box's ±10% run noise.
    let trace_requests = if smoke { 300 } else { 3000 };
    let mut trace_off_runs: Vec<LoadgenReport> = Vec::new();
    let mut trace_on_runs: Vec<LoadgenReport> = Vec::new();
    let mut trace_run = |on: bool| {
        nilm_obs::trace::set_enabled(on);
        let report = run_loadgen(&addr, 4, trace_requests, &body, true).expect("trace run");
        if on {
            trace_on_runs.push(report);
        } else {
            trace_off_runs.push(report);
        }
    };
    for round in 0..6 {
        let first_on = round % 2 == 1;
        trace_run(first_on);
        trace_run(!first_on);
    }
    nilm_obs::trace::set_enabled(false);
    let trace_off = best_by_rps(&mut trace_off_runs);
    let trace_on = best_by_rps(&mut trace_on_runs);
    let trace_overhead_pct =
        (trace_off.requests_per_second / trace_on.requests_per_second.max(1e-9) - 1.0) * 100.0;
    println!(
        "trace overhead:    {:7.1} req/s off vs {:7.1} req/s on = {trace_overhead_pct:+.1}% \
         (run noise ±10%)",
        trace_off.requests_per_second, trace_on.requests_per_second
    );
    // Well below the ~26k req/s closed-loop capacity of this box, so the
    // paced rows measure queueing behaviour, not saturation collapse.
    let paced_target_rps = 8000.0;
    let paced_requests = if smoke { 512 } else { 4096 };
    // Keep-alive rows run at ~20-27k req/s, so a run needs to be a few
    // hundred ms long or a single scheduler preemption (~10 ms on this
    // 1-core box) dominates the row. 6000 requests ≈ 250 ms per run.
    let ka_requests = if smoke { 300 } else { 6000 };
    // Runs are interleaved round-robin across connection counts (round 1
    // of every row, then round 2, ...) so minute-scale ambient drift on
    // this shared box lands on every row equally instead of on whichever
    // row happened to run during the bad minute — the rows are compared
    // against each other, so they must sample the same conditions.
    let conn_counts = [1usize, 4, 16, 256];
    let mut closed_runs: Vec<Vec<LoadgenReport>> = conn_counts.iter().map(|_| Vec::new()).collect();
    let mut paced_runs: Vec<Vec<LoadgenReport>> = conn_counts.iter().map(|_| Vec::new()).collect();
    for _round in 0..5 {
        for (i, &connections) in conn_counts.iter().enumerate() {
            // The 256-connection row needs enough requests for every
            // connection to cycle a few times.
            let n = ka_requests.max(connections * 4);
            closed_runs[i].push(
                run_loadgen(&addr, connections, n, &body, true).expect("keep-alive loadgen run"),
            );
        }
    }
    for _round in 0..7 {
        for (i, &connections) in conn_counts.iter().enumerate() {
            let n = paced_requests.max(connections * 4);
            paced_runs[i].push(run_paced(&addr, connections, n, &body, paced_target_rps));
        }
    }
    let mut keepalive_reports: Vec<(usize, LoadgenReport, LoadgenReport)> = Vec::new();
    for (i, &connections) in conn_counts.iter().enumerate() {
        let r = best_by_rps(&mut closed_runs[i]);
        let p = median_by_p99(&mut paced_runs[i]);
        println!(
            "keep-alive x{connections:<3}    {:7.1} req/s  p50 {:6.2} ms  p99 {:6.2} ms  {} err  | paced@{paced_target_rps:.0}: p50 {:6.3} ms  p99 {:6.3} ms  {} err",
            r.requests_per_second, r.p50_ms, r.p99_ms, r.errors, p.p50_ms, p.p99_ms, p.errors
        );
        keepalive_reports.push((connections, r, p));
    }

    gateway.shutdown();

    // Deterministic server-side coalescing effect (no sockets involved).
    let mut reg = registry();
    let (solo_us, merged_us) = coalescing_probe(&mut reg, windows_per_request, 8);
    let coalescing_speedup = solo_us / merged_us.max(1e-9);
    println!(
        "coalescing probe: {solo_us:.1} us/request solo vs {merged_us:.1} us/request merged \
         (8 requests/pass) = {coalescing_speedup:.2}x server-side"
    );

    let concurrency_speedup = keepalive_reports
        .iter()
        .find(|(c, _, _)| *c == 4)
        .map(|(_, r, _)| r.requests_per_second / sequential_single.requests_per_second.max(1e-9))
        .unwrap_or(0.0);

    let doc = JsonValue::object([
        ("schema", JsonValue::String("bench_gateway_rps/v1".into())),
        (
            "baseline_note",
            JsonValue::String(
                "Measured on a single-core container: keep-alive connection counts cannot add \
                 CPU, so the headline win is gateway-vs-naive-client (sequential_single issues \
                 one connection per request). The gateway front-end is an epoll reactor (one \
                 event-loop thread owning every connection), so connection counts cost no \
                 threads: rps must hold from 4 through 16 connections and the 256-connection \
                 row must complete with zero errors. Each row carries two latency measures. \
                 The top-level p50/p99 are CLOSED-LOOP (each connection fires its next request \
                 only after the previous response): they grow ~linearly with connections by \
                 Little's law (N in flight over a fixed-capacity server) and are NOT \
                 comparable across rows — they serve the rps/throughput criterion only. The \
                 'paced' sub-object is the cross-row tail-latency measure: a fixed aggregate \
                 offered load (target_rps) spread evenly over the row's connections, wrk2-style \
                 open loop with latency counted from the scheduled send time (coordinated- \
                 omission corrected). The flat-tail criterion is paced: p99 at 16 connections \
                 must stay within 2x the 4-connection paced p99. The coalescing section \
                 isolates the batcher's server-side saving (one merged fleet pass for 8 \
                 requests vs 8 solo passes) without socket or scheduler noise; on multi-core \
                 hosts the worker pool additionally scales decode/validate with cores. \
                 Throughput rows are best-of-5 runs (uncontended capacity — the max is the run \
                 the scheduler stole least from); paced latency is the median-of-7 by p99. \
                 Run-to-run noise on this box is ±10%."
                    .into(),
            ),
        ),
        ("mode", JsonValue::String(if smoke { "smoke" } else { "full" }.into())),
        ("window", JsonValue::Number(WINDOW as f64)),
        ("requests", JsonValue::Number(requests as f64)),
        ("windows_per_request", JsonValue::Number(windows_per_request as f64)),
        ("sequential_single", report_json(&sequential_single)),
        (
            "keep_alive",
            JsonValue::Array(
                keepalive_reports
                    .iter()
                    .map(|(_, r, p)| {
                        let JsonValue::Object(mut fields) = report_json(r) else { unreachable!() };
                        fields.insert(
                            "paced".into(),
                            JsonValue::object([
                                ("target_rps", JsonValue::Number(paced_target_rps)),
                                ("p50_ms", JsonValue::Number(p.p50_ms)),
                                ("p99_ms", JsonValue::Number(p.p99_ms)),
                                ("errors", JsonValue::Number(p.errors as f64)),
                            ]),
                        );
                        JsonValue::Object(fields)
                    })
                    .collect(),
            ),
        ),
        (
            "trace_overhead",
            JsonValue::object([
                ("connections", JsonValue::Number(4.0)),
                ("requests", JsonValue::Number(trace_requests as f64)),
                ("off", report_json(&trace_off)),
                ("on", report_json(&trace_on)),
                ("overhead_pct", JsonValue::Number(trace_overhead_pct)),
                (
                    "note",
                    JsonValue::String(
                        "Closed-loop rps with NILM_TRACE off vs on (spans recorded for every \
                         request, socket to kernel). Best of 6 interleaved rounds with the \
                         off/on order alternating each round so drift cancels, measured \
                         before the concurrency sweep fragments the heap; the delta must \
                         sit within this box's ±10% run-to-run noise."
                            .into(),
                    ),
                ),
            ]),
        ),
        (
            "coalescing",
            JsonValue::object([
                ("requests_per_pass", JsonValue::Number(8.0)),
                ("solo_us_per_request", JsonValue::Number(solo_us)),
                ("merged_us_per_request", JsonValue::Number(merged_us)),
                ("speedup", JsonValue::Number(coalescing_speedup)),
            ]),
        ),
        ("concurrency_speedup_vs_single_at_4", JsonValue::Number(concurrency_speedup)),
    ]);
    let text = doc.to_pretty();
    validate(&text).expect("bench emitted invalid JSON");
    std::fs::create_dir_all(&out_dir).expect("cannot create output directory");
    let path = out_dir.join("BENCH_gateway.json");
    std::fs::write(&path, &text).expect("cannot write benchmark artifact");
    validate(&std::fs::read_to_string(&path).expect("re-read artifact"))
        .expect("benchmark artifact on disk is invalid JSON");
    println!("wrote {} (validated)", path.display());
}
