//! Fig. 10: soft-label generation and soft-target training.

use criterion::{criterion_group, criterion_main, Criterion};
use nilm_bench::{bench_case, bench_model};
use nilm_models::baselines::BaselineKind;
use nilm_models::{train_soft, TrainConfig};

fn bench(c: &mut Criterion) {
    let case = bench_case();
    let mut model = bench_model(&case);
    let mut g = c.benchmark_group("fig10_soft_labels");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.bench_function("generate_soft_labels", |b| {
        b.iter(|| std::hint::black_box(model.soft_labels(&case.train, 16).len()))
    });
    let soft = model.soft_labels(&case.train, 16);
    let cfg = TrainConfig { epochs: 1, batch_size: 16, lr: 1e-3, clip: 0.0, seed: 1 };
    g.bench_function("train_on_soft_labels", |b| {
        b.iter(|| {
            let mut rng = nilm_tensor::init::rng(2);
            let mut m = BaselineKind::TpNilm.build(&mut rng, 16);
            std::hint::black_box(train_soft(m.as_mut(), &case.train, &soft, &cfg).final_loss())
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
