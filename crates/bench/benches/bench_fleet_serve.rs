//! Fleet-serving throughput: `camal::fleet::serve_fleet` fanning a
//! three-appliance model zoo over simulated households, reported as model
//! inferences (windows × appliances) per second. Parameterized by worker
//! shard count, so the bench doubles as a scaling check for the household
//! sharding, and contrasted against serving the same zoo as three
//! independent `camal::stream::serve` passes (the redundant-preprocessing
//! baseline the shared pass replaces).

use camal::fleet::{serve_fleet, FleetConfig};
use camal::registry::{ModelKey, ModelRegistry};
use camal::stream::{serve, HouseholdSeries, StreamConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nilm_data::prelude::*;

fn fleet_keys() -> Vec<ModelKey> {
    vec![
        ModelKey::new(DatasetId::Refit, ApplianceKind::Kettle),
        ModelKey::new(DatasetId::Refit, ApplianceKind::Microwave),
        ModelKey::new(DatasetId::UkDale, ApplianceKind::Dishwasher),
    ]
}

fn fleet_registry(window: usize) -> ModelRegistry {
    let mut registry = ModelRegistry::unbounded();
    for (i, key) in fleet_keys().into_iter().enumerate() {
        registry.insert(key, nilm_bench::bench_fleet_model(window, 11 + i as u64));
    }
    registry
}

fn fleet_feeds(n: usize, days: usize) -> Vec<HouseholdSeries> {
    generate_fleet_scenario(&[DatasetId::Refit, DatasetId::UkDale], n.div_ceil(2), days, 23)
        .iter()
        .take(n)
        .map(|fh| HouseholdSeries { id: fh.label(), series: fh.house.aggregate.clone() })
        .collect()
}

fn bench(c: &mut Criterion) {
    let window = nilm_bench::bench_scale().window;
    let mut registry = fleet_registry(window);
    let keys = registry.keys();
    let households = fleet_feeds(6, 2);
    let windows_per_feed: usize = households.iter().map(|h| h.series.len() / window).sum();
    let inferences = (windows_per_feed * keys.len()) as u64;

    let mut g = c.benchmark_group("fleet_serve");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.throughput(Throughput::Elements(inferences));
    for threads in [1usize, 2, 4] {
        let cfg = FleetConfig { threads, ..FleetConfig::at_step(60) };
        g.bench_with_input(BenchmarkId::new("shared_pass", threads), &cfg, |b, cfg| {
            b.iter(|| {
                let out = serve_fleet(&mut registry, &keys, &households, cfg).unwrap();
                std::hint::black_box(out.summary.inferences)
            })
        });
    }
    // Baseline: N independent single-appliance passes, re-preprocessing and
    // re-batching every feed once per appliance.
    g.bench_function("independent_serves", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &key in &keys {
                let model = registry.get_mut(key).unwrap();
                let cfg = StreamConfig {
                    window,
                    step_s: 60,
                    max_ffill_s: 180,
                    batch: 64,
                    appliance: Some(key.appliance),
                    avg_power_w: 1000.0,
                };
                for tl in serve(model, &households, &cfg) {
                    total += tl.windows_scored;
                }
            }
            std::hint::black_box(total)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
