//! Fig. 7(a): one training epoch per method.

use criterion::{criterion_group, criterion_main, Criterion};
use nilm_bench::bench_case;
use nilm_models::baselines::BaselineKind;
use nilm_models::{train_strong, train_weak_mil, TrainConfig};

fn bench(c: &mut Criterion) {
    let case = bench_case();
    let cfg = TrainConfig { epochs: 1, batch_size: 16, lr: 1e-3, clip: 0.0, seed: 1 };
    let mut g = c.benchmark_group("fig7a_one_epoch");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_secs(1));
    for &kind in BaselineKind::all() {
        g.bench_function(kind.name().replace(' ', "_"), |b| {
            b.iter(|| {
                let mut rng = nilm_tensor::init::rng(1);
                let mut m = kind.build(&mut rng, 16);
                let stats = if kind.is_weakly_supervised() {
                    train_weak_mil(m.as_mut(), &case.train, &cfg)
                } else {
                    train_strong(m.as_mut(), &case.train, &cfg)
                };
                std::hint::black_box(stats.final_loss())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
