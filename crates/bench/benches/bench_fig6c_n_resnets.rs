//! Fig. 6(c): inference cost as the ensemble grows.

use camal::CamalModel;
use criterion::{criterion_group, criterion_main, Criterion};
use nilm_bench::{bench_camal_cfg, bench_case};

fn bench(c: &mut Criterion) {
    let case = bench_case();
    let mut g = c.benchmark_group("fig6c_localize_by_ensemble_size");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_secs(1));
    for n in [1usize, 2] {
        let mut cfg = bench_camal_cfg();
        cfg.kernels = vec![5, 9];
        cfg.n_ensemble = n;
        let mut model = CamalModel::train(&cfg, &case.train, &case.val, 2);
        g.bench_function(format!("n{n}"), |b| {
            b.iter(|| std::hint::black_box(model.localize_set(&case.test, 16).status.len()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
