//! Table II: parameter counting of all paper-scale models.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    c.bench_function("table2_param_counts", |b| {
        b.iter(|| std::hint::black_box(nilm_eval::complexity::table2_rows(0).len()))
    });
}

criterion_group!(name = benches; config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1)); targets = bench);
criterion_main!(benches);
