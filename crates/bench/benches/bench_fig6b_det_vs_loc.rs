//! Fig. 6(b): joint detection + localization scoring of a trained model.

use criterion::{criterion_group, criterion_main, Criterion};
use nilm_bench::{bench_case, bench_model};

fn bench(c: &mut Criterion) {
    let case = bench_case();
    let mut model = bench_model(&case);
    c.bench_function("fig6b_detect_and_localize", |b| {
        b.iter(|| {
            let r = model.evaluate(&case.test, 2000.0, 16);
            std::hint::black_box((r.detection.balanced_accuracy, r.localization.f1))
        })
    });
}

criterion_group!(name = benches; config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1)); targets = bench);
criterion_main!(benches);
