//! Fig. 9: the cost-model arithmetic.

use criterion::{criterion_group, criterion_main, Criterion};
use nilm_eval::cost::{strong_storage_tb_per_year, weak_storage_tb_per_year, StorageModel};

fn bench(c: &mut Criterion) {
    let s = StorageModel::default();
    c.bench_function("fig9_cost_model", |b| {
        b.iter(|| {
            let strong = strong_storage_tb_per_year(&s, 1_000_000, 5, 60);
            let weak = weak_storage_tb_per_year(&s, 1_000_000, 5, 60);
            std::hint::black_box(strong / weak)
        })
    });
}

criterion_group!(name = benches; config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1)); targets = bench);
criterion_main!(benches);
