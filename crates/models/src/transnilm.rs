//! TransNILM (Cheng et al., paper ref. \[31\]): a transformer-based extension
//! of the temporal-pooling architecture. A convolutional embedding
//! downsamples the sequence, sinusoidal positions are added, transformer
//! encoder blocks mix information globally, and a temporal-pooling decoder
//! restores per-timestep logits.

use crate::unet_util::{match_len, match_len_backward};
use nilm_tensor::prelude::*;
use rand::Rng;

/// Width configuration for TransNILM.
#[derive(Clone, Copy, Debug)]
pub struct TransNilmConfig {
    /// Model (embedding) width.
    pub d_model: usize,
    /// Attention heads.
    pub heads: usize,
    /// Feed-forward hidden width.
    pub d_ff: usize,
    /// Number of transformer encoder blocks.
    pub layers: usize,
    /// Temporal downsampling factor before attention (keeps O(t²) in check).
    pub downsample: usize,
}

impl TransNilmConfig {
    /// Paper-scale configuration (Table II reports TransNILM as by far the
    /// largest baseline; ours preserves that ordering).
    pub fn paper() -> Self {
        TransNilmConfig { d_model: 256, heads: 8, d_ff: 1024, layers: 3, downsample: 4 }
    }

    /// Width-reduced configuration for laptop-scale experiments.
    pub fn scaled(div: usize) -> Self {
        let d = div.max(1);
        TransNilmConfig {
            d_model: (256 / d).max(8),
            heads: if 256 / d >= 32 { 4 } else { 2 },
            d_ff: (1024 / d).max(16),
            layers: 2,
            downsample: 4,
        }
    }
}

/// TransNILM producing `[b, 1, t]` per-timestep logits.
pub struct TransNilm {
    embed: Sequential,
    pe: PositionalEncoding,
    blocks: Vec<TransformerEncoderLayer>,
    up: Upsample1d,
    head: TimeDistributed,
    input_len: usize,
    up_len: usize,
}

impl TransNilm {
    /// Builds TransNILM for univariate input.
    pub fn new(rng: &mut impl Rng, cfg: TransNilmConfig) -> Self {
        assert!(cfg.d_model % cfg.heads == 0, "d_model must divide heads");
        let embed = Sequential::new()
            .push(Conv1d::new(rng, 1, cfg.d_model, 3, Padding::Same))
            .push(ReLU::default())
            .push(MaxPool1d::new(cfg.downsample));
        let blocks = (0..cfg.layers)
            .map(|_| TransformerEncoderLayer::new(rng, cfg.d_model, cfg.heads, cfg.d_ff))
            .collect();
        TransNilm {
            embed,
            pe: PositionalEncoding,
            blocks,
            up: Upsample1d::new(cfg.downsample, UpsampleMode::Linear),
            head: TimeDistributed::new(rng, cfg.d_model, 1),
            input_len: 0,
            up_len: 0,
        }
    }
}

impl Layer for TransNilm {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        self.input_len = x.dims3().2;
        let mut h = self.embed.forward(x, mode);
        h = self.pe.forward(&h, mode);
        for block in &mut self.blocks {
            h = block.forward(&h, mode);
        }
        let up = self.up.forward(&h, mode);
        self.up_len = up.dims3().2;
        let up = match_len(&up, self.input_len);
        self.head.forward(&up, mode)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let g = self.head.backward(grad);
        let g = match_len_backward(&g, self.up_len);
        let mut g = self.up.backward(&g);
        for block in self.blocks.iter_mut().rev() {
            g = block.backward(&g);
        }
        let g = self.pe.backward(&g);
        self.embed.backward(&g)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.embed.visit_params(f);
        for block in &mut self.blocks {
            block.visit_params(f);
        }
        self.head.visit_params(f);
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.embed.visit_state(f);
        for block in &mut self.blocks {
            block.visit_state(f);
        }
        self.head.visit_state(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilm_tensor::init::{randn_tensor, rng};

    fn tiny() -> TransNilmConfig {
        TransNilmConfig { d_model: 8, heads: 2, d_ff: 16, layers: 1, downsample: 4 }
    }

    #[test]
    fn shapes_preserved() {
        let mut r = rng(0);
        let mut m = TransNilm::new(&mut r, tiny());
        let x = randn_tensor(&mut r, &[2, 1, 32], 1.0);
        let y = m.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 1, 32]);
    }

    #[test]
    fn non_multiple_length_survives() {
        let mut r = rng(1);
        let mut m = TransNilm::new(&mut r, tiny());
        let x = randn_tensor(&mut r, &[1, 1, 34], 1.0);
        let y = m.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[1, 1, 34]);
        let gx = m.backward(&Tensor::full(&[1, 1, 34], 0.1));
        assert_eq!(gx.shape(), &[1, 1, 34]);
        assert!(gx.all_finite());
    }

    #[test]
    fn is_the_largest_paper_baseline() {
        // Table II ordering: TransNILM ≫ the others.
        let mut r = rng(2);
        let mut trans = TransNilm::new(&mut r, TransNilmConfig::paper());
        let mut unet = crate::unet::UnetNilm::new(&mut r, crate::unet::UnetConfig::paper());
        let mut crnn = crate::crnn::Crnn::new(&mut r, crate::crnn::CrnnConfig::paper());
        let nt = trans.num_params();
        assert!(nt > unet.num_params());
        assert!(nt > crnn.num_params());
    }
}
