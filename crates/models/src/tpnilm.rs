//! TPNILM (Massidda et al., paper ref. \[26\]): a convolutional encoder
//! followed by a *temporal pooling* module — parallel average poolings at
//! multiple scales, projected by 1x1 convolutions and upsampled back — whose
//! outputs are concatenated with the encoder features and decoded into
//! per-timestep logits.

use crate::unet_util::{concat_channels, match_len, match_len_backward, split_channels};
use nilm_tensor::prelude::*;
use rand::Rng;

/// Width configuration for TPNILM.
#[derive(Clone, Copy, Debug)]
pub struct TpNilmConfig {
    /// Channels of the two encoder stages.
    pub enc_channels: [usize; 2],
    /// Channels of each temporal-pooling branch projection.
    pub pool_channels: usize,
    /// Temporal pooling scales (window sizes on the encoded sequence).
    pub scales: [usize; 4],
}

impl TpNilmConfig {
    /// Paper-scale configuration (Table II reports ~328K parameters).
    pub fn paper() -> Self {
        TpNilmConfig { enc_channels: [64, 128], pool_channels: 32, scales: [2, 4, 8, 16] }
    }

    /// Width-reduced configuration for laptop-scale experiments.
    pub fn scaled(div: usize) -> Self {
        let d = div.max(1);
        TpNilmConfig {
            enc_channels: [(64 / d).max(4), (128 / d).max(8)],
            pool_channels: (32 / d).max(4),
            scales: [2, 4, 8, 16],
        }
    }
}

/// One temporal-pooling branch: AvgPool(s) → 1x1 conv → ReLU → Upsample(s),
/// length-matched back to the encoder sequence length.
struct PoolBranch {
    pool: AvgPool1d,
    proj: Conv1d,
    relu: ReLU,
    up: Upsample1d,
    /// Encoder-sequence length fed into this branch (match target).
    src_len: usize,
    /// Length after upsampling, before match_len.
    up_len: usize,
}

impl PoolBranch {
    fn new(rng: &mut impl Rng, scale: usize, in_c: usize, out_c: usize) -> Self {
        PoolBranch {
            pool: AvgPool1d::new(scale),
            proj: Conv1d::new(rng, in_c, out_c, 1, Padding::Same),
            relu: ReLU::default(),
            up: Upsample1d::new(scale, UpsampleMode::Nearest),
            src_len: 0,
            up_len: 0,
        }
    }

    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        self.src_len = x.dims3().2;
        let p = self.pool.forward(x, mode);
        let p = self.proj.forward(&p, mode);
        let p = self.relu.forward(&p, mode);
        let up = self.up.forward(&p, mode);
        self.up_len = up.dims3().2;
        match_len(&up, self.src_len)
    }

    fn backward(&mut self, g: &Tensor) -> Tensor {
        let g = match_len_backward(g, self.up_len);
        let g = self.up.backward(&g);
        let g = self.relu.backward(&g);
        let g = self.proj.backward(&g);
        self.pool.backward(&g)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.proj.visit_params(f);
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.proj.visit_state(f);
    }
}

/// TPNILM producing `[b, 1, t]` per-timestep logits.
pub struct TpNilm {
    enc: Sequential,
    branches: Vec<PoolBranch>,
    enc_out_c: usize,
    pool_channels: usize,
    decoder: Sequential,
    up_final: Upsample1d,
    head: TimeDistributed,
    input_len: usize,
    up_final_len: usize,
}

impl TpNilm {
    /// Builds TPNILM for univariate input. Inputs shorter than 64 samples
    /// are rejected (the deepest pooling scale needs them).
    pub fn new(rng: &mut impl Rng, cfg: TpNilmConfig) -> Self {
        let [c1, c2] = cfg.enc_channels;
        let enc = Sequential::new()
            .push(Conv1d::new(rng, 1, c1, 3, Padding::Same))
            .push(BatchNorm1d::new(c1))
            .push(ReLU::default())
            .push(MaxPool1d::new(2))
            .push(Conv1d::new(rng, c1, c2, 3, Padding::Same))
            .push(BatchNorm1d::new(c2))
            .push(ReLU::default())
            .push(MaxPool1d::new(2));
        let branches = cfg
            .scales
            .iter()
            .map(|&s| PoolBranch::new(rng, s, c2, cfg.pool_channels))
            .collect::<Vec<_>>();
        let cat_c = c2 + cfg.scales.len() * cfg.pool_channels;
        let decoder = Sequential::new()
            .push(Conv1d::new(rng, cat_c, c2, 1, Padding::Same))
            .push(ReLU::default());
        TpNilm {
            enc,
            branches,
            enc_out_c: c2,
            pool_channels: cfg.pool_channels,
            decoder,
            up_final: Upsample1d::new(4, UpsampleMode::Linear),
            head: TimeDistributed::new(rng, c2, 1),
            input_len: 0,
            up_final_len: 0,
        }
    }
}

impl Layer for TpNilm {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        self.input_len = x.dims3().2;
        let f = self.enc.forward(x, mode);
        let mut cat = f.clone();
        for br in &mut self.branches {
            let b = br.forward(&f, mode);
            cat = concat_channels(&cat, &b);
        }
        let d = self.decoder.forward(&cat, mode);
        let up = self.up_final.forward(&d, mode);
        self.up_final_len = up.dims3().2;
        let up = match_len(&up, self.input_len);
        self.head.forward(&up, mode)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let g = self.head.backward(grad);
        let g = match_len_backward(&g, self.up_final_len);
        let g = self.up_final.backward(&g);
        let g = self.decoder.backward(&g);
        // Split the concatenation gradient: encoder features first, then one
        // block of pool_channels per branch, in forward order.
        let (mut g_f, mut rest) = split_channels(&g, self.enc_out_c);
        for br in &mut self.branches {
            let (g_br, tail) = split_channels(&rest, self.pool_channels);
            g_f.add_assign(&br.backward(&g_br));
            rest = tail;
        }
        assert_eq!(rest.dims3().1, 0, "unconsumed concat channels");
        self.enc.backward(&g_f)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.enc.visit_params(f);
        for br in &mut self.branches {
            br.visit_params(f);
        }
        self.decoder.visit_params(f);
        self.head.visit_params(f);
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.enc.visit_state(f);
        for br in &mut self.branches {
            br.visit_state(f);
        }
        self.decoder.visit_state(f);
        self.head.visit_state(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilm_tensor::init::{randn_tensor, rng};

    fn tiny() -> TpNilmConfig {
        TpNilmConfig { enc_channels: [4, 8], pool_channels: 4, scales: [2, 4, 8, 16] }
    }

    #[test]
    fn shapes_preserved() {
        let mut r = rng(0);
        let mut m = TpNilm::new(&mut r, tiny());
        let x = randn_tensor(&mut r, &[2, 1, 128], 1.0);
        let y = m.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 1, 128]);
    }

    #[test]
    fn odd_length_input_survives() {
        let mut r = rng(3);
        let mut m = TpNilm::new(&mut r, tiny());
        let x = randn_tensor(&mut r, &[1, 1, 130], 1.0);
        let y = m.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[1, 1, 130]);
        let gx = m.backward(&Tensor::full(&[1, 1, 130], 0.1));
        assert_eq!(gx.shape(), &[1, 1, 130]);
    }

    #[test]
    fn backward_runs() {
        let mut r = rng(1);
        let mut m = TpNilm::new(&mut r, tiny());
        let x = randn_tensor(&mut r, &[1, 1, 128], 1.0);
        let y = m.forward(&x, Mode::Train);
        let (_, g) = nilm_tensor::loss::bce_with_logits(&y, &Tensor::zeros(&[1, 1, 128]));
        let gx = m.backward(&g);
        assert_eq!(gx.shape(), &[1, 1, 128]);
        assert!(gx.all_finite());
    }

    #[test]
    fn paper_scale_param_count() {
        let mut r = rng(2);
        let mut m = TpNilm::new(&mut r, TpNilmConfig::paper());
        let n = m.num_params();
        // Table II reports 328K; accept the right order of magnitude.
        assert!((50_000..600_000).contains(&n), "param count {n}");
    }
}
