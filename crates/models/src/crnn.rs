//! The CRNN baseline of Tanoni et al. (paper ref. \[5\]): convolutional
//! feature extractor + bidirectional GRU + per-timestep sigmoid head.
//!
//! Two training regimes exist (paper §V-C):
//! - **CRNN (strong)**: per-timestep BCE against the appliance status.
//! - **CRNN Weak**: Multiple-Instance Learning — the per-timestep logits are
//!   pooled into one window-level logit (log-sum-exp, a smooth max) and
//!   trained against the weak label.

use nilm_tensor::prelude::*;
use rand::Rng;

/// Width configuration for the CRNN.
#[derive(Clone, Copy, Debug)]
pub struct CrnnConfig {
    /// Channels of the three conv blocks.
    pub conv_channels: [usize; 3],
    /// Hidden units per GRU direction.
    pub gru_hidden: usize,
}

impl CrnnConfig {
    /// Paper-scale configuration (~1M parameters, Table II).
    pub fn paper() -> Self {
        CrnnConfig { conv_channels: [64, 128, 256], gru_hidden: 256 }
    }

    /// Width-reduced configuration for laptop-scale experiments.
    pub fn scaled(div: usize) -> Self {
        let d = div.max(1);
        CrnnConfig {
            conv_channels: [(64 / d).max(4), (64 / d).max(4), (128 / d).max(8)],
            gru_hidden: (128 / d).max(8),
        }
    }
}

/// CRNN producing per-timestep logits `[b, 1, t]`.
pub struct Crnn {
    trunk: Sequential,
    head: TimeDistributed,
}

impl Crnn {
    /// Builds the CRNN for univariate input.
    pub fn new(rng: &mut impl Rng, cfg: CrnnConfig) -> Self {
        let [c1, c2, c3] = cfg.conv_channels;
        let trunk = Sequential::new()
            .push(Conv1d::new(rng, 1, c1, 5, Padding::Same))
            .push(BatchNorm1d::new(c1))
            .push(ReLU::default())
            .push(Conv1d::new(rng, c1, c2, 5, Padding::Same))
            .push(BatchNorm1d::new(c2))
            .push(ReLU::default())
            .push(Conv1d::new(rng, c2, c3, 5, Padding::Same))
            .push(BatchNorm1d::new(c3))
            .push(ReLU::default())
            .push(BiGru::new(rng, c3, cfg.gru_hidden));
        let head = TimeDistributed::new(rng, 2 * cfg.gru_hidden, 1);
        Crnn { trunk, head }
    }
}

impl Layer for Crnn {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let h = self.trunk.forward(x, mode);
        self.head.forward(&h, mode)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let g = self.head.backward(grad);
        self.trunk.backward(&g)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.trunk.visit_params(f);
        self.head.visit_params(f);
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.trunk.visit_state(f);
        self.head.visit_state(f);
    }
}

/// Log-sum-exp pooling `[b, 1, t] -> [b, 1]`: a smooth maximum over time.
/// With sharpness `r`, `pool = (1/r) * log(mean_t exp(r * z_t))`; `r = 1`
/// recovers the standard LSE-mean and larger `r` approaches hard max.
pub struct LsePool {
    r: f32,
    /// Softmax-like weights cached for backward: `[b, t]`.
    weights: Option<Tensor>,
}

impl LsePool {
    /// Creates a pool with sharpness `r > 0`.
    pub fn new(r: f32) -> Self {
        assert!(r > 0.0);
        LsePool { r, weights: None }
    }
}

impl Layer for LsePool {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let (b, c, t) = x.dims3();
        assert_eq!(c, 1, "LsePool expects single-channel logits");
        let mut out = Tensor::zeros(&[b, 1]);
        let mut weights = Tensor::zeros(&[b, t]);
        for bi in 0..b {
            let row = x.row(bi, 0);
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for &v in row {
                sum += ((v - m) * self.r).exp();
            }
            // pool = m + (1/r) ln(sum / t)
            *out.at2_mut(bi, 0) = m + (sum / t as f32).ln() / self.r;
            // d pool / d z_i = exp(r (z_i - m)) / sum
            let wr = &mut weights.data_mut()[bi * t..(bi + 1) * t];
            for (w, &v) in wr.iter_mut().zip(row) {
                *w = ((v - m) * self.r).exp() / sum;
            }
        }
        self.weights = Some(weights);
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let weights = self.weights.as_ref().expect("LsePool backward before forward");
        let (b, t) = weights.dims2();
        let mut dx = Tensor::zeros(&[b, 1, t]);
        for bi in 0..b {
            let g = grad.at2(bi, 0);
            let wr = &weights.data()[bi * t..(bi + 1) * t];
            let dxr = dx.row_mut(bi, 0);
            for (d, &w) in dxr.iter_mut().zip(wr) {
                *d = g * w;
            }
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilm_tensor::gradcheck::assert_grads_close;
    use nilm_tensor::init::{randn_tensor, rng, uniform_tensor};

    fn tiny() -> CrnnConfig {
        CrnnConfig { conv_channels: [4, 4, 8], gru_hidden: 4 }
    }

    #[test]
    fn crnn_shapes() {
        let mut r = rng(0);
        let mut m = Crnn::new(&mut r, tiny());
        let x = randn_tensor(&mut r, &[2, 1, 16], 1.0);
        let y = m.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 1, 16]);
        let gx = m.backward(&Tensor::full(&[2, 1, 16], 0.1));
        assert_eq!(gx.shape(), &[2, 1, 16]);
        assert!(gx.all_finite());
    }

    #[test]
    fn lse_pool_bounds_max() {
        // LSE-mean is <= max and >= mean.
        let mut pool = LsePool::new(1.0);
        let x = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0], &[1, 1, 4]);
        let y = pool.forward(&x, Mode::Eval);
        let v = y.at2(0, 0);
        assert!(v <= 3.0 && v >= 1.5, "{v}");
    }

    #[test]
    fn lse_pool_sharp_approaches_max() {
        let mut pool = LsePool::new(20.0);
        let x = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0], &[1, 1, 4]);
        let y = pool.forward(&x, Mode::Eval);
        assert!((y.at2(0, 0) - 3.0).abs() < 0.1);
    }

    #[test]
    fn lse_pool_gradients() {
        let mut r = rng(1);
        let mut pool = LsePool::new(2.0);
        let x = randn_tensor(&mut r, &[2, 1, 6], 1.0);
        let mask = uniform_tensor(&mut r, &[2, 1], -1.0, 1.0);
        assert_grads_close(&mut pool, &x, &mask, 1e-2, 2e-2, Mode::Eval);
    }

    #[test]
    fn lse_pool_weights_sum_to_one() {
        let mut pool = LsePool::new(3.0);
        let x = Tensor::from_vec(vec![-1.0, 4.0, 0.5], &[1, 1, 3]);
        let _ = pool.forward(&x, Mode::Eval);
        let g = pool.backward(&Tensor::full(&[1, 1], 1.0));
        let s: f32 = g.data().iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
    }

    #[test]
    fn paper_config_is_around_a_million_params() {
        let mut r = rng(2);
        let mut m = Crnn::new(&mut r, CrnnConfig::paper());
        let n = m.num_params();
        assert!((500_000..1_600_000).contains(&n), "param count {n}");
    }
}
