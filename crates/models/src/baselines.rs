//! Registry of the comparison baselines (paper §V-C), so experiment code can
//! construct any of them uniformly.

use crate::bigru::{BiGruConfig, BiGruModel};
use crate::crnn::{Crnn, CrnnConfig};
use crate::tpnilm::{TpNilm, TpNilmConfig};
use crate::transnilm::{TransNilm, TransNilmConfig};
use crate::unet::{UnetConfig, UnetNilm};
use nilm_tensor::layer::Layer;
use rand::Rng;

/// The six baselines CamAL is compared against.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BaselineKind {
    /// CRNN trained with strong labels.
    CrnnStrong,
    /// CRNN trained with weak labels only (MIL).
    CrnnWeak,
    /// BiGRU (conv + bidirectional GRU).
    BiGru,
    /// UNet-NILM encoder–decoder.
    UnetNilm,
    /// TPNILM temporal pooling network.
    TpNilm,
    /// TransNILM transformer.
    TransNilm,
}

impl BaselineKind {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            BaselineKind::CrnnStrong => "CRNN",
            BaselineKind::CrnnWeak => "CRNN Weak",
            BaselineKind::BiGru => "BiGRU",
            BaselineKind::UnetNilm => "Unet-NILM",
            BaselineKind::TpNilm => "TPNILM",
            BaselineKind::TransNilm => "TransNILM",
        }
    }

    /// True when this baseline trains from weak (one-per-window) labels.
    pub fn is_weakly_supervised(self) -> bool {
        matches!(self, BaselineKind::CrnnWeak)
    }

    /// All baselines, in the order the paper lists them.
    pub fn all() -> &'static [BaselineKind] {
        &[
            BaselineKind::CrnnStrong,
            BaselineKind::CrnnWeak,
            BaselineKind::BiGru,
            BaselineKind::UnetNilm,
            BaselineKind::TpNilm,
            BaselineKind::TransNilm,
        ]
    }

    /// Builds the model at a width divisor (1 = paper scale; larger divisors
    /// shrink channel counts for laptop-scale experiments).
    pub fn build(self, rng: &mut impl Rng, width_div: usize) -> Box<dyn Layer> {
        match self {
            BaselineKind::CrnnStrong | BaselineKind::CrnnWeak => {
                let cfg = if width_div <= 1 {
                    CrnnConfig::paper()
                } else {
                    CrnnConfig::scaled(width_div)
                };
                Box::new(Crnn::new(rng, cfg))
            }
            BaselineKind::BiGru => {
                let cfg = if width_div <= 1 {
                    BiGruConfig::paper()
                } else {
                    BiGruConfig::scaled(width_div)
                };
                Box::new(BiGruModel::new(rng, cfg))
            }
            BaselineKind::UnetNilm => {
                let cfg = if width_div <= 1 {
                    UnetConfig::paper()
                } else {
                    UnetConfig::scaled(width_div)
                };
                Box::new(UnetNilm::new(rng, cfg))
            }
            BaselineKind::TpNilm => {
                let cfg = if width_div <= 1 {
                    TpNilmConfig::paper()
                } else {
                    TpNilmConfig::scaled(width_div)
                };
                Box::new(TpNilm::new(rng, cfg))
            }
            BaselineKind::TransNilm => {
                let cfg = if width_div <= 1 {
                    TransNilmConfig::paper()
                } else {
                    TransNilmConfig::scaled(width_div)
                };
                Box::new(TransNilm::new(rng, cfg))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilm_tensor::init::{randn_tensor, rng};
    use nilm_tensor::layer::Mode;

    #[test]
    fn all_baselines_build_and_run_at_reduced_width() {
        let mut r = rng(0);
        let x = randn_tensor(&mut r, &[1, 1, 64], 1.0);
        for &kind in BaselineKind::all() {
            let mut model = kind.build(&mut r, 16);
            let y = model.forward(&x, Mode::Eval);
            assert_eq!(y.shape(), &[1, 1, 64], "{}", kind.name());
            assert!(y.all_finite(), "{}", kind.name());
        }
    }

    #[test]
    fn weak_flag_only_for_crnn_weak() {
        for &kind in BaselineKind::all() {
            assert_eq!(kind.is_weakly_supervised(), kind == BaselineKind::CrnnWeak);
        }
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::BTreeSet<&str> =
            BaselineKind::all().iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), BaselineKind::all().len());
    }
}
