//! # nilm-models
//!
//! The NILM model zoo of the CamAL paper: the CamAL [`resnet::ResNet`]
//! detector (with CAM support), and the six comparison baselines of §V-C —
//! CRNN (strong and weak/MIL), BiGRU, UNet-NILM, TPNILM and TransNILM — all
//! producing per-timestep activation logits on `[batch, 1, time]` input,
//! plus the shared training loops (strong, weak-MIL, and soft-label).

pub mod baselines;
pub mod bigru;
pub mod co;
pub mod crnn;
pub mod detector;
pub mod inception;
pub mod resnet;
pub mod tpnilm;
pub mod train;
pub mod transnilm;
pub mod unet;
pub(crate) mod unet_util;

pub use baselines::BaselineKind;
pub use co::{CoDisaggregator, LibraryEntry};
pub use detector::{build_detector, cam_from_features, Backbone, Detector};
pub use inception::{InceptionConfig, InceptionTime};
pub use resnet::{ResNet, ResNetConfig};
pub use train::{
    predict_proba_frames, proba_to_status, train_soft, train_strong, train_weak_mil, TrainConfig,
    TrainStats,
};
