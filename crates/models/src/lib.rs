//! # nilm-models
//!
//! The NILM model zoo of the CamAL paper: the CamAL [`resnet::ResNet`]
//! detector (with CAM support), and the six comparison baselines of §V-C —
//! CRNN (strong and weak/MIL), BiGRU, UNet-NILM, TPNILM and TransNILM — all
//! producing per-timestep activation logits on `[batch, 1, time]` input,
//! plus the shared training loops (strong, weak-MIL, and soft-label).
//!
//! ## Example
//!
//! Build an (untrained) CAM-capable detector and pull a Class Activation Map
//! out of it — the core mechanism CamAL's localization relies on:
//!
//! ```
//! use nilm_models::{build_from_spec, BackboneSpec};
//! use nilm_tensor::layer::Mode;
//! use nilm_tensor::tensor::Tensor;
//!
//! let mut rng = nilm_tensor::init::rng(0);
//! let spec = BackboneSpec::ResNet { kernel: 5, width_div: 16 };
//! let mut detector = build_from_spec(&mut rng, spec);
//! let x = Tensor::zeros(&[2, 1, 64]); // [batch, channels, time]
//! let (_features, logits) = detector.forward_features(&x, Mode::Eval);
//! assert_eq!(logits.shape(), &[2, 2]);
//! // CAM for the "appliance on" class, one score per timestep.
//! assert_eq!(detector.cam(1).shape(), &[2, 64]);
//! ```

#![warn(missing_docs)]

pub mod baselines;
pub mod bigru;
pub mod co;
pub mod crnn;
pub mod detector;
pub mod inception;
pub mod resnet;
pub mod tpnilm;
pub mod train;
pub mod transapp;
pub mod transnilm;
pub mod unet;
pub(crate) mod unet_util;

pub use baselines::BaselineKind;
pub use co::{CoDisaggregator, LibraryEntry};
pub use detector::{build_from_spec, cam_from_features, Backbone, BackboneSpec, Detector};
pub use inception::{InceptionConfig, InceptionTime};
pub use resnet::{ResNet, ResNetConfig};
pub use train::{
    predict_proba_frames, proba_to_status, train_soft, train_strong, train_weak_mil, TrainConfig,
    TrainStats,
};
pub use transapp::{TransApp, TransAppConfig};
