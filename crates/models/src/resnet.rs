//! The convolutional ResNet classifier of the paper (Fig. 4): three residual
//! units with `{64, 128, 128}` filters and per-unit kernel sizes
//! `{k_p, 5, 3}`, followed by global average pooling and a linear softmax
//! head. The GAP→linear structure is what makes Class Activation Maps
//! available (Definition II.1): `CAM_c(t) = Σ_k w^k_c · f^k(t)`.

use crate::detector::{cam_from_features, Detector};
use nilm_tensor::prelude::*;
use rand::Rng;

/// Architecture hyper-parameters for one ResNet.
#[derive(Clone, Copy, Debug)]
pub struct ResNetConfig {
    /// The variable first-conv kernel size k_p (CamAL sweeps {5,7,9,15,25}).
    pub kernel: usize,
    /// Filters of the three residual units; the paper uses `[64, 128, 128]`.
    pub channels: [usize; 3],
    /// Number of output classes (2 for appliance present/absent).
    pub num_classes: usize,
}

impl ResNetConfig {
    /// Paper-scale configuration (Fig. 4) for a given k_p.
    pub fn paper(kernel: usize) -> Self {
        ResNetConfig { kernel, channels: [64, 128, 128], num_classes: 2 }
    }

    /// Width-reduced configuration for laptop-scale experiments: channel
    /// counts divided by `div` (architecture unchanged).
    pub fn scaled(kernel: usize, div: usize) -> Self {
        let d = div.max(1);
        ResNetConfig {
            kernel,
            channels: [(64 / d).max(4), (128 / d).max(4), (128 / d).max(4)],
            num_classes: 2,
        }
    }
}

/// One residual unit: three conv blocks with kernels `{k_p, 5, 3}` plus a
/// projection shortcut (1x1 conv + BN) when channel counts change.
fn res_unit(rng: &mut impl Rng, in_c: usize, out_c: usize, kp: usize) -> Residual {
    let main = Sequential::new()
        .push(Conv1d::new(rng, in_c, out_c, kp, Padding::Same))
        .push(BatchNorm1d::new(out_c))
        .push(ReLU::default())
        .push(Conv1d::new(rng, out_c, out_c, 5, Padding::Same))
        .push(BatchNorm1d::new(out_c))
        .push(ReLU::default())
        .push(Conv1d::new(rng, out_c, out_c, 3, Padding::Same))
        .push(BatchNorm1d::new(out_c));
    if in_c == out_c {
        Residual::new(main)
    } else {
        let shortcut = Sequential::new()
            .push(Conv1d::new(rng, in_c, out_c, 1, Padding::Same))
            .push(BatchNorm1d::new(out_c));
        Residual::with_shortcut(main, shortcut)
    }
}

/// The CamAL ResNet detector. Also usable standalone as a time-series
/// classifier.
pub struct ResNet {
    cfg: ResNetConfig,
    units: Vec<Residual>,
    relus: Vec<ReLU>,
    gap: GlobalAvgPool1d,
    head: Linear,
    /// Features cached by [`Self::forward_features`] for CAM extraction.
    last_features: Option<Tensor>,
}

impl ResNet {
    /// Builds a ResNet for univariate input.
    pub fn new(rng: &mut impl Rng, cfg: ResNetConfig) -> Self {
        let [c1, c2, c3] = cfg.channels;
        let units = vec![
            res_unit(rng, 1, c1, cfg.kernel),
            res_unit(rng, c1, c2, cfg.kernel),
            res_unit(rng, c2, c3, cfg.kernel),
        ];
        let head = Linear::new(rng, c3, cfg.num_classes);
        let relus = (0..units.len()).map(|_| ReLU::default()).collect();
        ResNet { cfg, units, relus, gap: GlobalAvgPool1d::default(), head, last_features: None }
    }

    /// Configuration used to build this network.
    pub fn config(&self) -> &ResNetConfig {
        &self.cfg
    }
}

impl Detector for ResNet {
    fn forward_features(&mut self, x: &Tensor, mode: Mode) -> (Tensor, Tensor) {
        let mut cur: Option<Tensor> = None;
        for (unit, relu) in self.units.iter_mut().zip(&mut self.relus) {
            let y = unit.forward(cur.as_ref().unwrap_or(x), mode);
            cur = Some(relu.forward(&y, mode));
        }
        let features = cur.expect("ResNet has at least one residual unit");
        let pooled = self.gap.forward(&features, mode);
        let logits = self.head.forward(&pooled, mode);
        self.last_features = Some(features.clone());
        (features, logits)
    }

    fn cam(&self, class: usize) -> Tensor {
        let features =
            self.last_features.as_ref().expect("cam() requires a prior forward_features call");
        cam_from_features(features, self.head.weight(), class)
    }

    fn head_weights(&self) -> &Tensor {
        self.head.weight()
    }
}

impl Layer for ResNet {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let (_, logits) = self.forward_features(x, mode);
        logits
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let g = self.head.backward(grad);
        let g = self.gap.backward(&g);
        let mut cur = g;
        for (unit, relu) in self.units.iter_mut().zip(&mut self.relus).rev() {
            cur = relu.backward(&cur);
            cur = unit.backward(&cur);
        }
        cur
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for unit in &mut self.units {
            unit.visit_params(f);
        }
        self.head.visit_params(f);
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        for unit in &mut self.units {
            unit.visit_state(f);
        }
        self.head.visit_state(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::Detector;
    use nilm_tensor::init::{randn_tensor, rng};

    fn tiny() -> ResNetConfig {
        ResNetConfig { kernel: 5, channels: [4, 8, 8], num_classes: 2 }
    }

    #[test]
    fn forward_shapes() {
        let mut r = rng(0);
        let mut net = ResNet::new(&mut r, tiny());
        let x = randn_tensor(&mut r, &[3, 1, 32], 1.0);
        let (features, logits) = net.forward_features(&x, Mode::Eval);
        assert_eq!(features.shape(), &[3, 8, 32]);
        assert_eq!(logits.shape(), &[3, 2]);
    }

    #[test]
    fn cam_shape_matches_input_time() {
        let mut r = rng(1);
        let mut net = ResNet::new(&mut r, tiny());
        let x = randn_tensor(&mut r, &[2, 1, 16], 1.0);
        let _ = net.forward_features(&x, Mode::Eval);
        let cam = net.cam(1);
        assert_eq!(cam.shape(), &[2, 16]);
        assert!(cam.all_finite());
    }

    #[test]
    fn cam_is_linear_in_head_weights() {
        // Doubling the class-1 head weights must double CAM_1.
        let mut r = rng(2);
        let mut net = ResNet::new(&mut r, tiny());
        let x = randn_tensor(&mut r, &[1, 1, 12], 1.0);
        let _ = net.forward_features(&x, Mode::Eval);
        let cam1 = net.cam(1);
        net.head.visit_params(&mut |p| {
            if p.value.rank() == 2 {
                // weight [2, c]: double row 1.
                let (classes, c) = p.value.dims2();
                assert_eq!(classes, 2);
                for ci in 0..c {
                    *p.value.at2_mut(1, ci) *= 2.0;
                }
            }
        });
        let _ = net.forward_features(&x, Mode::Eval);
        let cam2 = net.cam(1);
        for (a, b) in cam1.data().iter().zip(cam2.data()) {
            assert!((2.0 * a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn predict_proba_rows_sum_to_one() {
        let mut r = rng(3);
        let mut net = ResNet::new(&mut r, tiny());
        let x = randn_tensor(&mut r, &[4, 1, 20], 1.0);
        let p = net.predict_proba(&x);
        for bi in 0..4 {
            let s = p.at2(bi, 0) + p.at2(bi, 1);
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn paper_config_param_count_is_in_expected_range() {
        // Table II reports ~570K per ResNet (averaged over kernels); the
        // kp=7 instance should be within [400K, 700K].
        let mut r = rng(4);
        let mut net = ResNet::new(&mut r, ResNetConfig::paper(7));
        let n = net.num_params();
        assert!((400_000..700_000).contains(&n), "param count {n}");
    }

    #[test]
    fn backward_runs_and_produces_input_grad() {
        let mut r = rng(5);
        let mut net = ResNet::new(&mut r, tiny());
        let x = randn_tensor(&mut r, &[2, 1, 16], 1.0);
        let logits = net.forward(&x, Mode::Train);
        let (_, g) = nilm_tensor::loss::cross_entropy(&logits, &[1, 0]);
        let gx = net.backward(&g);
        assert_eq!(gx.shape(), x.shape());
        assert!(gx.all_finite());
        // Parameter grads must be non-trivially populated.
        let mut total = 0.0;
        net.visit_params(&mut |p| total += p.grad.norm());
        assert!(total > 0.0);
    }

    #[test]
    fn scaled_config_shrinks_params() {
        let mut r = rng(6);
        let mut big = ResNet::new(&mut r, ResNetConfig::paper(7));
        let mut small = ResNet::new(&mut r, ResNetConfig::scaled(7, 8));
        assert!(small.num_params() < big.num_params() / 10);
    }
}
