//! InceptionTime (Fawaz et al., paper ref. \[37\]): multi-scale inception
//! blocks for time-series classification. The paper's §IV-A discusses it as
//! a deeper, general-purpose alternative to the ResNet backbone; we provide
//! it for the backbone ablation. Ends in GAP + linear so CAM still applies.

use crate::detector::{cam_from_features, Detector};
use crate::unet_util::concat_channels;
use nilm_tensor::prelude::*;
use rand::Rng;

/// Width configuration for InceptionTime.
#[derive(Clone, Copy, Debug)]
pub struct InceptionConfig {
    /// Filters per branch (4 branches concat to `4 * filters` channels).
    pub filters: usize,
    /// Bottleneck width before the multi-scale convs.
    pub bottleneck: usize,
    /// Number of inception blocks (residual link every third block).
    pub blocks: usize,
    /// The three branch kernel sizes (classic: 10, 20, 40).
    pub kernels: [usize; 3],
}

impl InceptionConfig {
    /// Paper-scale configuration.
    pub fn paper() -> Self {
        InceptionConfig { filters: 32, bottleneck: 32, blocks: 6, kernels: [10, 20, 40] }
    }

    /// Width-reduced configuration for laptop-scale experiments.
    pub fn scaled(div: usize) -> Self {
        let d = div.max(1);
        InceptionConfig {
            filters: (32 / d).max(4),
            bottleneck: (32 / d).max(4),
            blocks: 3,
            kernels: [5, 11, 23],
        }
    }
}

/// One inception block: bottleneck 1x1 → three parallel convs + a
/// maxpool→1x1 branch, concatenated, then BN + ReLU.
struct InceptionBlock {
    bottleneck: Option<Conv1d>,
    branches: Vec<Conv1d>,
    pool: MaxPoolSame,
    pool_proj: Conv1d,
    bn: BatchNorm1d,
    relu: ReLU,
}

/// Stride-1 max pooling with same padding (window 3), used inside inception
/// blocks. Implemented directly since [`MaxPool1d`] is stride = kernel.
struct MaxPoolSame {
    argmax: Vec<usize>,
    in_shape: Vec<usize>,
}

impl MaxPoolSame {
    fn new() -> Self {
        MaxPoolSame { argmax: Vec::new(), in_shape: Vec::new() }
    }
}

impl Layer for MaxPoolSame {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let (b, c, t) = x.dims3();
        self.in_shape = x.shape().to_vec();
        self.argmax = vec![0; b * c * t];
        let mut out = Tensor::zeros(&[b, c, t]);
        for bi in 0..b {
            for ci in 0..c {
                let xr = x.row(bi, ci);
                let or = out.row_mut(bi, ci);
                for ti in 0..t {
                    let lo = ti.saturating_sub(1);
                    let hi = (ti + 2).min(t);
                    let (mut best_i, mut best) = (lo, f32::NEG_INFINITY);
                    for (j, &v) in xr[lo..hi].iter().enumerate() {
                        if v > best {
                            best = v;
                            best_i = lo + j;
                        }
                    }
                    or[ti] = best;
                    self.argmax[(bi * c + ci) * t + ti] = best_i;
                }
            }
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let (b, c, t) = grad.dims3();
        let mut dx = Tensor::zeros(&self.in_shape);
        for bi in 0..b {
            for ci in 0..c {
                for ti in 0..t {
                    let src = self.argmax[(bi * c + ci) * t + ti];
                    dx.row_mut(bi, ci)[src] += grad.at3(bi, ci, ti);
                }
            }
        }
        dx
    }
}

impl InceptionBlock {
    fn new(rng: &mut impl Rng, in_c: usize, cfg: &InceptionConfig) -> Self {
        let use_bottleneck = in_c > 1;
        let branch_in = if use_bottleneck { cfg.bottleneck } else { in_c };
        let bottleneck = use_bottleneck.then(|| {
            Conv1d::with_options(rng, in_c, cfg.bottleneck, 1, Padding::Same, 1, 1, false)
        });
        let branches = cfg
            .kernels
            .iter()
            .map(|&k| {
                Conv1d::with_options(rng, branch_in, cfg.filters, k, Padding::Same, 1, 1, false)
            })
            .collect();
        let pool_proj = Conv1d::with_options(rng, in_c, cfg.filters, 1, Padding::Same, 1, 1, false);
        InceptionBlock {
            bottleneck,
            branches,
            pool: MaxPoolSame::new(),
            pool_proj,
            bn: BatchNorm1d::new(4 * cfg.filters),
            relu: ReLU::default(),
        }
    }

    fn out_channels(&self) -> usize {
        // 3 conv branches + pool branch, each `filters` wide.
        4 * self.branches[0].out_channels()
    }
}

impl Layer for InceptionBlock {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let trunk = match &mut self.bottleneck {
            Some(bn) => bn.forward(x, mode),
            None => x.clone(),
        };
        let mut cat: Option<Tensor> = None;
        for branch in &mut self.branches {
            let y = branch.forward(&trunk, mode);
            cat = Some(match cat {
                Some(c) => concat_channels(&c, &y),
                None => y,
            });
        }
        let pooled = self.pool.forward(x, mode);
        let pooled = self.pool_proj.forward(&pooled, mode);
        let cat = concat_channels(&cat.expect("at least one branch"), &pooled);
        let y = self.bn.forward(&cat, mode);
        self.relu.forward(&y, mode)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let g = self.relu.backward(grad);
        let g = self.bn.backward(&g);
        // Split the concat gradient: three conv branches then the pool branch.
        let fw = self.branches[0].out_channels();
        let (g_convs, g_pool) = crate::unet_util::split_channels(&g, 3 * fw);
        let mut g_trunk: Option<Tensor> = None;
        let mut rest = g_convs;
        for branch in &mut self.branches {
            let (g_b, tail) = crate::unet_util::split_channels(&rest, fw);
            let gx = branch.backward(&g_b);
            g_trunk = Some(match g_trunk {
                Some(mut acc) => {
                    acc.add_assign(&gx);
                    acc
                }
                None => gx,
            });
            rest = tail;
        }
        let mut g_x = match &mut self.bottleneck {
            Some(bn) => bn.backward(&g_trunk.expect("branches")),
            None => g_trunk.expect("branches"),
        };
        let g_pool_in = self.pool.backward(&self.pool_proj.backward(&g_pool));
        g_x.add_assign(&g_pool_in);
        g_x
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        if let Some(b) = &mut self.bottleneck {
            b.visit_params(f);
        }
        for branch in &mut self.branches {
            branch.visit_params(f);
        }
        self.pool_proj.visit_params(f);
        self.bn.visit_params(f);
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        if let Some(b) = &mut self.bottleneck {
            b.visit_state(f);
        }
        for branch in &mut self.branches {
            branch.visit_state(f);
        }
        self.pool_proj.visit_state(f);
        self.bn.visit_state(f);
    }
}

/// InceptionTime classifier ending in GAP + linear (CAM-capable).
pub struct InceptionTime {
    blocks: Vec<InceptionBlock>,
    /// Residual projections applied every third block.
    shortcuts: Vec<(usize, Conv1d)>,
    gap: GlobalAvgPool1d,
    head: Linear,
    last_features: Option<Tensor>,
    residual_cache: Vec<Tensor>,
}

impl InceptionTime {
    /// Builds InceptionTime for univariate input with 2 output classes.
    pub fn new(rng: &mut impl Rng, cfg: InceptionConfig) -> Self {
        let mut blocks = Vec::new();
        let mut shortcuts = Vec::new();
        let mut in_c = 1usize;
        let mut residual_in = 1usize;
        for i in 0..cfg.blocks.max(1) {
            let block = InceptionBlock::new(rng, in_c, &cfg);
            let out_c = block.out_channels();
            blocks.push(block);
            if (i + 1) % 3 == 0 {
                // Residual from the input of the group to its output.
                shortcuts.push((
                    i,
                    Conv1d::with_options(rng, residual_in, out_c, 1, Padding::Same, 1, 1, false),
                ));
                residual_in = out_c;
            }
            in_c = out_c;
        }
        let head = Linear::new(rng, in_c, 2);
        InceptionTime {
            blocks,
            shortcuts,
            gap: GlobalAvgPool1d::default(),
            head,
            last_features: None,
            residual_cache: Vec::new(),
        }
    }
}

impl Layer for InceptionTime {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let (_, logits) = self.forward_features(x, mode);
        logits
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let g = self.head.backward(grad);
        let mut g = self.gap.backward(&g);
        // Walk blocks in reverse; apply residual backward where registered.
        let mut pending_residual: Option<Tensor> = None;
        for (i, block) in self.blocks.iter_mut().enumerate().rev() {
            if let Some((_, sc)) = self.shortcuts.iter_mut().find(|(bi, _)| *bi == i) {
                // The residual was added at this block's output.
                pending_residual = Some(sc.backward(&g));
            }
            g = block.backward(&g);
            if (i % 3 == 0) && pending_residual.is_some() {
                // Group boundary: the shortcut branched from this input.
                g.add_assign(&pending_residual.take().expect("checked"));
            }
        }
        g
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for block in &mut self.blocks {
            block.visit_params(f);
        }
        for (_, sc) in &mut self.shortcuts {
            sc.visit_params(f);
        }
        self.head.visit_params(f);
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        for block in &mut self.blocks {
            block.visit_state(f);
        }
        for (_, sc) in &mut self.shortcuts {
            sc.visit_state(f);
        }
        self.head.visit_state(f);
    }
}

impl Detector for InceptionTime {
    fn forward_features(&mut self, x: &Tensor, mode: Mode) -> (Tensor, Tensor) {
        self.residual_cache.clear();
        let mut cur = x.clone();
        let mut group_input = x.clone();
        for (i, block) in self.blocks.iter_mut().enumerate() {
            cur = block.forward(&cur, mode);
            if let Some((_, sc)) = self.shortcuts.iter_mut().find(|(bi, _)| *bi == i) {
                let res = sc.forward(&group_input, mode);
                cur.add_assign(&res);
                group_input = cur.clone();
            }
        }
        let features = cur.clone();
        let pooled = self.gap.forward(&cur, mode);
        let logits = self.head.forward(&pooled, mode);
        self.last_features = Some(features.clone());
        (features, logits)
    }

    fn cam(&self, class: usize) -> Tensor {
        let features =
            self.last_features.as_ref().expect("cam() requires a prior forward_features call");
        cam_from_features(features, self.head.weight(), class)
    }

    fn head_weights(&self) -> &Tensor {
        self.head.weight()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilm_tensor::init::{randn_tensor, rng};

    fn tiny() -> InceptionConfig {
        InceptionConfig { filters: 4, bottleneck: 4, blocks: 3, kernels: [3, 5, 9] }
    }

    #[test]
    fn forward_shapes() {
        let mut r = rng(0);
        let mut net = InceptionTime::new(&mut r, tiny());
        let x = randn_tensor(&mut r, &[2, 1, 32], 1.0);
        let (features, logits) = net.forward_features(&x, Mode::Eval);
        assert_eq!(features.shape(), &[2, 16, 32]); // 4 branches × 4 filters
        assert_eq!(logits.shape(), &[2, 2]);
    }

    #[test]
    fn cam_has_input_length() {
        let mut r = rng(1);
        let mut net = InceptionTime::new(&mut r, tiny());
        let x = randn_tensor(&mut r, &[1, 1, 20], 1.0);
        let _ = net.forward_features(&x, Mode::Eval);
        let cam = net.cam(1);
        assert_eq!(cam.shape(), &[1, 20]);
        assert!(cam.all_finite());
    }

    #[test]
    fn backward_populates_gradients() {
        let mut r = rng(2);
        let mut net = InceptionTime::new(&mut r, tiny());
        let x = randn_tensor(&mut r, &[2, 1, 16], 1.0);
        let logits = net.forward(&x, Mode::Train);
        let (_, g) = nilm_tensor::loss::cross_entropy(&logits, &[0, 1]);
        let gx = net.backward(&g);
        assert_eq!(gx.shape(), x.shape());
        assert!(gx.all_finite());
        let mut total = 0.0f32;
        net.visit_params(&mut |p| total += p.grad.norm());
        assert!(total > 0.0);
    }

    #[test]
    fn maxpool_same_preserves_length_and_routes_grads() {
        let mut mp = MaxPoolSame::new();
        let x = Tensor::from_vec(vec![1.0, 5.0, 2.0, 0.0], &[1, 1, 4]);
        let y = mp.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[1, 1, 4]);
        assert_eq!(y.data(), &[5.0, 5.0, 5.0, 2.0]);
        let g = mp.backward(&Tensor::full(&[1, 1, 4], 1.0));
        assert_eq!(g.sum(), 4.0);
    }

    #[test]
    fn deeper_than_resnet_at_paper_scale() {
        let mut r = rng(3);
        let mut inception = InceptionTime::new(&mut r, InceptionConfig::paper());
        // InceptionTime paper config: 6 blocks of multi-scale convs.
        assert!(inception.num_params() > 100_000);
    }
}
