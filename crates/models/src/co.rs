//! Combinatorial Optimization (CO) disaggregation — Hart's classic
//! unsupervised NILM method (paper ref. \[1\], discussed in §II-A as the
//! earliest approach). At each timestep, CO picks the subset of a known
//! appliance-power library whose summed power best explains the aggregate
//! above an estimated base load. It needs **zero labels**, making it the
//! natural floor for the label-efficiency comparison of Fig. 5.

use nilm_data::appliance::ApplianceKind;

/// An appliance power library entry: the steady running power assumed by CO.
#[derive(Clone, Copy, Debug)]
pub struct LibraryEntry {
    /// Which appliance.
    pub kind: ApplianceKind,
    /// Assumed running power in Watts (Table I average power).
    pub power_w: f32,
}

/// The CO disaggregator.
#[derive(Clone, Debug)]
pub struct CoDisaggregator {
    library: Vec<LibraryEntry>,
    /// Quantile of the window used as the base-load estimate (Hart uses the
    /// observed minimum; a low quantile is robust to noise).
    base_quantile: f64,
}

impl CoDisaggregator {
    /// Creates a CO disaggregator over an appliance library (max 16 entries;
    /// subset enumeration is exponential).
    pub fn new(library: Vec<LibraryEntry>) -> Self {
        assert!(!library.is_empty(), "empty appliance library");
        assert!(library.len() <= 16, "library too large for subset enumeration");
        CoDisaggregator { library, base_quantile: 0.1 }
    }

    /// A library with one entry per Table-I appliance of the template case.
    pub fn single(kind: ApplianceKind, power_w: f32) -> Self {
        Self::new(vec![LibraryEntry { kind, power_w }])
    }

    /// Low-quantile base-load estimate of a window.
    fn base_load(&self, window_w: &[f32]) -> f32 {
        if window_w.is_empty() {
            return 0.0;
        }
        let mut sorted: Vec<f32> = window_w.iter().copied().filter(|v| v.is_finite()).collect();
        if sorted.is_empty() {
            return 0.0;
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let idx = ((sorted.len() - 1) as f64 * self.base_quantile).round() as usize;
        sorted[idx]
    }

    /// Disaggregates one window: for each timestep, finds the subset of the
    /// library minimizing `|x(t) - base - Σ subset|` and reports whether
    /// `target` is in that subset. Subsets only beat the empty set when they
    /// reduce the residual by at least half the smallest library power
    /// (otherwise noise would trigger spurious activations).
    pub fn localize(&self, aggregate_w: &[f32], target: ApplianceKind) -> Vec<u8> {
        let base = self.base_load(aggregate_w);
        let n_subsets = 1usize << self.library.len();
        let min_power = self.library.iter().map(|e| e.power_w).fold(f32::INFINITY, f32::min);
        let margin = min_power * 0.5;
        let target_bit: Option<usize> = self.library.iter().position(|e| e.kind == target);
        let Some(target_bit) = target_bit else {
            return vec![0; aggregate_w.len()];
        };

        aggregate_w
            .iter()
            .map(|&x| {
                if !x.is_finite() {
                    return 0;
                }
                let residual = (x - base).max(0.0);
                let mut best_err = residual; // empty subset
                let mut best_subset = 0usize;
                for subset in 1..n_subsets {
                    let sum: f32 = self
                        .library
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| subset & (1 << i) != 0)
                        .map(|(_, e)| e.power_w)
                        .sum();
                    let err = (residual - sum).abs();
                    if err + margin < best_err {
                        best_err = err;
                        best_subset = subset;
                    }
                }
                ((best_subset >> target_bit) & 1) as u8
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kettle_lib() -> CoDisaggregator {
        CoDisaggregator::single(ApplianceKind::Kettle, 2000.0)
    }

    #[test]
    fn detects_clean_plateau() {
        let co = kettle_lib();
        let mut window = vec![150.0f32; 32];
        for v in window[10..14].iter_mut() {
            *v = 2150.0;
        }
        let status = co.localize(&window, ApplianceKind::Kettle);
        assert_eq!(&status[10..14], &[1, 1, 1, 1]);
        assert!(status[..10].iter().all(|&s| s == 0));
        assert!(status[14..].iter().all(|&s| s == 0));
    }

    #[test]
    fn ignores_small_bumps() {
        let co = kettle_lib();
        let mut window = vec![150.0f32; 16];
        window[5] = 400.0; // far from 2000 W
        let status = co.localize(&window, ApplianceKind::Kettle);
        assert!(status.iter().all(|&s| s == 0));
    }

    #[test]
    fn multi_appliance_subsets() {
        let co = CoDisaggregator::new(vec![
            LibraryEntry { kind: ApplianceKind::Kettle, power_w: 2000.0 },
            LibraryEntry { kind: ApplianceKind::Microwave, power_w: 1000.0 },
        ]);
        // Aggregate shows base + kettle + microwave = 150 + 3000.
        let window = vec![150.0, 150.0, 3150.0, 3150.0, 1150.0, 150.0];
        let kettle = co.localize(&window, ApplianceKind::Kettle);
        let micro = co.localize(&window, ApplianceKind::Microwave);
        assert_eq!(kettle, vec![0, 0, 1, 1, 0, 0]);
        assert_eq!(micro, vec![0, 0, 1, 1, 1, 0]);
    }

    #[test]
    fn unknown_target_is_all_off() {
        let co = kettle_lib();
        let status = co.localize(&[2150.0; 4], ApplianceKind::Shower);
        assert_eq!(status, vec![0; 4]);
    }

    #[test]
    fn nan_samples_are_off() {
        let co = kettle_lib();
        let status = co.localize(&[f32::NAN, 2150.0], ApplianceKind::Kettle);
        assert_eq!(status[0], 0);
    }

    #[test]
    #[should_panic(expected = "empty appliance library")]
    fn rejects_empty_library() {
        let _ = CoDisaggregator::new(vec![]);
    }
}
