//! TransApp-style attention detector (Petralia et al., the CamAL authors'
//! companion architecture for appliance detection, see PAPERS.md "ADF &
//! TransApp"): a convolutional embedding downsamples the window, sinusoidal
//! positions are added, transformer encoder blocks mix information globally,
//! and a GAP → linear head classifies appliance presence.
//!
//! Localization comes from **attention rollout** instead of a conv CAM: the
//! head-averaged attention maps of every encoder block (retained even under
//! [`Mode::Infer`] — they are forward products, not backward caches) are
//! composed as `R = Π_l (A_l + I)/2`, and the column mean of `R` scores how
//! much each downsampled position feeds the final representation. Upsampled
//! to the window length and multiplied with the classic GAP-head CAM of the
//! decoder features, this yields a class-specific per-timestep map with the
//! same contract as [`Detector::cam`], so the attention-sigmoid module,
//! duration priors, and §IV-C power estimation run unchanged downstream.

use crate::detector::{cam_from_features, Detector};
use crate::unet_util::{match_len, match_len_backward};
use nilm_tensor::prelude::*;
use rand::Rng;

/// Architecture hyper-parameters of one TransApp detector — exactly the
/// fields of [`crate::detector::BackboneSpec::TransApp`].
#[derive(Clone, Copy, Debug)]
pub struct TransAppConfig {
    /// Embedding/model width (must be divisible by `heads`).
    pub d_model: usize,
    /// Attention heads per encoder block.
    pub heads: usize,
    /// Feed-forward hidden width.
    pub d_ff: usize,
    /// Number of transformer encoder blocks.
    pub layers: usize,
    /// Temporal downsampling before attention (keeps O(t²) in check).
    pub downsample: usize,
}

impl TransAppConfig {
    /// Full-scale configuration.
    pub fn paper() -> Self {
        TransAppConfig { d_model: 128, heads: 8, d_ff: 256, layers: 3, downsample: 4 }
    }

    /// Width-reduced configuration for laptop-scale experiments.
    pub fn scaled(div: usize) -> Self {
        let d = div.max(1);
        TransAppConfig {
            d_model: (128 / d).max(8),
            heads: 2,
            d_ff: (256 / d).max(16),
            layers: 2,
            downsample: 4,
        }
    }
}

/// The TransApp detector: conv embedding + transformer encoder + GAP/linear
/// head, with attention-rollout localization.
pub struct TransApp {
    cfg: TransAppConfig,
    embed: Sequential,
    pe: PositionalEncoding,
    blocks: Vec<TransformerEncoderLayer>,
    up: Upsample1d,
    gap: GlobalAvgPool1d,
    head: Linear,
    input_len: usize,
    up_len: usize,
    /// Decoder features `[b, d_model, t]` cached for [`Detector::cam`].
    last_features: Option<Tensor>,
    /// Attention-rollout map `[b, t]` cached alongside the features.
    last_rollout: Option<Tensor>,
}

impl TransApp {
    /// Builds a TransApp detector for univariate input.
    pub fn new(rng: &mut impl Rng, cfg: TransAppConfig) -> Self {
        assert!(
            cfg.heads > 0 && cfg.d_model % cfg.heads == 0,
            "d_model {} not divisible by heads {}",
            cfg.d_model,
            cfg.heads
        );
        assert!(cfg.layers > 0, "TransApp needs at least one encoder block");
        let embed = Sequential::new()
            .push(Conv1d::new(rng, 1, cfg.d_model, 3, Padding::Same))
            .push(ReLU::default())
            .push(MaxPool1d::new(cfg.downsample.max(1)));
        let blocks: Vec<TransformerEncoderLayer> = (0..cfg.layers)
            .map(|_| {
                let mut block = TransformerEncoderLayer::new(rng, cfg.d_model, cfg.heads, cfg.d_ff);
                // Rollout needs the attention maps of every forward pass,
                // serving included.
                block.set_retain_attention(true);
                block
            })
            .collect();
        TransApp {
            cfg,
            embed,
            pe: PositionalEncoding,
            blocks,
            up: Upsample1d::new(cfg.downsample.max(1), UpsampleMode::Linear),
            gap: GlobalAvgPool1d::default(),
            head: Linear::new(rng, cfg.d_model, 2),
            input_len: 0,
            up_len: 0,
            last_features: None,
            last_rollout: None,
        }
    }

    /// Configuration used to build this network.
    pub fn config(&self) -> &TransAppConfig {
        &self.cfg
    }

    /// Composes the blocks' retained attention maps into the per-timestep
    /// rollout map `[b, t]` (window length `t`, downsampled length `td`).
    fn rollout(&self, b: usize, t: usize, td: usize) -> Tensor {
        let mut out = Tensor::zeros(&[b, t]);
        for bi in 0..b {
            // R starts as the identity; each block contributes (A + I)/2,
            // the residual-aware form of attention rollout.
            let mut r = Tensor::zeros(&[td, td]);
            for i in 0..td {
                *r.at2_mut(i, i) = 1.0;
            }
            for block in &self.blocks {
                let a = &block.retained_attention()[bi];
                let mut mixed = Tensor::zeros(&[td, td]);
                for i in 0..td {
                    for j in 0..td {
                        *mixed.at2_mut(i, j) = 0.5 * a.at2(i, j) + if i == j { 0.5 } else { 0.0 };
                    }
                }
                r = mixed.matmul(&r);
            }
            // Column mean: how much each source position feeds the final
            // representations, i.e. the localization mass it receives.
            let inv = 1.0 / td as f32;
            let row = &mut out.data_mut()[bi * t..(bi + 1) * t];
            for (ti, o) in row.iter_mut().enumerate() {
                let j = (ti / self.cfg.downsample.max(1)).min(td - 1);
                let col_sum: f32 = (0..td).map(|i| r.at2(i, j)).sum();
                *o = col_sum * inv;
            }
        }
        out
    }
}

impl Detector for TransApp {
    fn forward_features(&mut self, x: &Tensor, mode: Mode) -> (Tensor, Tensor) {
        let (b, _, t) = x.dims3();
        assert!(
            t >= self.cfg.downsample.max(1),
            "window length {t} shorter than the downsample factor {}",
            self.cfg.downsample
        );
        self.input_len = t;
        let mut h = self.embed.forward(x, mode);
        h = self.pe.forward(&h, mode);
        for block in &mut self.blocks {
            h = block.forward(&h, mode);
        }
        let td = h.dims3().2;
        let up = self.up.forward(&h, mode);
        self.up_len = up.dims3().2;
        let features = match_len(&up, t);
        let pooled = self.gap.forward(&features, mode);
        let logits = self.head.forward(&pooled, mode);
        self.last_rollout = Some(self.rollout(b, t, td));
        self.last_features = Some(features.clone());
        (features, logits)
    }

    fn cam(&self, class: usize) -> Tensor {
        let features =
            self.last_features.as_ref().expect("cam() requires a prior forward_features call");
        let rollout =
            self.last_rollout.as_ref().expect("cam() requires a prior forward_features call");
        let mut cam = cam_from_features(features, self.head.weight(), class);
        cam.data_mut().iter_mut().zip(rollout.data()).for_each(|(c, &r)| *c *= r);
        cam
    }

    fn head_weights(&self) -> &Tensor {
        self.head.weight()
    }
}

impl Layer for TransApp {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let (_, logits) = self.forward_features(x, mode);
        logits
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let g = self.head.backward(grad);
        let g = self.gap.backward(&g);
        let g = match_len_backward(&g, self.up_len);
        let mut g = self.up.backward(&g);
        for block in self.blocks.iter_mut().rev() {
            g = block.backward(&g);
        }
        let g = self.pe.backward(&g);
        self.embed.backward(&g)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.embed.visit_params(f);
        for block in &mut self.blocks {
            block.visit_params(f);
        }
        self.head.visit_params(f);
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.embed.visit_state(f);
        for block in &mut self.blocks {
            block.visit_state(f);
        }
        self.head.visit_state(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilm_tensor::init::{randn_tensor, rng};
    use nilm_tensor::loss::cross_entropy;

    fn tiny() -> TransAppConfig {
        TransAppConfig { d_model: 8, heads: 2, d_ff: 16, layers: 2, downsample: 4 }
    }

    #[test]
    fn forward_shapes_and_cam() {
        let mut r = rng(0);
        let mut net = TransApp::new(&mut r, tiny());
        let x = randn_tensor(&mut r, &[3, 1, 32], 1.0);
        let (features, logits) = net.forward_features(&x, Mode::Eval);
        assert_eq!(features.shape(), &[3, 8, 32]);
        assert_eq!(logits.shape(), &[3, 2]);
        let cam = net.cam(1);
        assert_eq!(cam.shape(), &[3, 32]);
        assert!(cam.all_finite());
    }

    #[test]
    fn non_multiple_window_length_survives() {
        let mut r = rng(1);
        let mut net = TransApp::new(&mut r, tiny());
        let x = randn_tensor(&mut r, &[1, 1, 34], 1.0);
        let (features, logits) = net.forward_features(&x, Mode::Eval);
        assert_eq!(features.shape(), &[1, 8, 34]);
        assert_eq!(logits.shape(), &[1, 2]);
        assert_eq!(net.cam(1).shape(), &[1, 34]);
    }

    #[test]
    fn infer_forward_is_bit_identical_to_eval_and_cam_still_works() {
        // The serving path runs `Mode::Infer`; the attention rollout must
        // survive the cache-skipping mode and logits must not move a bit.
        let mut r = rng(2);
        let mut net = TransApp::new(&mut r, tiny());
        let x = randn_tensor(&mut r, &[2, 1, 32], 1.0);
        let (_, le) = net.forward_features(&x, Mode::Eval);
        let cam_eval = net.cam(1);
        let (_, li) = net.forward_features(&x, Mode::Infer);
        let cam_infer = net.cam(1);
        let bits = |t: &Tensor| -> Vec<u32> { t.data().iter().map(|v| v.to_bits()).collect() };
        assert_eq!(bits(&le), bits(&li), "logits diverged between Eval and Infer");
        assert_eq!(bits(&cam_eval), bits(&cam_infer), "rollout CAM diverged under Infer");
    }

    #[test]
    fn rollout_modulates_the_gap_cam() {
        // The attention factor must actually participate: zeroing the
        // retained rollout (by scaling the cached map) changes the CAM.
        let mut r = rng(3);
        let mut net = TransApp::new(&mut r, tiny());
        let x = randn_tensor(&mut r, &[1, 1, 32], 1.0);
        let _ = net.forward_features(&x, Mode::Eval);
        let cam = net.cam(1);
        let rollout = net.last_rollout.as_ref().unwrap().clone();
        assert!(rollout.data().iter().all(|&v| v > 0.0), "rollout mass must be positive");
        net.last_rollout = Some(Tensor::full(&[1, 32], 1.0));
        let cam_flat = net.cam(1);
        assert_ne!(
            cam.data(),
            cam_flat.data(),
            "rollout map had no effect on the localization map"
        );
    }

    #[test]
    fn backward_trains_and_produces_finite_grads() {
        let mut r = rng(4);
        let mut net = TransApp::new(&mut r, tiny());
        let x = randn_tensor(&mut r, &[2, 1, 32], 1.0);
        let logits = net.forward(&x, Mode::Train);
        let (_, g) = cross_entropy(&logits, &[1, 0]);
        let gx = net.backward(&g);
        assert_eq!(gx.shape(), x.shape());
        assert!(gx.all_finite());
        let mut total = 0.0;
        net.visit_params(&mut |p| total += p.grad.norm());
        assert!(total > 0.0, "no parameter gradient flowed");
    }

    #[test]
    fn state_roundtrip_is_bit_identical() {
        let mut r = rng(5);
        let mut a = TransApp::new(&mut r, tiny());
        let mut b = TransApp::new(&mut r, tiny());
        let blob = a.save_state();
        b.load_state(&blob).expect("same architecture must load");
        let x = randn_tensor(&mut r, &[1, 1, 32], 1.0);
        let (_, la) = a.forward_features(&x, Mode::Infer);
        let (_, lb) = b.forward_features(&x, Mode::Infer);
        let bits = |t: &Tensor| -> Vec<u32> { t.data().iter().map(|v| v.to_bits()).collect() };
        assert_eq!(bits(&la), bits(&lb));
        assert_eq!(bits(&a.cam(1)), bits(&b.cam(1)));
    }

    #[test]
    fn scaled_config_shrinks_params() {
        let mut r = rng(6);
        let mut big = TransApp::new(&mut r, TransAppConfig::paper());
        let mut small = TransApp::new(&mut r, TransAppConfig::scaled(8));
        assert!(small.num_params() < big.num_params() / 4);
    }
}
