//! UNet-NILM (paper refs. \[25\]/\[27\]): a 1-D encoder–decoder with skip
//! connections adapted for appliance state detection. Skips are concatenated
//! along the channel axis; odd-length levels are handled by right-padding
//! the upsampled signal with its last value.

use crate::unet_util::{concat_channels, match_len, match_len_backward, split_channels};
use nilm_tensor::prelude::*;
use rand::Rng;

/// Width configuration for UNet-NILM.
#[derive(Clone, Copy, Debug)]
pub struct UnetConfig {
    /// Channels of the three encoder levels.
    pub channels: [usize; 3],
    /// Convolution kernel size.
    pub kernel: usize,
}

impl UnetConfig {
    /// Paper-scale configuration (Table II reports ~3.2M parameters).
    pub fn paper() -> Self {
        UnetConfig { channels: [64, 128, 256], kernel: 5 }
    }

    /// Width-reduced configuration for laptop-scale experiments.
    pub fn scaled(div: usize) -> Self {
        let d = div.max(1);
        UnetConfig { channels: [(64 / d).max(4), (128 / d).max(8), (256 / d).max(8)], kernel: 5 }
    }
}

/// UNet-NILM producing `[b, 1, t]` per-timestep logits.
pub struct UnetNilm {
    enc: Vec<Sequential>,
    pools: Vec<MaxPool1d>,
    bottleneck: Sequential,
    ups: Vec<Upsample1d>,
    dec: Vec<Sequential>,
    head: TimeDistributed,
    channels: [usize; 3],
    // Forward caches for backward.
    skip_lens: Vec<usize>,
    up_src_lens: Vec<usize>,
}

impl UnetNilm {
    /// Builds the UNet for univariate input.
    pub fn new(rng: &mut impl Rng, cfg: UnetConfig) -> Self {
        let [c1, c2, c3] = cfg.channels;
        let k = cfg.kernel;
        let block = |rng: &mut dyn FnMut(usize, usize) -> Sequential, i: usize, o: usize| rng(i, o);
        let mut mk = |i: usize, o: usize| {
            Sequential::new()
                .push(Conv1d::new(rng, i, o, k, Padding::Same))
                .push(BatchNorm1d::new(o))
                .push(ReLU::default())
        };
        let enc = vec![block(&mut mk, 1, c1), block(&mut mk, c1, c2), block(&mut mk, c2, c3)];
        let bottleneck = block(&mut mk, c3, c3);
        // Decoder blocks consume [up ; skip] concatenations.
        let dec = vec![
            block(&mut mk, c2 + c1, c1), // level 0 (outermost)
            block(&mut mk, c3 + c2, c2), // level 1
            block(&mut mk, c3 + c3, c3), // level 2 (innermost)
        ];
        let head = TimeDistributed::new(rng, c1, 1);
        UnetNilm {
            enc,
            pools: (0..3).map(|_| MaxPool1d::new(2)).collect(),
            bottleneck,
            ups: (0..3).map(|_| Upsample1d::new(2, UpsampleMode::Linear)).collect(),
            dec,
            head,
            channels: cfg.channels,
            skip_lens: Vec::new(),
            up_src_lens: Vec::new(),
        }
    }
}

impl Layer for UnetNilm {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        self.skip_lens.clear();
        self.up_src_lens.clear();
        // Encoder: keep skips before pooling.
        let x0 = self.enc[0].forward(x, mode);
        let p0 = self.pools[0].forward(&x0, mode);
        let x1 = self.enc[1].forward(&p0, mode);
        let p1 = self.pools[1].forward(&x1, mode);
        let x2 = self.enc[2].forward(&p1, mode);
        let p2 = self.pools[2].forward(&x2, mode);
        let bott = self.bottleneck.forward(&p2, mode);
        self.skip_lens = vec![x0.dims3().2, x1.dims3().2, x2.dims3().2];

        // Decoder, innermost first.
        let u2 = self.ups[2].forward(&bott, mode);
        self.up_src_lens.push(u2.dims3().2);
        let d2 =
            self.dec[2].forward(&concat_channels(&match_len(&u2, self.skip_lens[2]), &x2), mode);
        let u1 = self.ups[1].forward(&d2, mode);
        self.up_src_lens.push(u1.dims3().2);
        let d1 =
            self.dec[1].forward(&concat_channels(&match_len(&u1, self.skip_lens[1]), &x1), mode);
        let u0 = self.ups[0].forward(&d1, mode);
        self.up_src_lens.push(u0.dims3().2);
        let d0 =
            self.dec[0].forward(&concat_channels(&match_len(&u0, self.skip_lens[0]), &x0), mode);
        self.head.forward(&d0, mode)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let [_c1, c2, c3] = self.channels;
        let g = self.head.backward(grad);

        // Level 0.
        let g = self.dec[0].backward(&g);
        let (g_u0m, g_skip0) = split_channels(&g, c2);
        let g_u0 = match_len_backward(&g_u0m, self.up_src_lens[2]);
        let g_d1 = self.ups[0].backward(&g_u0);

        // Level 1.
        let g = self.dec[1].backward(&g_d1);
        let (g_u1m, g_skip1) = split_channels(&g, c3);
        let g_u1 = match_len_backward(&g_u1m, self.up_src_lens[1]);
        let g_d2 = self.ups[1].backward(&g_u1);

        // Level 2.
        let g = self.dec[2].backward(&g_d2);
        let (g_u2m, g_skip2) = split_channels(&g, c3);
        let g_u2 = match_len_backward(&g_u2m, self.up_src_lens[0]);
        let g_bott = self.ups[2].backward(&g_u2);

        // Back through the encoder, merging skip gradients.
        let g_p2 = self.bottleneck.backward(&g_bott);
        let mut g_x2 = self.pools[2].backward(&g_p2);
        g_x2.add_assign(&g_skip2);
        let g_p1 = self.enc[2].backward(&g_x2);
        let mut g_x1 = self.pools[1].backward(&g_p1);
        g_x1.add_assign(&g_skip1);
        let g_p0 = self.enc[1].backward(&g_x1);
        let mut g_x0 = self.pools[0].backward(&g_p0);
        g_x0.add_assign(&g_skip0);
        self.enc[0].backward(&g_x0)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for e in &mut self.enc {
            e.visit_params(f);
        }
        self.bottleneck.visit_params(f);
        for d in &mut self.dec {
            d.visit_params(f);
        }
        self.head.visit_params(f);
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        for e in &mut self.enc {
            e.visit_state(f);
        }
        self.bottleneck.visit_state(f);
        for d in &mut self.dec {
            d.visit_state(f);
        }
        self.head.visit_state(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilm_tensor::init::{randn_tensor, rng};

    fn tiny() -> UnetConfig {
        UnetConfig { channels: [4, 8, 8], kernel: 3 }
    }

    #[test]
    fn shapes_preserved_even_length() {
        let mut r = rng(0);
        let mut m = UnetNilm::new(&mut r, tiny());
        let x = randn_tensor(&mut r, &[2, 1, 32], 1.0);
        let y = m.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 1, 32]);
    }

    #[test]
    fn shapes_preserved_odd_length() {
        // 510 = 2 * 255; 255 is odd, exercising the match_len path.
        let mut r = rng(1);
        let mut m = UnetNilm::new(&mut r, tiny());
        let x = randn_tensor(&mut r, &[1, 1, 30], 1.0);
        let y = m.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[1, 1, 30]);
        let gx = m.backward(&Tensor::full(&[1, 1, 30], 0.1));
        assert_eq!(gx.shape(), &[1, 1, 30]);
        assert!(gx.all_finite());
    }

    #[test]
    fn gradients_populate_all_levels() {
        let mut r = rng(2);
        let mut m = UnetNilm::new(&mut r, tiny());
        let x = randn_tensor(&mut r, &[1, 1, 16], 1.0);
        let y = m.forward(&x, Mode::Train);
        let (_, g) = nilm_tensor::loss::bce_with_logits(&y, &Tensor::zeros(&[1, 1, 16]));
        let _ = m.backward(&g);
        let mut zero_params = 0;
        let mut total_params = 0;
        m.visit_params(&mut |p| {
            total_params += 1;
            if p.grad.norm() == 0.0 {
                zero_params += 1;
            }
        });
        // BatchNorm betas may legitimately have tiny grads, but most params
        // must receive gradient.
        assert!(zero_params * 2 < total_params, "{zero_params}/{total_params} params got no grad");
    }
}
