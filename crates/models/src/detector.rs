//! The [`Detector`] abstraction: a binary time-series classifier whose
//! architecture ends in global average pooling followed by a linear head —
//! exactly the shape that makes Class Activation Maps available
//! (Definition II.1). CamAL's ensemble is generic over this trait, which
//! lets the backbone ablation swap the paper's ResNet for InceptionTime.

use crate::inception::{InceptionConfig, InceptionTime};
use crate::resnet::{ResNet, ResNetConfig};
use nilm_tensor::layer::{Layer, Mode};
use nilm_tensor::tensor::Tensor;
use rand::Rng;

/// A CAM-capable classifier: conv trunk → GAP → linear.
pub trait Detector: Layer {
    /// Runs the trunk and returns `(features, logits)`, caching the features
    /// for [`Detector::cam`].
    fn forward_features(&mut self, x: &Tensor, mode: Mode) -> (Tensor, Tensor);

    /// Class Activation Map `[b, t]` for `class`, from the cached features.
    fn cam(&self, class: usize) -> Tensor;

    /// The classifier-head weight matrix `[num_classes, channels]`.
    fn head_weights(&self) -> &Tensor;

    /// Class probabilities `[b, num_classes]` via softmax. Runs in
    /// [`Mode::Infer`] (bit-identical to eval, minus backward bookkeeping).
    fn predict_proba(&mut self, x: &Tensor) -> Tensor {
        let (_, logits) = self.forward_features(x, Mode::Infer);
        nilm_tensor::activation::softmax_rows(&logits)
    }
}

/// The detector architecture used by the CamAL ensemble.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backbone {
    /// The paper's choice (Fig. 4).
    ResNet,
    /// Multi-scale InceptionTime (paper §IV-A discusses it as the deeper
    /// general-purpose alternative) — used by the backbone ablation.
    InceptionTime,
}

/// Builds a detector of the chosen backbone. For ResNet, `kernel` is k_p;
/// for InceptionTime it seeds the multi-scale kernel set
/// `{k, 2k+1, 4k+1}`, preserving CamAL's receptive-field diversity.
pub fn build_detector(
    rng: &mut impl Rng,
    backbone: Backbone,
    kernel: usize,
    width_div: usize,
) -> Box<dyn Detector> {
    match backbone {
        Backbone::ResNet => {
            let cfg = if width_div <= 1 {
                ResNetConfig::paper(kernel)
            } else {
                ResNetConfig::scaled(kernel, width_div)
            };
            Box::new(ResNet::new(rng, cfg))
        }
        Backbone::InceptionTime => {
            let mut cfg = if width_div <= 1 {
                InceptionConfig::paper()
            } else {
                InceptionConfig::scaled(width_div)
            };
            cfg.kernels = [kernel, 2 * kernel + 1, 4 * kernel + 1];
            Box::new(InceptionTime::new(rng, cfg))
        }
    }
}

/// Computes a CAM from cached features and head weights (shared by all
/// GAP-linear detectors): `CAM_c(t) = Σ_k w_ck f_k(t)`.
pub fn cam_from_features(features: &Tensor, head_weights: &Tensor, class: usize) -> Tensor {
    let (b, c, t) = features.dims3();
    assert!(class < head_weights.dims2().0, "class {class} out of range");
    assert_eq!(head_weights.dims2().1, c, "head width mismatch");
    let mut out = Tensor::zeros(&[b, t]);
    for bi in 0..b {
        for ci in 0..c {
            let wv = head_weights.at2(class, ci);
            if wv == 0.0 {
                continue;
            }
            let row = features.row(bi, ci);
            let or = &mut out.data_mut()[bi * t..(bi + 1) * t];
            for (o, &f) in or.iter_mut().zip(row) {
                *o += wv * f;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilm_tensor::init::{randn_tensor, rng};

    #[test]
    fn both_backbones_build_and_expose_cams() {
        let mut r = rng(0);
        let x = randn_tensor(&mut r, &[1, 1, 32], 1.0);
        for backbone in [Backbone::ResNet, Backbone::InceptionTime] {
            let mut det = build_detector(&mut r, backbone, 5, 16);
            let (features, logits) = det.forward_features(&x, Mode::Eval);
            assert_eq!(logits.shape(), &[1, 2], "{backbone:?}");
            assert_eq!(features.dims3().2, 32, "{backbone:?}");
            let cam = det.cam(1);
            assert_eq!(cam.shape(), &[1, 32], "{backbone:?}");
            let p = det.predict_proba(&x);
            assert!((p.at2(0, 0) + p.at2(0, 1) - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn cam_from_features_is_weighted_sum() {
        // features: 2 channels over 3 timesteps; w[1] = [2, -1].
        let features = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[1, 2, 3]);
        let w = Tensor::from_vec(vec![0.0, 0.0, 2.0, -1.0], &[2, 2]);
        let cam = cam_from_features(&features, &w, 1);
        assert_eq!(cam.data(), &[2.0 - 4.0, 4.0 - 5.0, 6.0 - 6.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cam_rejects_bad_class() {
        let features = Tensor::zeros(&[1, 2, 3]);
        let w = Tensor::zeros(&[2, 2]);
        let _ = cam_from_features(&features, &w, 5);
    }
}
