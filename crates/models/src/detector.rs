//! The [`Detector`] abstraction: a binary time-series classifier whose
//! architecture ends in global average pooling followed by a linear head —
//! exactly the shape that makes Class Activation Maps available
//! (Definition II.1). CamAL's ensemble is generic over this trait, which
//! lets the backbone ablation swap the paper's ResNet for InceptionTime.

use crate::inception::{InceptionConfig, InceptionTime};
use crate::resnet::{ResNet, ResNetConfig};
use crate::transapp::{TransApp, TransAppConfig};
use nilm_tensor::layer::{Layer, Mode};
use nilm_tensor::tensor::Tensor;
use rand::Rng;

/// A CAM-capable classifier: conv trunk → GAP → linear.
pub trait Detector: Layer {
    /// Runs the trunk and returns `(features, logits)`, caching the features
    /// for [`Detector::cam`].
    fn forward_features(&mut self, x: &Tensor, mode: Mode) -> (Tensor, Tensor);

    /// Class Activation Map `[b, t]` for `class`, from the cached features.
    fn cam(&self, class: usize) -> Tensor;

    /// The classifier-head weight matrix `[num_classes, channels]`.
    fn head_weights(&self) -> &Tensor;

    /// Class probabilities `[b, num_classes]` via softmax. Runs in
    /// [`Mode::Infer`] (bit-identical to eval, minus backward bookkeeping).
    fn predict_proba(&mut self, x: &Tensor) -> Tensor {
        let (_, logits) = self.forward_features(x, Mode::Infer);
        nilm_tensor::activation::softmax_rows(&logits)
    }
}

/// The detector *family* used when CamAL expands its kernel grid into
/// candidates (the paper's §IV-A backbone ablation swaps this). Per-member
/// architecture is fully described by a [`BackboneSpec`]; `Backbone` only
/// names which family a `kernel` sweep instantiates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backbone {
    /// The paper's choice (Fig. 4).
    ResNet,
    /// Multi-scale InceptionTime (paper §IV-A discusses it as the deeper
    /// general-purpose alternative) — used by the backbone ablation.
    InceptionTime,
}

/// The complete, serializable architecture of one ensemble member.
///
/// Unlike the `(Backbone, kernel)` pair this replaced, a spec carries the
/// full hyper-parameter set of its family, so members with genuinely
/// different spaces (convolutional kernel/width vs transformer
/// `d_model`/heads/layers) can coexist in one ensemble, one checkpoint,
/// and one serving zoo.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackboneSpec {
    /// The paper's residual conv net at kernel k_p, channels divided by
    /// `width_div` (1 = paper scale `[64, 128, 128]`).
    ResNet {
        /// First-conv kernel size k_p.
        kernel: usize,
        /// Channel-width divisor (1 = paper scale).
        width_div: usize,
    },
    /// Multi-scale InceptionTime with branch kernels `{k, 2k+1, 4k+1}`.
    InceptionTime {
        /// Base branch kernel k (expanded to the multi-scale set).
        kernel: usize,
        /// Filter-width divisor (1 = paper scale).
        width_div: usize,
    },
    /// TransApp-style attention detector: conv embedding + transformer
    /// encoder, localized via attention rollout (see
    /// [`crate::transapp::TransApp`]).
    TransApp {
        /// Embedding/model width (must be divisible by `heads`).
        d_model: usize,
        /// Attention heads per encoder block.
        heads: usize,
        /// Feed-forward hidden width.
        d_ff: usize,
        /// Number of transformer encoder blocks.
        layers: usize,
        /// Temporal downsampling before attention (keeps O(t²) in check).
        downsample: usize,
    },
}

impl BackboneSpec {
    /// The spec a `(family, kernel, width_div)` grid point denotes — the
    /// bridge from CamAL's historical kernel sweep to the spec world.
    pub fn from_kernel(backbone: Backbone, kernel: usize, width_div: usize) -> Self {
        match backbone {
            Backbone::ResNet => BackboneSpec::ResNet { kernel, width_div },
            Backbone::InceptionTime => BackboneSpec::InceptionTime { kernel, width_div },
        }
    }

    /// Short family name (`"resnet"`, `"inception"`, `"transapp"`), used by
    /// registry manifests and the gateway's `/v1/models` rows.
    pub fn family(&self) -> &'static str {
        match self {
            BackboneSpec::ResNet { .. } => "resnet",
            BackboneSpec::InceptionTime { .. } => "inception",
            BackboneSpec::TransApp { .. } => "transapp",
        }
    }

    /// A compact human-readable description of the full spec, e.g.
    /// `resnet(k5/div16)` or `transapp(d16xh2,ff32,l1,ds4)`.
    pub fn describe(&self) -> String {
        match *self {
            BackboneSpec::ResNet { kernel, width_div } => {
                format!("resnet(k{kernel}/div{width_div})")
            }
            BackboneSpec::InceptionTime { kernel, width_div } => {
                format!("inception(k{kernel}/div{width_div})")
            }
            BackboneSpec::TransApp { d_model, heads, d_ff, layers, downsample } => {
                format!("transapp(d{d_model}xh{heads},ff{d_ff},l{layers},ds{downsample})")
            }
        }
    }

    /// The conv kernel of convolutional specs (`None` for TransApp, whose
    /// hyper-parameter space has no k_p axis).
    pub fn kernel(&self) -> Option<usize> {
        match *self {
            BackboneSpec::ResNet { kernel, .. } | BackboneSpec::InceptionTime { kernel, .. } => {
                Some(kernel)
            }
            BackboneSpec::TransApp { .. } => None,
        }
    }
}

/// Builds a detector from its full architecture spec (the constructor used
/// by ensemble training *and* checkpoint loading, so both sides agree on
/// layer shapes). For ResNet, `kernel` is k_p; for InceptionTime it seeds
/// the multi-scale kernel set `{k, 2k+1, 4k+1}`, preserving CamAL's
/// receptive-field diversity; TransApp ignores the kernel axis entirely.
pub fn build_from_spec(rng: &mut impl Rng, spec: BackboneSpec) -> Box<dyn Detector> {
    match spec {
        BackboneSpec::ResNet { kernel, width_div } => {
            let cfg = if width_div <= 1 {
                ResNetConfig::paper(kernel)
            } else {
                ResNetConfig::scaled(kernel, width_div)
            };
            Box::new(ResNet::new(rng, cfg))
        }
        BackboneSpec::InceptionTime { kernel, width_div } => {
            let mut cfg = if width_div <= 1 {
                InceptionConfig::paper()
            } else {
                InceptionConfig::scaled(width_div)
            };
            cfg.kernels = [kernel, 2 * kernel + 1, 4 * kernel + 1];
            Box::new(InceptionTime::new(rng, cfg))
        }
        BackboneSpec::TransApp { d_model, heads, d_ff, layers, downsample } => {
            let cfg = TransAppConfig { d_model, heads, d_ff, layers, downsample };
            Box::new(TransApp::new(rng, cfg))
        }
    }
}

/// Computes a CAM from cached features and head weights (shared by all
/// GAP-linear detectors): `CAM_c(t) = Σ_k w_ck f_k(t)`.
pub fn cam_from_features(features: &Tensor, head_weights: &Tensor, class: usize) -> Tensor {
    let (b, c, t) = features.dims3();
    assert!(class < head_weights.dims2().0, "class {class} out of range");
    assert_eq!(head_weights.dims2().1, c, "head width mismatch");
    let mut out = Tensor::zeros(&[b, t]);
    for bi in 0..b {
        for ci in 0..c {
            let wv = head_weights.at2(class, ci);
            if wv == 0.0 {
                continue;
            }
            let row = features.row(bi, ci);
            let or = &mut out.data_mut()[bi * t..(bi + 1) * t];
            for (o, &f) in or.iter_mut().zip(row) {
                *o += wv * f;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilm_tensor::init::{randn_tensor, rng};

    #[test]
    fn all_backbones_build_and_expose_cams() {
        let mut r = rng(0);
        let x = randn_tensor(&mut r, &[1, 1, 32], 1.0);
        let specs = [
            BackboneSpec::ResNet { kernel: 5, width_div: 16 },
            BackboneSpec::InceptionTime { kernel: 5, width_div: 16 },
            BackboneSpec::TransApp { d_model: 8, heads: 2, d_ff: 16, layers: 1, downsample: 4 },
        ];
        for spec in specs {
            let mut det = build_from_spec(&mut r, spec);
            let (features, logits) = det.forward_features(&x, Mode::Eval);
            assert_eq!(logits.shape(), &[1, 2], "{spec:?}");
            assert_eq!(features.dims3().2, 32, "{spec:?}");
            let cam = det.cam(1);
            assert_eq!(cam.shape(), &[1, 32], "{spec:?}");
            let p = det.predict_proba(&x);
            assert!((p.at2(0, 0) + p.at2(0, 1) - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn spec_descriptions_and_kernel_axis() {
        let r5 = BackboneSpec::from_kernel(Backbone::ResNet, 5, 16);
        assert_eq!(r5, BackboneSpec::ResNet { kernel: 5, width_div: 16 });
        assert_eq!(r5.family(), "resnet");
        assert_eq!(r5.kernel(), Some(5));
        assert_eq!(r5.describe(), "resnet(k5/div16)");
        let i7 = BackboneSpec::from_kernel(Backbone::InceptionTime, 7, 1);
        assert_eq!(i7.family(), "inception");
        assert_eq!(i7.kernel(), Some(7));
        let ta =
            BackboneSpec::TransApp { d_model: 16, heads: 2, d_ff: 32, layers: 1, downsample: 4 };
        assert_eq!(ta.family(), "transapp");
        assert_eq!(ta.kernel(), None);
        assert_eq!(ta.describe(), "transapp(d16xh2,ff32,l1,ds4)");
    }

    #[test]
    fn cam_from_features_is_weighted_sum() {
        // features: 2 channels over 3 timesteps; w[1] = [2, -1].
        let features = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[1, 2, 3]);
        let w = Tensor::from_vec(vec![0.0, 0.0, 2.0, -1.0], &[2, 2]);
        let cam = cam_from_features(&features, &w, 1);
        assert_eq!(cam.data(), &[2.0 - 4.0, 4.0 - 5.0, 6.0 - 6.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cam_rejects_bad_class() {
        let features = Tensor::zeros(&[1, 2, 3]);
        let w = Tensor::zeros(&[2, 2]);
        let _ = cam_from_features(&features, &w, 5);
    }
}
