//! Training loops shared by all baselines: strongly supervised (per-timestep
//! BCE), weakly supervised MIL (window-level BCE through LSE pooling), and
//! soft-label training (targets in `[0,1]`, RQ5).

use crate::crnn::LsePool;
use nilm_data::windows::WindowSet;
use nilm_tensor::layer::{Layer, Mode};
use nilm_tensor::loss::bce_with_logits;
use nilm_tensor::optim::{clip_grad_norm, Adam};
use nilm_tensor::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Hyper-parameters for the training loops.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Gradient-norm clip (recurrent nets need it); 0 disables.
    pub clip: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { epochs: 5, batch_size: 16, lr: 1e-3, clip: 5.0, seed: 7 }
    }
}

/// Outcome of a training run.
#[derive(Clone, Debug, Default)]
pub struct TrainStats {
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Wall-clock seconds per epoch.
    pub epoch_secs: Vec<f64>,
    /// Total wall-clock seconds.
    pub total_secs: f64,
}

impl TrainStats {
    /// Final epoch loss (infinity when no epochs ran).
    pub fn final_loss(&self) -> f32 {
        self.epoch_losses.last().copied().unwrap_or(f32::INFINITY)
    }

    /// Mean seconds per epoch.
    pub fn secs_per_epoch(&self) -> f64 {
        if self.epoch_secs.is_empty() {
            0.0
        } else {
            self.epoch_secs.iter().sum::<f64>() / self.epoch_secs.len() as f64
        }
    }
}

fn run_epochs(
    cfg: &TrainConfig,
    data: &WindowSet,
    mut step: impl FnMut(&[usize]) -> f32,
) -> TrainStats {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut stats = TrainStats::default();
    let start = Instant::now();
    for _ in 0..cfg.epochs {
        let epoch_start = Instant::now();
        let order = data.shuffled_indices(&mut rng);
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            loss_sum += step(chunk) as f64;
            batches += 1;
        }
        stats.epoch_losses.push(if batches == 0 {
            0.0
        } else {
            (loss_sum / batches as f64) as f32
        });
        stats.epoch_secs.push(epoch_start.elapsed().as_secs_f64());
    }
    stats.total_secs = start.elapsed().as_secs_f64();
    stats
}

/// Trains a sequence-to-sequence model with per-timestep BCE against the
/// strong (per-timestep) labels. Each window contributes `window_len` labels.
pub fn train_strong(model: &mut dyn Layer, data: &WindowSet, cfg: &TrainConfig) -> TrainStats {
    let mut opt = Adam::new(cfg.lr);
    let mut x = Tensor::zeros(&[0]);
    run_epochs(cfg, data, |chunk| {
        data.batch_inputs_into(chunk, &mut x);
        let y = data.batch_strong_labels(chunk);
        model.zero_grad();
        let logits = model.forward(&x, Mode::Train);
        let (loss, grad) = bce_with_logits(&logits, &y);
        model.backward(&grad);
        if cfg.clip > 0.0 {
            clip_grad_norm(model, cfg.clip);
        }
        opt.step(model);
        loss
    })
}

/// Trains a sequence-to-sequence model on *soft* per-timestep targets in
/// `[0, 1]` (CamAL-generated labels, RQ5 / Fig. 10).
pub fn train_soft(
    model: &mut dyn Layer,
    data: &WindowSet,
    soft_targets: &[Vec<f32>],
    cfg: &TrainConfig,
) -> TrainStats {
    assert_eq!(soft_targets.len(), data.len(), "one soft target per window required");
    let w = data.window_len();
    let mut opt = Adam::new(cfg.lr);
    let mut x = Tensor::zeros(&[0]);
    let mut target = Tensor::zeros(&[0]);
    run_epochs(cfg, data, |chunk| {
        data.batch_inputs_into(chunk, &mut x);
        target.resize(&[chunk.len(), 1, w]);
        for (bi, &i) in chunk.iter().enumerate() {
            assert_eq!(soft_targets[i].len(), w, "soft target {i} length mismatch");
            target.data_mut()[bi * w..(bi + 1) * w].copy_from_slice(&soft_targets[i]);
        }
        model.zero_grad();
        let logits = model.forward(&x, Mode::Train);
        let (loss, grad) = bce_with_logits(&logits, &target);
        model.backward(&grad);
        if cfg.clip > 0.0 {
            clip_grad_norm(model, cfg.clip);
        }
        opt.step(model);
        loss
    })
}

/// Trains a sequence-to-sequence model in the Multiple-Instance-Learning
/// regime: frame logits are pooled by log-sum-exp into one window logit and
/// matched against the weak (one-per-window) label. This is CRNN Weak.
pub fn train_weak_mil(model: &mut dyn Layer, data: &WindowSet, cfg: &TrainConfig) -> TrainStats {
    let mut opt = Adam::new(cfg.lr);
    let mut pool = LsePool::new(4.0);
    let mut x = Tensor::zeros(&[0]);
    run_epochs(cfg, data, |chunk| {
        data.batch_inputs_into(chunk, &mut x);
        let y = data.batch_weak_targets(chunk);
        model.zero_grad();
        let frame_logits = model.forward(&x, Mode::Train);
        let window_logits = pool.forward(&frame_logits, Mode::Train);
        let (loss, grad) = bce_with_logits(&window_logits, &y);
        let g_frames = pool.backward(&grad);
        model.backward(&g_frames);
        if cfg.clip > 0.0 {
            clip_grad_norm(model, cfg.clip);
        }
        opt.step(model);
        loss
    })
}

/// Runs the model in eval mode and returns per-timestep probabilities
/// (sigmoid of logits) for every window, in order.
pub fn predict_proba_frames(
    model: &mut dyn Layer,
    data: &WindowSet,
    batch: usize,
) -> Vec<Vec<f32>> {
    let mut out = Vec::with_capacity(data.len());
    let indices: Vec<usize> = (0..data.len()).collect();
    let mut x = Tensor::zeros(&[0]);
    for chunk in indices.chunks(batch.max(1)) {
        data.batch_inputs_into(chunk, &mut x);
        let logits = model.forward(&x, Mode::Eval);
        let (b, _, t) = logits.dims3();
        for bi in 0..b {
            out.push(
                logits.row(bi, 0).iter().map(|&v| nilm_tensor::activation::sigmoid(v)).collect(),
            );
        }
        debug_assert_eq!(b, chunk.len());
        let _ = t;
    }
    out
}

/// Thresholds frame probabilities at 0.5 into binary status.
pub fn proba_to_status(proba: &[f32]) -> Vec<u8> {
    proba.iter().map(|&p| (p >= 0.5) as u8).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bigru::{BiGruConfig, BiGruModel};
    use crate::crnn::{Crnn, CrnnConfig};
    use nilm_data::preprocess::Window;
    use nilm_tensor::init::rng;

    /// A trivially learnable dataset: appliance ON exactly when the input is
    /// high.
    fn toy_data(n: usize, w: usize) -> WindowSet {
        let mut r = rng(5);
        let mut windows = Vec::new();
        for i in 0..n {
            let on = i % 2 == 0;
            let mut input = vec![0.1f32; w];
            let mut status = vec![0u8; w];
            if on {
                let start = w / 4 + (i % 3);
                for t in start..start + w / 4 {
                    input[t] = 2.0 + nilm_tensor::init::randn(&mut r) * 0.05;
                    status[t] = 1;
                }
            }
            windows.push(Window {
                input: input.clone(),
                aggregate_w: input.iter().map(|v| v * 1000.0).collect(),
                status,
                appliance_w: vec![0.0; w],
                weak_label: on as u8,
                house_id: i,
            });
        }
        WindowSet::new(windows)
    }

    #[test]
    fn strong_training_reduces_loss() {
        let mut r = rng(0);
        let mut model = BiGruModel::new(&mut r, BiGruConfig::scaled(8));
        let data = toy_data(16, 32);
        let cfg = TrainConfig { epochs: 4, batch_size: 8, ..Default::default() };
        let stats = train_strong(&mut model, &data, &cfg);
        assert_eq!(stats.epoch_losses.len(), 4);
        assert!(
            stats.final_loss() < stats.epoch_losses[0],
            "loss did not decrease: {:?}",
            stats.epoch_losses
        );
    }

    #[test]
    fn weak_mil_training_reduces_loss() {
        let mut r = rng(1);
        let mut model = Crnn::new(&mut r, CrnnConfig::scaled(8));
        let data = toy_data(16, 32);
        let cfg = TrainConfig { epochs: 4, batch_size: 8, ..Default::default() };
        let stats = train_weak_mil(&mut model, &data, &cfg);
        assert!(stats.final_loss() < stats.epoch_losses[0]);
    }

    #[test]
    fn soft_training_accepts_probabilities() {
        let mut r = rng(2);
        let mut model = BiGruModel::new(&mut r, BiGruConfig::scaled(8));
        let data = toy_data(8, 16);
        let soft: Vec<Vec<f32>> = data
            .windows
            .iter()
            .map(|w| w.status.iter().map(|&s| 0.2 + 0.6 * s as f32).collect())
            .collect();
        let cfg = TrainConfig { epochs: 2, batch_size: 4, ..Default::default() };
        let stats = train_soft(&mut model, &data, &soft, &cfg);
        assert!(stats.final_loss().is_finite());
    }

    #[test]
    fn predictions_have_window_length() {
        let mut r = rng(3);
        let mut model = BiGruModel::new(&mut r, BiGruConfig::scaled(8));
        let data = toy_data(6, 16);
        let probs = predict_proba_frames(&mut model, &data, 4);
        assert_eq!(probs.len(), 6);
        assert!(probs.iter().all(|p| p.len() == 16));
        assert!(probs.iter().flatten().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn status_thresholding() {
        assert_eq!(proba_to_status(&[0.1, 0.5, 0.9]), vec![0, 1, 1]);
    }
}
