//! Shared plumbing for encoder–decoder models: channel concatenation /
//! splitting and length matching (crop or pad-by-repeat) with exact
//! gradient counterparts.

use nilm_tensor::tensor::Tensor;

/// Concatenates two `[b, c, t]` tensors along channels.
pub(crate) fn concat_channels(a: &Tensor, b: &Tensor) -> Tensor {
    let (ba, ca, ta) = a.dims3();
    let (bb, cb, tb) = b.dims3();
    assert_eq!((ba, ta), (bb, tb), "concat shape mismatch");
    let mut out = Tensor::zeros(&[ba, ca + cb, ta]);
    for bi in 0..ba {
        for ci in 0..ca {
            out.row_mut(bi, ci).copy_from_slice(a.row(bi, ci));
        }
        for ci in 0..cb {
            out.row_mut(bi, ca + ci).copy_from_slice(b.row(bi, ci));
        }
    }
    out
}

/// Splits a channel-concatenated gradient back into `[.., ca, ..]` and the
/// remainder.
pub(crate) fn split_channels(g: &Tensor, ca: usize) -> (Tensor, Tensor) {
    let (b, c, t) = g.dims3();
    assert!(ca <= c, "split beyond channel count");
    let cb = c - ca;
    let mut ga = Tensor::zeros(&[b, ca, t]);
    let mut gb = Tensor::zeros(&[b, cb, t]);
    for bi in 0..b {
        for ci in 0..ca {
            ga.row_mut(bi, ci).copy_from_slice(g.row(bi, ci));
        }
        for ci in 0..cb {
            gb.row_mut(bi, ci).copy_from_slice(g.row(bi, ca + ci));
        }
    }
    (ga, gb)
}

/// Crops or right-pads (repeating the final sample) to reach `target` length.
pub(crate) fn match_len(x: &Tensor, target: usize) -> Tensor {
    let (b, c, t) = x.dims3();
    if t == target {
        return x.clone();
    }
    assert!(t > 0);
    let mut out = Tensor::zeros(&[b, c, target]);
    for bi in 0..b {
        for ci in 0..c {
            let src = x.row(bi, ci);
            let dst = out.row_mut(bi, ci);
            for (ti, d) in dst.iter_mut().enumerate() {
                *d = src[ti.min(t - 1)];
            }
        }
    }
    out
}

/// Backward of [`match_len`]: maps a gradient of length `target` back to
/// length `t_src` (cropped positions get zero; padded positions accumulate
/// into the final sample).
pub(crate) fn match_len_backward(g: &Tensor, t_src: usize) -> Tensor {
    let (b, c, t) = g.dims3();
    if t == t_src {
        return g.clone();
    }
    assert!(t_src > 0);
    let mut out = Tensor::zeros(&[b, c, t_src]);
    for bi in 0..b {
        for ci in 0..c {
            let src = g.row(bi, ci);
            let dst = out.row_mut(bi, ci);
            for (ti, &v) in src.iter().enumerate() {
                dst[ti.min(t_src - 1)] += v;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_split_roundtrip() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[1, 2, 3]);
        let b = Tensor::from_vec((6..9).map(|i| i as f32).collect(), &[1, 1, 3]);
        let cat = concat_channels(&a, &b);
        assert_eq!(cat.shape(), &[1, 3, 3]);
        let (ra, rb) = split_channels(&cat, 2);
        assert_eq!(ra, a);
        assert_eq!(rb, b);
    }

    #[test]
    fn match_len_pads_and_crops() {
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 1, 2]);
        let padded = match_len(&x, 4);
        assert_eq!(padded.data(), &[1.0, 2.0, 2.0, 2.0]);
        let cropped = match_len(&padded, 2);
        assert_eq!(cropped.data(), &[1.0, 2.0]);
    }

    #[test]
    fn match_len_backward_conserves_gradient_mass() {
        let g = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 4]);
        let back = match_len_backward(&g, 2);
        assert_eq!(back.data(), &[1.0, 9.0]);
        assert_eq!(back.sum(), g.sum());
    }

    #[test]
    fn match_len_identity_when_equal() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 1, 3]);
        assert_eq!(match_len(&x, 3), x);
        assert_eq!(match_len_backward(&x, 3), x);
    }
}
