//! The BiGRU baseline of Precioso & Gomez-Ullate (paper ref. \[28\]): a light
//! convolutional embedding followed by a bidirectional GRU and a dense
//! per-timestep head (~244K parameters at paper scale, Table II).

use nilm_tensor::prelude::*;
use rand::Rng;

/// Width configuration for the BiGRU baseline.
#[derive(Clone, Copy, Debug)]
pub struct BiGruConfig {
    /// Channels of the embedding convolution.
    pub conv_channels: usize,
    /// Hidden units per GRU direction.
    pub gru_hidden: usize,
    /// Width of the intermediate dense layer.
    pub dense: usize,
}

impl BiGruConfig {
    /// Paper-scale configuration.
    pub fn paper() -> Self {
        BiGruConfig { conv_channels: 32, gru_hidden: 160, dense: 64 }
    }

    /// Width-reduced configuration for laptop-scale experiments.
    pub fn scaled(div: usize) -> Self {
        let d = div.max(1);
        BiGruConfig {
            conv_channels: (16 / d).max(4),
            gru_hidden: (64 / d).max(8),
            dense: (64 / d).max(8),
        }
    }
}

/// BiGRU sequence-to-sequence model producing `[b, 1, t]` logits.
pub struct BiGruModel {
    net: Sequential,
}

impl BiGruModel {
    /// Builds the model for univariate input.
    pub fn new(rng: &mut impl Rng, cfg: BiGruConfig) -> Self {
        let net = Sequential::new()
            .push(Conv1d::new(rng, 1, cfg.conv_channels, 4, Padding::Same))
            .push(ReLU::default())
            .push(BiGru::new(rng, cfg.conv_channels, cfg.gru_hidden))
            .push(TimeDistributed::new(rng, 2 * cfg.gru_hidden, cfg.dense))
            .push(ReLU::default())
            .push(TimeDistributed::new(rng, cfg.dense, 1));
        BiGruModel { net }
    }
}

impl Layer for BiGruModel {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        self.net.forward(x, mode)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        self.net.backward(grad)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.net.visit_params(f);
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.net.visit_state(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilm_tensor::init::{randn_tensor, rng};

    #[test]
    fn shapes_roundtrip() {
        let mut r = rng(0);
        let mut m = BiGruModel::new(&mut r, BiGruConfig::scaled(4));
        let x = randn_tensor(&mut r, &[2, 1, 20], 1.0);
        let y = m.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 1, 20]);
        let gx = m.backward(&Tensor::full(&[2, 1, 20], 0.1));
        assert_eq!(gx.shape(), &[2, 1, 20]);
    }

    #[test]
    fn paper_scale_param_count() {
        let mut r = rng(1);
        let mut m = BiGruModel::new(&mut r, BiGruConfig::paper());
        let n = m.num_params();
        // Table II reports 244K; accept the right order of magnitude.
        assert!((100_000..400_000).contains(&n), "param count {n}");
    }
}
