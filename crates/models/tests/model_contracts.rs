//! Contract tests every model must satisfy: shape preservation across
//! lengths (including odd ones), eval-mode determinism, finite gradients,
//! and learnability on a separable toy problem.

use nilm_models::baselines::BaselineKind;
use nilm_models::detector::{build_from_spec, Backbone, BackboneSpec};
use nilm_tensor::init::{randn_tensor, rng};
use nilm_tensor::layer::Mode;
use nilm_tensor::loss::bce_with_logits;
use nilm_tensor::tensor::Tensor;

const WIDTH_DIV: usize = 16;

#[test]
fn all_baselines_preserve_shape_for_odd_and_even_lengths() {
    let mut r = rng(0);
    for &kind in BaselineKind::all() {
        for len in [64usize, 96, 128, 130] {
            let mut model = kind.build(&mut r, WIDTH_DIV);
            let x = randn_tensor(&mut r, &[2, 1, len], 1.0);
            let y = model.forward(&x, Mode::Eval);
            assert_eq!(y.shape(), &[2, 1, len], "{} at len {len}", kind.name());
        }
    }
}

#[test]
fn all_baselines_are_deterministic_in_eval_mode() {
    let mut r = rng(1);
    for &kind in BaselineKind::all() {
        let mut model = kind.build(&mut r, WIDTH_DIV);
        let x = randn_tensor(&mut r, &[1, 1, 64], 1.0);
        let y1 = model.forward(&x, Mode::Eval);
        let y2 = model.forward(&x, Mode::Eval);
        for (a, b) in y1.data().iter().zip(y2.data()) {
            assert_eq!(a, b, "{} is nondeterministic in eval", kind.name());
        }
    }
}

#[test]
fn all_baselines_produce_finite_gradients() {
    let mut r = rng(2);
    for &kind in BaselineKind::all() {
        let mut model = kind.build(&mut r, WIDTH_DIV);
        let x = randn_tensor(&mut r, &[2, 1, 64], 1.0);
        let y = model.forward(&x, Mode::Train);
        let (_, g) = bce_with_logits(&y, &Tensor::zeros(&[2, 1, 64]));
        let gx = model.backward(&g);
        assert!(gx.all_finite(), "{} input grad not finite", kind.name());
        model.visit_params(&mut |p| {
            assert!(p.grad.all_finite(), "{} param grad not finite", kind.name());
        });
    }
}

#[test]
fn all_baselines_have_nonzero_params_and_respond_to_input() {
    let mut r = rng(3);
    for &kind in BaselineKind::all() {
        let mut model = kind.build(&mut r, WIDTH_DIV);
        assert!(model.num_params() > 100, "{}", kind.name());
        let x1 = Tensor::zeros(&[1, 1, 64]);
        let x2 = Tensor::full(&[1, 1, 64], 2.0);
        let y1 = model.forward(&x1, Mode::Eval);
        let y2 = model.forward(&x2, Mode::Eval);
        let diff: f32 = y1.data().iter().zip(y2.data()).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-6, "{} ignores its input", kind.name());
    }
}

#[test]
fn both_detectors_have_cam_peaking_near_discriminative_region() {
    // Train briefly on a trivially separable problem; the class-1 CAM of a
    // positive window should put more mass on the plateau region than off it.
    use nilm_tensor::loss::cross_entropy;
    use nilm_tensor::optim::Adam;

    for backbone in [Backbone::ResNet, Backbone::InceptionTime] {
        let mut r = rng(4);
        let mut det = build_from_spec(&mut r, BackboneSpec::from_kernel(backbone, 5, WIDTH_DIV));
        let w = 64;
        // Build batch: even = positive with plateau at [16, 32), odd = flat.
        let make_batch = |r: &mut rand::rngs::StdRng| {
            let mut data = Vec::new();
            for i in 0..8 {
                let mut row = vec![0.1f32; w];
                if i % 2 == 0 {
                    for v in row[16..32].iter_mut() {
                        *v = 2.0;
                    }
                }
                for v in row.iter_mut() {
                    *v += nilm_tensor::init::randn(r).abs() * 0.01;
                }
                data.extend(row);
            }
            Tensor::from_vec(data, &[8, 1, w])
        };
        let labels: Vec<usize> = (0..8).map(|i| usize::from(i % 2 == 0)).collect();
        let mut opt = Adam::new(2e-3);
        for _ in 0..30 {
            let x = make_batch(&mut r);
            det.zero_grad();
            let (_, logits) = det.forward_features(&x, Mode::Train);
            let (_, g) = cross_entropy(&logits, &labels);
            det.backward(&g);
            opt.step(det.as_mut());
        }
        // CAM of a fresh positive window.
        let mut pos = vec![0.1f32; w];
        for v in pos[16..32].iter_mut() {
            *v = 2.0;
        }
        let x = Tensor::from_vec(pos, &[1, 1, w]);
        let _ = det.forward_features(&x, Mode::Eval);
        let cam = det.cam(1);
        let on_mass: f32 = cam.data()[16..32].iter().map(|v| v.max(0.0)).sum();
        let off_mass: f32 =
            cam.data()[..16].iter().chain(&cam.data()[32..]).map(|v| v.max(0.0)).sum();
        let on_density = on_mass / 16.0;
        let off_density = off_mass / 48.0;
        assert!(
            on_density > off_density,
            "{backbone:?}: CAM density on plateau {on_density} <= off {off_density}"
        );
    }
}
