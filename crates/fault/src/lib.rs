//! # nilm_fault
//!
//! Deterministic fault injection for the serving stack.
//!
//! Production code marks **named fault points** — places where a realistic
//! deployment can fail (a checkpoint read, a worker thread, a queue push) —
//! by calling [`fires`] (or the [`maybe_panic`] convenience) with the
//! point's name. Unarmed, a fault point is a single relaxed atomic load
//! and a predictable branch: it costs nothing measurable and injects
//! nothing. Armed, the point fails a deterministic pseudo-random fraction
//! of its executions, so chaos tests and CI sweeps reproduce exactly.
//!
//! Arming happens two ways:
//!
//! - **Environment** — `NILM_FAULTS=<point>:<rate>:<seed>[:<max>][,...]`,
//!   parsed once on first use. `rate` is the failure probability in
//!   `[0, 1]`, `seed` makes the decision sequence deterministic, and the
//!   optional `max` bounds how many times the point may fire.
//!   Example: `NILM_FAULTS=batcher.panic:0.1:7,persist.load.corrupt:0.1:11`.
//! - **Programmatic** — [`arm`] / [`arm_limited`] / [`disarm`] /
//!   [`disarm_all`], which tests use to sweep points one at a time.
//!
//! Decisions are derived from a splitmix64 hash of `(seed, trial index)`,
//! so each point's fire/no-fire sequence depends only on its seed and how
//! many times it has been evaluated — never on wall-clock time, thread
//! scheduling, or other points.
//!
//! The registered fault points of this workspace (the chaos suites sweep
//! every one):
//!
//! | point                  | armed effect                                       |
//! |------------------------|----------------------------------------------------|
//! | `persist.load.corrupt` | checkpoint file read yields a corrupt-data error   |
//! | `persist.save.torn`    | checkpoint save crashes after a partial temp write |
//! | `fleet.shard.panic`    | a fleet worker shard panics mid-pass               |
//! | `batcher.panic`        | the gateway batcher panics with jobs in flight     |
//! | `gateway.slow_pass`    | a batcher pass stalls past the request deadline    |
//! | `queue.full`           | a queue push reports `Full` (load shed)            |
//! | `reactor.panic`        | the gateway's epoll event loop panics mid-tick     |
//! | `worker.wedge`         | a gateway worker naps past the request deadline    |
//! | `conn.short_write`     | socket flushes write 1 byte then report blocked    |
//!
//! ```
//! // Unarmed points never fire.
//! assert!(!nilm_fault::fires("docs.example"));
//! // Armed at rate 1.0 they always fire (until the optional limit).
//! nilm_fault::arm_limited("docs.example", 1.0, 42, Some(2));
//! assert!(nilm_fault::fires("docs.example"));
//! assert!(nilm_fault::fires("docs.example"));
//! assert!(!nilm_fault::fires("docs.example"), "fire limit reached");
//! nilm_fault::disarm_all();
//! ```

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Global arming state: the fast path reads this one atomic.
const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;
static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// One armed fault point.
#[derive(Clone, Debug)]
struct Point {
    /// Failure probability per evaluation, in `[0, 1]`.
    rate: f64,
    /// Seed of the deterministic decision sequence.
    seed: u64,
    /// Maximum times this point may fire (`None` = unlimited).
    max_fires: Option<u64>,
    /// Evaluations so far.
    trials: u64,
    /// Fires so far.
    fired: u64,
}

/// Counters of one fault point, for metrics export.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PointStats {
    /// How many times the point was evaluated while armed.
    pub trials: u64,
    /// How many times it fired (injected its failure).
    pub fired: u64,
}

static TABLE: OnceLock<Mutex<BTreeMap<String, Point>>> = OnceLock::new();

fn table() -> MutexGuard<'static, BTreeMap<String, Point>> {
    // A panic while holding this short lock cannot leave the table in a
    // broken state (every critical section is a few plain field updates),
    // so poisoning is cleared instead of propagated — fault injection must
    // keep working inside the very unwinds it causes.
    let lock = TABLE.get_or_init(|| Mutex::new(BTreeMap::new()));
    lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Parses `NILM_FAULTS` into the table. Called once, lazily, from the
/// first evaluation or arming call.
fn init_from_env() {
    let mut t = table();
    if STATE.load(Ordering::Acquire) != STATE_UNINIT {
        return; // Another thread initialized while we waited on the lock.
    }
    let mut armed = false;
    if let Ok(spec) = std::env::var("NILM_FAULTS") {
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            match parse_entry(entry) {
                Some((name, point)) => {
                    t.insert(name, point);
                    armed = true;
                }
                None => eprintln!(
                    "nilm_fault: ignoring malformed NILM_FAULTS entry {entry:?} \
                     (want point:rate:seed[:max])"
                ),
            }
        }
    }
    STATE.store(if armed { STATE_ON } else { STATE_OFF }, Ordering::Release);
}

fn parse_entry(entry: &str) -> Option<(String, Point)> {
    let mut parts = entry.split(':');
    let name = parts.next()?.trim();
    let rate: f64 = parts.next()?.trim().parse().ok()?;
    let seed: u64 = parts.next()?.trim().parse().ok()?;
    let max_fires = match parts.next() {
        Some(m) => Some(m.trim().parse::<u64>().ok()?),
        None => None,
    };
    if parts.next().is_some() || name.is_empty() || !(0.0..=1.0).contains(&rate) {
        return None;
    }
    Some((name.to_string(), Point { rate, seed, max_fires, trials: 0, fired: 0 }))
}

/// splitmix64: a well-mixed 64-bit hash of the (seed, trial) pair.
fn mix(seed: u64, trial: u64) -> u64 {
    let mut z = seed ^ trial.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Evaluates the fault point `name`: returns `true` when the point is
/// armed and its deterministic draw says this execution fails. Unarmed
/// points cost one atomic load.
pub fn fires(name: &str) -> bool {
    match STATE.load(Ordering::Acquire) {
        STATE_OFF => return false,
        STATE_UNINIT => init_from_env(),
        _ => {}
    }
    if STATE.load(Ordering::Acquire) != STATE_ON {
        return false;
    }
    let mut t = table();
    let Some(point) = t.get_mut(name) else { return false };
    let trial = point.trials;
    point.trials += 1;
    if point.max_fires.is_some_and(|m| point.fired >= m) {
        return false;
    }
    // Top 53 bits -> uniform in [0, 1); exact at rate 0.0 and 1.0.
    let draw = (mix(point.seed, trial) >> 11) as f64 / (1u64 << 53) as f64;
    let fire = point.rate >= 1.0 || draw < point.rate;
    if fire {
        point.fired += 1;
    }
    fire
}

/// Panics with `injected fault: <name>` when [`fires`]`(name)`. The
/// standard way to mark a crash-shaped fault point.
pub fn maybe_panic(name: &str) {
    if fires(name) {
        panic!("injected fault: {name}");
    }
}

/// Arms `name` at `rate` with `seed`, unlimited fires. Resets the point's
/// counters if it was already armed.
pub fn arm(name: &str, rate: f64, seed: u64) {
    arm_limited(name, rate, seed, None);
}

/// Arms `name` at `rate` with `seed`, firing at most `max_fires` times
/// (`None` = unlimited).
pub fn arm_limited(name: &str, rate: f64, seed: u64, max_fires: Option<u64>) {
    if STATE.load(Ordering::Acquire) == STATE_UNINIT {
        init_from_env();
    }
    let mut t = table();
    t.insert(
        name.to_string(),
        Point { rate: rate.clamp(0.0, 1.0), seed, max_fires, trials: 0, fired: 0 },
    );
    STATE.store(STATE_ON, Ordering::Release);
}

/// Disarms `name`; other points stay armed.
pub fn disarm(name: &str) {
    if STATE.load(Ordering::Acquire) == STATE_UNINIT {
        init_from_env();
    }
    let mut t = table();
    t.remove(name);
    if t.is_empty() {
        STATE.store(STATE_OFF, Ordering::Release);
    }
}

/// Disarms every fault point and clears all counters. Tests call this in
/// their set-up and tear-down so points never leak between cases.
pub fn disarm_all() {
    let mut t = table();
    t.clear();
    STATE.store(STATE_OFF, Ordering::Release);
}

/// True when at least one fault point is armed.
pub fn armed() -> bool {
    if STATE.load(Ordering::Acquire) == STATE_UNINIT {
        init_from_env();
    }
    STATE.load(Ordering::Acquire) == STATE_ON
}

/// Snapshot of every armed point's counters, sorted by name. Exported on
/// the gateway's `GET /metrics` so injected chaos is observable.
pub fn stats() -> Vec<(String, PointStats)> {
    if STATE.load(Ordering::Acquire) == STATE_UNINIT {
        init_from_env();
    }
    table()
        .iter()
        .map(|(name, p)| (name.clone(), PointStats { trials: p.trials, fired: p.fired }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// The fault table is process-global; unit tests serialize on this.
    static SERIAL: StdMutex<()> = StdMutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        let g = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        disarm_all();
        g
    }

    #[test]
    fn unarmed_points_never_fire() {
        let _g = guard();
        for _ in 0..100 {
            assert!(!fires("never.armed"));
        }
        assert!(!armed());
    }

    #[test]
    fn rate_one_always_fires_and_rate_zero_never() {
        let _g = guard();
        arm("t.always", 1.0, 1);
        arm("t.never", 0.0, 1);
        for _ in 0..50 {
            assert!(fires("t.always"));
            assert!(!fires("t.never"));
        }
        let s: std::collections::BTreeMap<_, _> = stats().into_iter().collect();
        assert_eq!(s["t.always"], PointStats { trials: 50, fired: 50 });
        assert_eq!(s["t.never"], PointStats { trials: 50, fired: 0 });
        disarm_all();
    }

    #[test]
    fn sequences_are_deterministic_per_seed() {
        let _g = guard();
        let run = |seed: u64| -> Vec<bool> {
            arm("t.det", 0.3, seed);
            (0..64).map(|_| fires("t.det")).collect()
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed must replay the same decisions");
        assert_ne!(a, c, "different seeds must diverge");
        let hits = a.iter().filter(|&&f| f).count();
        assert!((5..=35).contains(&hits), "rate 0.3 over 64 trials fired {hits} times");
        disarm_all();
    }

    #[test]
    fn fire_limit_bounds_injections() {
        let _g = guard();
        arm_limited("t.lim", 1.0, 3, Some(2));
        assert!(fires("t.lim"));
        assert!(fires("t.lim"));
        for _ in 0..10 {
            assert!(!fires("t.lim"), "limit of 2 must stop further fires");
        }
        let s: std::collections::BTreeMap<_, _> = stats().into_iter().collect();
        assert_eq!(s["t.lim"].fired, 2);
        disarm_all();
    }

    #[test]
    fn disarm_and_maybe_panic() {
        let _g = guard();
        arm("t.panic", 1.0, 1);
        let err = std::panic::catch_unwind(|| maybe_panic("t.panic"))
            .expect_err("armed point must panic");
        let msg = err.downcast_ref::<String>().expect("panic payload");
        assert!(msg.contains("injected fault: t.panic"), "{msg}");
        disarm("t.panic");
        maybe_panic("t.panic"); // Disarmed: must not panic.
        assert!(!armed());
    }

    #[test]
    fn env_entry_parser_accepts_and_rejects() {
        let _g = guard();
        let (name, p) = parse_entry("batcher.panic:0.25:7").expect("valid entry");
        assert_eq!(name, "batcher.panic");
        assert_eq!((p.rate, p.seed, p.max_fires), (0.25, 7, None));
        let (_, p) = parse_entry(" queue.full : 1.0 : 3 : 5 ").expect("spaces + max");
        assert_eq!((p.rate, p.seed, p.max_fires), (1.0, 3, Some(5)));
        for bad in ["", "noseed:0.5", "p:1.5:1", "p:x:1", "p:0.5:1:2:3", ":0.5:1"] {
            assert!(parse_entry(bad).is_none(), "{bad:?} must be rejected");
        }
    }
}
