//! Cumulative per-`(op, shape, backend)` kernel timing.
//!
//! `nilm_tensor::dispatch` calls [`record`] around every production kernel
//! invocation (autotuner measurement runs excluded); the serving layer
//! surfaces the table through both the JSON and Prometheus exporters, so a
//! dispatch regression ("why did `conv_fwd 8×512×45` fall back to naive?")
//! is visible without re-running the autotuner offline.
//!
//! The table is always on: kernel calls are coarse (one per layer forward,
//! not per element), so one short mutex acquisition each is noise next to
//! the GEMM it just timed.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// Identity of one kernel timing series.
///
/// All fields are `Copy` so the always-on [`record`] path allocates
/// nothing: a map lookup under a short mutex and two additions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct KernelKey {
    /// Operation name (`"conv_fwd"`, `"gemm"`, ...).
    pub op: &'static str,
    /// GEMM-equivalent M dimension.
    pub m: usize,
    /// GEMM-equivalent N dimension.
    pub n: usize,
    /// GEMM-equivalent K dimension.
    pub k: usize,
    /// Worker-pool width the shape was keyed under.
    pub threads: usize,
    /// Winning backend (`"naive"`, `"gemm"`, `"simd"`).
    pub backend: &'static str,
}

/// Cumulative totals for one [`KernelKey`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStat {
    /// Number of kernel invocations.
    pub calls: u64,
    /// Total time spent inside the kernel, nanoseconds.
    pub total_ns: u64,
}

fn table() -> &'static Mutex<BTreeMap<KernelKey, KernelStat>> {
    static TABLE: OnceLock<Mutex<BTreeMap<KernelKey, KernelStat>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn lock() -> std::sync::MutexGuard<'static, BTreeMap<KernelKey, KernelStat>> {
    match table().lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Adds one kernel invocation of `dur_ns` nanoseconds to the series.
pub fn record(key: KernelKey, dur_ns: u64) {
    let mut t = lock();
    let stat = t.entry(key).or_default();
    stat.calls += 1;
    stat.total_ns = stat.total_ns.saturating_add(dur_ns);
}

/// Snapshot of every kernel series, sorted by key.
pub fn stats() -> Vec<(KernelKey, KernelStat)> {
    lock().iter().map(|(k, v)| (*k, *v)).collect()
}

/// Drops all recorded kernel series (tests).
pub fn clear() {
    lock().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(backend: &'static str) -> KernelKey {
        KernelKey { op: "conv_fwd", m: 8, n: 512, k: 45, threads: 4, backend }
    }

    #[test]
    fn record_accumulates_per_key() {
        clear();
        record(key("simd"), 1_000);
        record(key("simd"), 2_000);
        record(key("naive"), 5_000);
        let stats = stats();
        let simd = stats.iter().find(|(k, _)| k.backend == "simd").unwrap();
        assert_eq!(simd.1, KernelStat { calls: 2, total_ns: 3_000 });
        let naive = stats.iter().find(|(k, _)| k.backend == "naive").unwrap();
        assert_eq!(naive.1.calls, 1);
        clear();
        assert!(super::stats().is_empty());
    }
}
