//! Slow-request stderr logging, gated by `NILM_LOG`.
//!
//! `NILM_LOG=slow` enables the log with the default threshold
//! ([`DEFAULT_THRESHOLD_MS`]); `NILM_LOG=slow:250` sets a 250 ms
//! threshold. Anything else (or unset) disables it. The gate costs one
//! relaxed atomic load when off, so the check can sit on the request
//! completion path.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Threshold used by plain `NILM_LOG=slow`, in milliseconds.
pub const DEFAULT_THRESHOLD_MS: f64 = 500.0;

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);
/// Threshold in microseconds, valid when STATE == ON.
static THRESHOLD_US: AtomicU64 = AtomicU64::new(0);

#[cold]
fn init_from_env() -> bool {
    let spec = std::env::var("NILM_LOG").unwrap_or_default();
    let spec = spec.trim();
    let threshold_ms = if spec == "slow" {
        Some(DEFAULT_THRESHOLD_MS)
    } else if let Some(rest) = spec.strip_prefix("slow:") {
        rest.trim().parse::<f64>().ok().filter(|t| t.is_finite() && *t >= 0.0)
    } else {
        None
    };
    match threshold_ms {
        Some(t) => {
            THRESHOLD_US.store((t * 1000.0) as u64, Ordering::Relaxed);
            STATE.store(STATE_ON, Ordering::Relaxed);
            true
        }
        None => {
            STATE.store(STATE_OFF, Ordering::Relaxed);
            false
        }
    }
}

/// The active slow-log threshold in milliseconds, or `None` when the log
/// is disabled. One relaxed atomic load after the first call.
#[inline]
pub fn threshold_ms() -> Option<f64> {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => Some(THRESHOLD_US.load(Ordering::Relaxed) as f64 / 1000.0),
        STATE_OFF => None,
        _ => {
            if init_from_env() {
                Some(THRESHOLD_US.load(Ordering::Relaxed) as f64 / 1000.0)
            } else {
                None
            }
        }
    }
}

/// Force-enables the slow log at `ms` (tests / CLI flags); `None`
/// disables. Overrides the environment.
pub fn set_threshold_ms(ms: Option<f64>) {
    match ms {
        Some(t) => {
            THRESHOLD_US.store((t.max(0.0) * 1000.0) as u64, Ordering::Relaxed);
            STATE.store(STATE_ON, Ordering::Relaxed);
        }
        None => STATE.store(STATE_OFF, Ordering::Relaxed),
    }
}

/// Emits one slow-request line to stderr. Callers format the breakdown;
/// this just prefixes and prints so all slow-log output greps alike.
pub fn emit(line: &str) {
    eprintln!("[nilm-slow] {line}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overrides_take_effect_and_disable() {
        set_threshold_ms(Some(250.0));
        assert_eq!(threshold_ms(), Some(250.0));
        set_threshold_ms(None);
        assert_eq!(threshold_ms(), None);
    }
}
