//! Observability backbone for the CamAL serving stack.
//!
//! Everything in here is dependency-free (stdlib only) so it can sit next
//! to `nilm_fault`-style crates at the root of the workspace DAG and be
//! consumed by `nilm_tensor` (kernel dispatch timing) just as easily as by
//! `nilm_serve` (request traces, latency histograms, Prometheus
//! exposition). The crate has four pieces:
//!
//! * [`hist`] — log-linear HDR-style histograms: bounded memory, ~1%
//!   quantile error, exactly mergeable. These replace lossy last-N latency
//!   rings wherever quantiles are reported.
//! * [`trace`] — structured request tracing: trace IDs minted at the
//!   gateway, spans with monotonic start/duration and parent links,
//!   cross-thread context propagation, all recorded into a bounded ring.
//!   Gated by `NILM_TRACE`; when off the cost is one relaxed atomic load.
//! * [`kernel`] — cumulative per-`(op, shape, backend)` kernel timing,
//!   fed by `nilm_tensor::dispatch` and surfaced through both exporters.
//! * [`prom`] — Prometheus text-exposition writer (`# HELP`/`# TYPE`
//!   lines, duplicate-series protection, histogram `le` buckets).
//!
//! The slow-request stderr log lives in [`slowlog`] and is gated by
//! `NILM_LOG` (`NILM_LOG=slow` or `NILM_LOG=slow:<ms>`).
#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hist;
pub mod kernel;
pub mod prom;
pub mod slowlog;
pub mod trace;

pub use hist::Histogram;
pub use trace::{SpanRecord, TraceId};
