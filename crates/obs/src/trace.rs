//! Structured request tracing with a bounded span ring.
//!
//! A *trace* is one request's journey through the stack, identified by a
//! 64-bit ID minted at the gateway (or accepted inbound via
//! `X-Camal-Trace-Id`). A *span* is one named stage of that journey with a
//! monotonic start, a duration, and a parent link. Spans from every thread
//! land in one bounded ring ([`RING_CAPACITY`] entries, oldest evicted) so
//! `GET /debug/trace?id=<trace>` can reassemble a timeline after the fact.
//!
//! Tracing is **off by default**. It turns on via `NILM_TRACE=1|on|true`
//! (or [`set_enabled`] programmatically); when off, every entry point
//! bails after a single relaxed atomic load — the same discipline
//! `nilm_fault` uses, so leaving the hooks compiled into hot paths is
//! free.
//!
//! Cross-thread propagation: the *context* (which traces the current
//! thread is working for, and the parent span of each) lives in a
//! thread-local. Because the batcher coalesces several requests into one
//! fleet pass, a context carries a **set** of `(trace, parent)` entries
//! and each recorded span is duplicated per entry — every coalesced
//! request sees the full stage breakdown in its own trace. Capture the
//! context with [`snapshot`], re-establish it on a worker thread with
//! [`set_context`], and time a stage with [`span`].

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Spans retained in the global ring before the oldest are evicted.
///
/// Sized so the ring's resident set (~160 KiB at ~80 bytes/span) stays
/// cache-friendly: a fully traced request records ~20 spans, so this
/// keeps the last ~100 requests inspectable via `/debug/trace` while the
/// steady-state ring writes land in warm lines. (A 16 K-span ring was
/// measured at >10% gateway throughput overhead on a 1-core box — the
/// cold 1.3 MiB write cycle evicted the serving working set — where this
/// size measures within run-to-run noise.)
pub const RING_CAPACITY: usize = 2 * 1024;

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);

/// A 64-bit trace identifier, rendered as 16 lowercase hex digits on the
/// wire (`X-Camal-Trace-Id`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Wire form: 16 lowercase hex digits.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the wire form (any-case hex, optional shorter strings).
    /// Returns `None` for empty, oversized, or non-hex input and for the
    /// reserved all-zero ID.
    pub fn parse(s: &str) -> Option<TraceId> {
        let s = s.trim();
        if s.is_empty() || s.len() > 16 {
            return None;
        }
        let v = u64::from_str_radix(s, 16).ok()?;
        if v == 0 {
            None
        } else {
            Some(TraceId(v))
        }
    }
}

/// One recorded span.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace: u64,
    /// This span's ID (unique per process, never 0).
    pub span: u64,
    /// Parent span ID, or 0 for a root span.
    pub parent: u64,
    /// Stage name (`"parse"`, `"infer"`, `"kernel"`, ...).
    pub name: &'static str,
    /// Free-form detail (`"op=conv_fwd m=8 n=512 k=45 backend=simd"`).
    /// `Cow` so repeated details (kernel spans cache theirs per shape)
    /// duplicate across coalesced traces without allocating.
    pub detail: Cow<'static, str>,
    /// Start time in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch (monotonic).
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn ring() -> &'static Mutex<VecDeque<SpanRecord>> {
    static RING: OnceLock<Mutex<VecDeque<SpanRecord>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(1024)))
}

fn lock_ring() -> std::sync::MutexGuard<'static, VecDeque<SpanRecord>> {
    match ring().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Whether tracing is enabled. One relaxed atomic load on the hot path;
/// the first call parses `NILM_TRACE` from the environment.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("NILM_TRACE")
        .map(|v| matches!(v.trim(), "1" | "on" | "true" | "ON" | "TRUE"))
        .unwrap_or(false);
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Force tracing on or off (tests, `camal_gateway` flags). Overrides the
/// environment.
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Mints a fresh trace ID: unique per process, never 0, bit-mixed so IDs
/// from concurrent connections don't look sequential on the wire.
pub fn mint_trace_id() -> TraceId {
    // splitmix64 finalizer over a process-wide counter.
    let mut z = NEXT_TRACE.fetch_add(1, Ordering::Relaxed).wrapping_mul(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^= z >> 31;
    TraceId(z | 1)
}

fn next_span_id() -> u64 {
    NEXT_SPAN.fetch_add(1, Ordering::Relaxed)
}

/// Mints a span ID without recording anything, or 0 when tracing is off.
///
/// For call sites that must hand the ID to children *before* the span
/// itself can be recorded — the gateway mints the root "request" span ID
/// at parse time so every stage parents to it, and records the span via
/// [`record_span_with_id`] only after the response bytes hit the socket.
pub fn mint_span_id() -> u64 {
    if enabled() {
        next_span_id()
    } else {
        0
    }
}

/// Records one finished span under a pre-minted ID (see [`mint_span_id`]).
/// A no-op when tracing is off or `span` is 0.
pub fn record_span_with_id(
    trace: TraceId,
    parent: u64,
    span: u64,
    name: &'static str,
    detail: impl Into<Cow<'static, str>>,
    start_ns: u64,
    dur_ns: u64,
) {
    if !enabled() || span == 0 {
        return;
    }
    buffer_or_push(SpanRecord {
        trace: trace.0,
        span,
        parent,
        name,
        detail: detail.into(),
        start_ns,
        dur_ns,
    });
}

/// Records one finished span directly (for call sites that measured the
/// interval themselves, e.g. the reactor). Returns the span's ID so it can
/// be used as a parent, or 0 when tracing is off.
pub fn record_span(
    trace: TraceId,
    parent: u64,
    name: &'static str,
    detail: impl Into<Cow<'static, str>>,
    start_ns: u64,
    dur_ns: u64,
) -> u64 {
    if !enabled() {
        return 0;
    }
    let span = next_span_id();
    buffer_or_push(SpanRecord {
        trace: trace.0,
        span,
        parent,
        name,
        detail: detail.into(),
        start_ns,
        dur_ns,
    });
    span
}

fn push(rec: SpanRecord) {
    let mut ring = lock_ring();
    if ring.len() >= RING_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(rec);
}

thread_local! {
    /// Spans recorded while the thread holds a context accumulate here and
    /// flush to the global ring in one batch when the outermost
    /// [`CtxGuard`] drops (i.e. once per fleet pass) — kernel-dense stages
    /// pay one ring lock per pass instead of one per span.
    static BUF: RefCell<Vec<SpanRecord>> = const { RefCell::new(Vec::new()) };
}

/// Local-buffer high-water mark before an early flush (keeps a pass with
/// thousands of kernel spans from holding the ring's memory bound hostage).
const BUF_FLUSH_LEN: usize = 256;

fn buffer_or_push(rec: SpanRecord) {
    let buffered = CTX.with(|c| !c.borrow().is_empty());
    if !buffered {
        push(rec);
        return;
    }
    let full = BUF.with(|b| {
        let mut b = b.borrow_mut();
        b.push(rec);
        b.len() >= BUF_FLUSH_LEN
    });
    if full {
        flush_buffer();
    }
}

fn flush_buffer() {
    // Drain in place so the buffer keeps its capacity across passes —
    // `mem::take` here would re-grow the Vec from zero every flush.
    BUF.with(|b| {
        let mut b = b.borrow_mut();
        if b.is_empty() {
            return;
        }
        let mut ring = lock_ring();
        for rec in b.drain(..) {
            if ring.len() >= RING_CAPACITY {
                ring.pop_front();
            }
            ring.push_back(rec);
        }
    });
}

/// All spans recorded for `trace`, in recording order. Empty when the
/// trace is unknown or has been evicted from the ring.
pub fn trace_spans(trace: TraceId) -> Vec<SpanRecord> {
    lock_ring().iter().filter(|s| s.trace == trace.0).cloned().collect()
}

/// Number of spans currently held in the ring.
pub fn ring_len() -> usize {
    lock_ring().len()
}

/// Drops every recorded span (tests).
pub fn clear() {
    lock_ring().clear();
}

// ---------------------------------------------------------------------------
// Thread-local context + scoped spans
// ---------------------------------------------------------------------------

/// One `(trace, parent span)` entry of a context. A context holds one
/// entry per request currently being served by the running code — several
/// when the batcher coalesced requests into one fleet pass.
pub type CtxEntry = (u64, u64);

thread_local! {
    static CTX: RefCell<Vec<CtxEntry>> = const { RefCell::new(Vec::new()) };
}

/// Snapshot of the current thread's context, for re-establishing on
/// another thread (fleet shard workers) via [`set_context`].
pub fn snapshot() -> Vec<CtxEntry> {
    if !enabled() {
        return Vec::new();
    }
    CTX.with(|c| c.borrow().clone())
}

/// Guard returned by [`set_context`]; restores the previous context on
/// drop.
pub struct CtxGuard {
    prev: Vec<CtxEntry>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        let outermost = self.prev.is_empty();
        CTX.with(|c| *c.borrow_mut() = std::mem::take(&mut self.prev));
        if outermost {
            flush_buffer();
        }
    }
}

/// Replaces the current thread's context with `entries`, restoring the
/// previous one when the guard drops.
pub fn set_context(entries: &[CtxEntry]) -> CtxGuard {
    let prev = CTX.with(|c| std::mem::replace(&mut *c.borrow_mut(), entries.to_vec()));
    CtxGuard { prev }
}

/// True when tracing is on **and** the current thread carries a context —
/// the cheap pre-check for optional instrumentation like kernel spans.
#[inline]
pub fn in_context() -> bool {
    enabled() && CTX.with(|c| !c.borrow().is_empty())
}

/// Context entries a [`SpanHandle`] keeps inline before spilling to the
/// heap — covers every coalesced batch the gateway produces in practice,
/// so the scoped-span hot path allocates nothing.
const INLINE_ENTRIES: usize = 8;

/// A live scoped span: created by [`span`], records on [`SpanHandle::finish`]
/// or drop. While live, nested [`span`] calls on the same thread parent to
/// it (per context entry).
pub struct SpanHandle {
    name: &'static str,
    detail: Cow<'static, str>,
    start_ns: u64,
    /// `(trace, saved_parent, my_span_id)` per context entry; the first
    /// [`INLINE_ENTRIES`] live inline, the rest spill to `overflow`.
    inline: [(u64, u64, u64); INLINE_ENTRIES],
    inline_len: usize,
    overflow: Vec<(u64, u64, u64)>,
    done: bool,
}

/// Starts a span named `name` for every trace in the current context.
/// Returns `None` (no allocation, no lock) when tracing is off or the
/// thread has no context.
pub fn span(name: &'static str) -> Option<SpanHandle> {
    if !enabled() {
        return None;
    }
    let mut handle = SpanHandle {
        name,
        detail: Cow::Borrowed(""),
        start_ns: 0,
        inline: [(0, 0, 0); INLINE_ENTRIES],
        inline_len: 0,
        overflow: Vec::new(),
        done: false,
    };
    // Rather than swapping the context Vec out and back (two allocations
    // per span), mutate each entry's parent in place and remember the old
    // parent in the handle; `close` restores it.
    let any = CTX.with(|c| {
        let mut ctx = c.borrow_mut();
        if ctx.is_empty() {
            return false;
        }
        for entry in ctx.iter_mut() {
            let span_id = next_span_id();
            let triple = (entry.0, entry.1, span_id);
            if handle.inline_len < INLINE_ENTRIES {
                handle.inline[handle.inline_len] = triple;
                handle.inline_len += 1;
            } else {
                handle.overflow.push(triple);
            }
            entry.1 = span_id;
        }
        true
    });
    if !any {
        return None;
    }
    handle.start_ns = now_ns();
    Some(handle)
}

impl SpanHandle {
    /// Attaches free-form detail text recorded with the span. Pass a
    /// `&'static str` (e.g. an interned per-shape kernel description) to
    /// keep the record allocation-free.
    pub fn set_detail(&mut self, detail: impl Into<Cow<'static, str>>) {
        self.detail = detail.into();
    }

    /// Ends the span now (otherwise it ends when dropped).
    pub fn finish(mut self) {
        self.close();
    }

    fn entries(&self) -> impl Iterator<Item = &(u64, u64, u64)> {
        self.inline[..self.inline_len].iter().chain(self.overflow.iter())
    }

    fn close(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        let dur_ns = now_ns().saturating_sub(self.start_ns);
        // Restore the parents this span replaced when it opened.
        CTX.with(|c| {
            let mut ctx = c.borrow_mut();
            for (i, &(trace, parent, _)) in
                self.inline[..self.inline_len].iter().chain(self.overflow.iter()).enumerate()
            {
                if let Some(entry) = ctx.get_mut(i) {
                    debug_assert_eq!(entry.0, trace);
                    entry.1 = parent;
                }
            }
        });
        // A span only exists inside a context, so the records land in the
        // thread-local buffer: no ring lock until the owning `CtxGuard`
        // drops.
        let full = BUF.with(|b| {
            let mut b = b.borrow_mut();
            for &(trace, parent, span) in self.entries() {
                b.push(SpanRecord {
                    trace,
                    span,
                    parent,
                    name: self.name,
                    detail: self.detail.clone(),
                    start_ns: self.start_ns,
                    dur_ns,
                });
            }
            b.len() >= BUF_FLUSH_LEN
        });
        if full {
            flush_buffer();
        }
    }
}

impl Drop for SpanHandle {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    // The ring and the enabled flag are process-global; serialize tests.
    fn serial() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        match GATE.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn trace_id_round_trips_and_rejects_junk() {
        let id = mint_trace_id();
        assert_eq!(TraceId::parse(&id.to_hex()), Some(id));
        assert_eq!(TraceId::parse("  ABCD  "), Some(TraceId(0xabcd)));
        for bad in ["", "0", "xyz", "112233445566778899", "0x12"] {
            assert_eq!(TraceId::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn minted_ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let id = mint_trace_id();
            assert_ne!(id.0, 0);
            assert!(seen.insert(id.0), "duplicate trace id");
        }
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _g = serial();
        set_enabled(false);
        clear();
        let t = mint_trace_id();
        assert_eq!(record_span(t, 0, "parse", String::new(), 0, 10), 0);
        let _ctx = set_context(&[(t.0, 0)]);
        assert!(span("infer").is_none());
        assert!(trace_spans(t).is_empty());
    }

    #[test]
    fn scoped_spans_nest_and_duplicate_per_context_entry() {
        let _g = serial();
        set_enabled(true);
        clear();
        let (a, b) = (mint_trace_id(), mint_trace_id());
        {
            let _ctx = set_context(&[(a.0, 7), (b.0, 9)]);
            let outer = span("infer").expect("tracing on");
            let mut inner = span("kernel").expect("nested");
            inner.set_detail("backend=simd");
            inner.finish();
            outer.finish();
        }
        set_enabled(false);
        for (t, root) in [(a, 7u64), (b, 9u64)] {
            let spans = trace_spans(t);
            assert_eq!(spans.len(), 2, "{spans:?}");
            let outer = spans.iter().find(|s| s.name == "infer").unwrap();
            let inner = spans.iter().find(|s| s.name == "kernel").unwrap();
            assert_eq!(outer.parent, root);
            assert_eq!(inner.parent, outer.span, "kernel must parent to infer");
            assert_eq!(inner.detail, "backend=simd");
            assert!(outer.dur_ns >= inner.dur_ns);
        }
    }

    #[test]
    fn ring_is_bounded() {
        let _g = serial();
        set_enabled(true);
        clear();
        let t = mint_trace_id();
        for i in 0..(RING_CAPACITY + 100) {
            record_span(t, 0, "parse", String::new(), i as u64, 1);
        }
        assert_eq!(ring_len(), RING_CAPACITY);
        set_enabled(false);
        clear();
    }
}
