//! Log-linear HDR-style latency histograms.
//!
//! Samples are recorded in integer microseconds. Buckets are laid out
//! log-linearly: the first [`SUB_BUCKETS`] buckets are 1 µs wide (values
//! `0..SUB_BUCKETS` µs), and every octave above that is split into
//! [`SUB_BUCKETS`] equal-width sub-buckets. Reporting the midpoint of a
//! bucket therefore bounds the quantile error to
//! `max(value / (2 * SUB_BUCKETS), 1 µs)` — with 128 sub-buckets that is a
//! ~0.4% relative error, comfortably inside the ~1% budget, at a bounded
//! memory cost (the count vector grows on demand and tops out at ~58 KiB
//! for week-long samples).
//!
//! Histograms merge by element-wise addition, which is exact and
//! associative — the property tests in `tests/hist_props.rs` pin both the
//! quantile-error bound and merge associativity.

/// Sub-buckets per octave. Must be a power of two.
pub const SUB_BUCKETS: usize = 128;
const LOG_SUB: u32 = SUB_BUCKETS.trailing_zeros();

/// A mergeable log-linear histogram of non-negative durations.
///
/// All recording APIs take milliseconds as `f64` (the unit the serving
/// stack reports in); storage is integer microseconds.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum_us: u64,
    min_us: u64,
    max_us: u64,
}

fn bucket_index(us: u64) -> usize {
    if us < SUB_BUCKETS as u64 {
        return us as usize;
    }
    let exp = 63 - us.leading_zeros();
    let shift = exp - LOG_SUB;
    let block = (shift + 1) as usize;
    let offset = ((us >> shift) as usize) - SUB_BUCKETS;
    block * SUB_BUCKETS + offset
}

/// Midpoint of bucket `i` in microseconds (the value quantiles report).
fn bucket_mid_us(i: usize) -> f64 {
    let (lo, width) = bucket_bounds_us(i);
    lo as f64 + width as f64 / 2.0
}

/// `(lower_edge, width)` of bucket `i` in microseconds.
fn bucket_bounds_us(i: usize) -> (u64, u64) {
    if i < SUB_BUCKETS {
        return (i as u64, 1);
    }
    let block = i / SUB_BUCKETS;
    let offset = (i % SUB_BUCKETS) as u64;
    let shift = (block - 1) as u32;
    (((SUB_BUCKETS as u64) + offset) << shift, 1u64 << shift)
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self { counts: Vec::new(), count: 0, sum_us: 0, min_us: u64::MAX, max_us: 0 }
    }

    /// Records one sample, given in milliseconds. Negative and non-finite
    /// samples are clamped to zero.
    pub fn record_ms(&mut self, ms: f64) {
        let us = if ms.is_finite() && ms > 0.0 { (ms * 1000.0).round() as u64 } else { 0 };
        self.record_us(us);
    }

    /// Records one sample in integer microseconds.
    pub fn record_us(&mut self, us: u64) {
        let idx = bucket_index(us);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples, in milliseconds.
    pub fn sum_ms(&self) -> f64 {
        self.sum_us as f64 / 1000.0
    }

    /// Mean sample, in milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64 / 1000.0
        }
    }

    /// Smallest recorded sample in milliseconds (0 when empty).
    pub fn min_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min_us as f64 / 1000.0
        }
    }

    /// Largest recorded sample in milliseconds (0 when empty).
    pub fn max_ms(&self) -> f64 {
        self.max_us as f64 / 1000.0
    }

    /// Nearest-rank quantile estimate in milliseconds. `q` is clamped to
    /// `[0, 1]`; an empty histogram reports 0. The estimate is the midpoint
    /// of the bucket holding the nearest-rank sample, so the error versus
    /// the exact sorted quantile is bounded by
    /// `max(exact / (2 * SUB_BUCKETS), 1 µs)` plus the 0.5 µs recording
    /// rounding.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_mid_us(i) / 1000.0;
            }
        }
        self.max_ms()
    }

    /// Merges `other` into `self` by element-wise bucket addition. Exact:
    /// the merged histogram is identical to one that recorded both sample
    /// streams directly, so merge is associative and commutative.
    pub fn merge(&mut self, other: &Histogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Iterates non-empty buckets as `(upper_edge_ms, count)` in ascending
    /// order — the raw form exporters (Prometheus `le` buckets, JSON
    /// distribution dumps) build on.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| {
            let (lo, width) = bucket_bounds_us(i);
            ((lo + width) as f64 / 1000.0, c)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotonic() {
        let mut prev = 0usize;
        for us in 0u64..100_000 {
            let idx = bucket_index(us);
            assert!(idx == prev || idx == prev + 1, "gap at {us}: {prev} -> {idx}");
            let (lo, width) = bucket_bounds_us(idx);
            assert!(us >= lo && us < lo + width, "{us} outside bucket {idx} [{lo}, {lo}+{width})");
            prev = idx;
        }
    }

    #[test]
    fn quantiles_track_exact_values_within_bound() {
        let mut h = Histogram::new();
        let samples: Vec<f64> = (1..=10_000).map(|i| (i as f64) * 0.037).collect();
        for &s in &samples {
            h.record_ms(s);
        }
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let rank = (((q * samples.len() as f64).ceil() as usize).max(1)) - 1;
            let exact = samples[rank];
            let est = h.quantile_ms(q);
            let bound = (exact / (2.0 * SUB_BUCKETS as f64)).max(0.0015);
            assert!((est - exact).abs() <= bound, "q={q}: est {est} vs exact {exact}");
        }
    }

    #[test]
    fn merge_equals_direct_recording() {
        let (mut a, mut b, mut direct) = (Histogram::new(), Histogram::new(), Histogram::new());
        for i in 0..1000u64 {
            let v = (i * i) % 7919;
            if i % 2 == 0 {
                a.record_us(v);
            } else {
                b.record_us(v);
            }
            direct.record_us(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), direct.count());
        assert_eq!(a.counts, direct.counts);
        assert_eq!(a.sum_us, direct.sum_us);
        assert_eq!((a.min_us, a.max_us), (direct.min_us, direct.max_us));
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_ms(0.99), 0.0);
        assert_eq!(h.mean_ms(), 0.0);
        assert_eq!(h.min_ms(), 0.0);
        assert_eq!(h.max_ms(), 0.0);
    }
}
