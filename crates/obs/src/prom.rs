//! Prometheus text-exposition (version 0.0.4) writer.
//!
//! A tiny append-only builder that enforces the format rules the CI gate
//! checks: every series is preceded by exactly one `# HELP` + `# TYPE`
//! pair, samples of one metric family are contiguous, label values are
//! escaped, and emitting the same `metric{labels}` twice panics in debug
//! builds (duplicate series are a scrape error in Prometheus).

use crate::hist::Histogram;
use std::collections::BTreeSet;

/// Append-only exposition-format builder.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
    families: BTreeSet<String>,
    series: BTreeSet<String>,
}

fn escape_label(v: &str) -> String {
    let mut s = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => s.push_str("\\\\"),
            '"' => s.push_str("\\\""),
            '\n' => s.push_str("\\n"),
            _ => s.push(c),
        }
    }
    s
}

fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl PromWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a metric family: one `# HELP` + `# TYPE` pair. Must be
    /// called once per family before its samples; repeat declarations are
    /// ignored so helpers can declare defensively.
    pub fn family(&mut self, name: &str, kind: &str, help: &str) {
        if self.families.insert(name.to_string()) {
            self.out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
        }
    }

    /// Emits one sample line `name{labels} value`.
    ///
    /// Panics (debug assertion) if the identical series was already
    /// emitted — duplicate series make the exposition invalid.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let series = if labels.is_empty() {
            name.to_string()
        } else {
            let inner: Vec<String> =
                labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
            format!("{name}{{{}}}", inner.join(","))
        };
        debug_assert!(self.series.insert(series.clone()), "duplicate series {series}");
        self.out.push_str(&series);
        self.out.push(' ');
        self.out.push_str(&fmt_value(value));
        self.out.push('\n');
    }

    /// Emits a full histogram family member: cumulative `_bucket` lines
    /// (with a closing `le="+Inf"`), `_sum` (seconds), and `_count`.
    /// Values recorded in milliseconds are exposed in seconds, the
    /// Prometheus base unit.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], h: &Histogram) {
        let mut with_le: Vec<(&str, &str)> = labels.to_vec();
        let mut cum = 0u64;
        let mut le_buf: Vec<(String, u64)> = Vec::new();
        for (upper_ms, count) in h.nonzero_buckets() {
            cum += count;
            le_buf.push((format!("{}", upper_ms / 1000.0), cum));
        }
        let bucket = format!("{name}_bucket");
        for (le, cum) in &le_buf {
            with_le.push(("le", le));
            self.sample(&bucket, &with_le, *cum as f64);
            with_le.pop();
        }
        with_le.push(("le", "+Inf"));
        self.sample(&bucket, &with_le, h.count() as f64);
        with_le.pop();
        self.sample(&format!("{name}_sum"), labels, h.sum_ms() / 1000.0);
        self.sample(&format!("{name}_count"), labels, h.count() as f64);
    }

    /// Finishes the exposition and returns the text body.
    pub fn into_string(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_has_help_type_and_escaped_labels() {
        let mut w = PromWriter::new();
        w.family("nilm_requests_total", "counter", "Total requests.");
        w.sample("nilm_requests_total", &[("route", "/v1/localize")], 42.0);
        w.sample("nilm_requests_total", &[("route", "weird\"\\\nroute")], 1.0);
        let text = w.into_string();
        assert!(text.starts_with("# HELP nilm_requests_total Total requests.\n"));
        assert!(text.contains("# TYPE nilm_requests_total counter\n"));
        assert!(text.contains("nilm_requests_total{route=\"/v1/localize\"} 42\n"));
        assert!(text.contains("weird\\\"\\\\\\nroute"));
    }

    #[test]
    #[should_panic(expected = "duplicate series")]
    fn duplicate_series_panics_in_debug() {
        let mut w = PromWriter::new();
        w.family("m", "gauge", "x");
        w.sample("m", &[("a", "b")], 1.0);
        w.sample("m", &[("a", "b")], 2.0);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_close_with_inf() {
        let mut h = Histogram::new();
        for ms in [1.0, 2.0, 2.0, 500.0] {
            h.record_ms(ms);
        }
        let mut w = PromWriter::new();
        w.family("nilm_latency_seconds", "histogram", "Latency.");
        w.histogram("nilm_latency_seconds", &[("route", "/v1/localize")], &h);
        let text = w.into_string();
        assert!(text.contains("le=\"+Inf\"} 4\n"), "{text}");
        assert!(text.contains("nilm_latency_seconds_count{route=\"/v1/localize\"} 4\n"));
        // Bucket counts are cumulative: the last finite bucket holds all 4.
        let last_finite =
            text.lines().filter(|l| l.contains("_bucket") && !l.contains("+Inf")).last().unwrap();
        assert!(last_finite.ends_with(" 4"), "{last_finite}");
    }
}
