//! Property tests for the log-linear histogram: quantile-error bound
//! against exact sorted quantiles on adversarial sample sets, and merge
//! associativity.

use nilm_obs::hist::{Histogram, SUB_BUCKETS};
use proptest::collection::vec;
use proptest::prelude::*;

/// Adversarial sample generator: mixes sub-microsecond values, dense
/// clusters around bucket edges, heavy tails and exact duplicates.
fn samples() -> BoxedStrategy<Vec<f64>> {
    prop_oneof![
        // Uniform small values, many landing in the 1 µs linear region.
        vec(0.0f64..0.5, 1..300),
        // Mid-range latencies with duplicates (small integer grid).
        vec(0u32..2000, 1..300).prop_map(|v| v.into_iter().map(|x| x as f64 * 0.25).collect()),
        // Heavy tail: milliseconds to minutes, log-ish spread.
        vec(0.0f64..18.0, 1..200).prop_map(|v| v.into_iter().map(|x| x.exp() * 1e-3).collect()),
        // Bucket-edge adversary: values at and around powers of two (µs).
        vec(0u32..60, 1..300).prop_map(|v| {
            v.into_iter()
                .map(|x| {
                    let (exp, off) = (x / 3, x % 3);
                    ((1i64 << exp) + off as i64 - 1).max(0) as f64 / 1000.0
                })
                .collect()
        }),
    ]
    .boxed()
}

/// Exact nearest-rank quantile on the raw samples, after the same
/// microsecond rounding the histogram applies on record.
fn exact_quantile_ms(sorted_us: &[u64], q: f64) -> f64 {
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).max(1) - 1;
    sorted_us[rank.min(sorted_us.len() - 1)] as f64 / 1000.0
}

proptest! {
    /// The histogram quantile is within `max(exact/(2*SUB_BUCKETS), 1.5 µs)`
    /// of the exact sorted-sample quantile, at every probed quantile.
    #[test]
    fn quantile_error_is_bounded(samples in samples(), qx in 0u32..=100) {
        let mut h = Histogram::new();
        let mut us: Vec<u64> = Vec::with_capacity(samples.len());
        for &s in &samples {
            h.record_ms(s);
            us.push((s.max(0.0) * 1000.0).round() as u64);
        }
        us.sort_unstable();
        let q = qx as f64 / 100.0;
        let exact = exact_quantile_ms(&us, q);
        let est = h.quantile_ms(q);
        // Midpoint reporting bounds the error to half a bucket width:
        // relative 1/(2*SUB_BUCKETS) in the log region, 0.5 µs absolute in
        // the linear region (plus rounding slack).
        // The tiny additive term absorbs f64 rounding when the error sits
        // exactly on the theoretical bound (e.g. samples at 2^k µs).
        let bound = (exact / (2.0 * SUB_BUCKETS as f64)).max(0.0015) * (1.0 + 1e-9) + 1e-9;
        prop_assert!(
            (est - exact).abs() <= bound,
            "q={} est={} exact={} bound={}", q, est, exact, bound
        );
    }

    /// Merging is associative and equals recording the concatenated stream:
    /// (a ∪ b) ∪ c and a ∪ (b ∪ c) agree with the direct histogram on
    /// every statistic and every bucket.
    #[test]
    fn merge_is_associative(a in samples(), b in samples(), c in samples()) {
        let record = |xs: &[f64]| {
            let mut h = Histogram::new();
            for &x in xs { h.record_ms(x); }
            h
        };
        let (ha, hb, hc) = (record(&a), record(&b), record(&c));

        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);

        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);

        let all: Vec<f64> = a.iter().chain(&b).chain(&c).copied().collect();
        let direct = record(&all);

        for h in [&left, &right] {
            prop_assert_eq!(h.count(), direct.count());
            prop_assert_eq!(h.sum_ms(), direct.sum_ms());
            prop_assert_eq!(h.min_ms(), direct.min_ms());
            prop_assert_eq!(h.max_ms(), direct.max_ms());
            let merged_buckets: Vec<(f64, u64)> = h.nonzero_buckets().collect();
            let direct_buckets: Vec<(f64, u64)> = direct.nonzero_buckets().collect();
            prop_assert_eq!(merged_buckets, direct_buckets);
        }
    }
}
