//! Multi-thread span recording: many writer threads hammering the span
//! ring concurrently must lose nothing (within ring capacity) and tear
//! nothing — every recorded span comes back exactly as written.

use nilm_obs::trace::{self, TraceId};
use std::thread;

#[test]
fn concurrent_writers_lose_and_tear_nothing() {
    trace::set_enabled(true);
    trace::clear();

    const THREADS: usize = 8;
    // 8 × 201 = 1608 spans in total, under RING_CAPACITY (2048) so nothing
    // is evicted while the writers race.
    const SPANS_PER_THREAD: usize = 200;
    let traces: Vec<TraceId> = (0..THREADS).map(|_| trace::mint_trace_id()).collect();

    thread::scope(|s| {
        for (t, &trace_id) in traces.iter().enumerate() {
            s.spawn(move || {
                // Root span id for this thread's chain.
                let root = trace::record_span(trace_id, 0, "request", format!("thread={t}"), 0, 1);
                assert_ne!(root, 0);
                let _ctx = trace::set_context(&[(trace_id.0, root)]);
                for i in 0..SPANS_PER_THREAD {
                    // Alternate direct records with scoped spans so both
                    // write paths race on the ring.
                    if i % 2 == 0 {
                        trace::record_span(
                            trace_id,
                            root,
                            "infer",
                            format!("t={t} i={i}"),
                            i as u64,
                            1,
                        );
                    } else {
                        let mut span = trace::span("kernel").expect("context set");
                        span.set_detail(format!("t={t} i={i}"));
                        span.finish();
                    }
                }
            });
        }
    });

    for (t, &trace_id) in traces.iter().enumerate() {
        let spans = trace::trace_spans(trace_id);
        // 1 root + SPANS_PER_THREAD children, none lost.
        assert_eq!(spans.len(), 1 + SPANS_PER_THREAD, "thread {t} lost spans");
        let root = spans.iter().find(|s| s.name == "request").expect("root span");
        assert_eq!(root.detail, format!("thread={t}"));
        let mut seen = vec![false; SPANS_PER_THREAD];
        for s in &spans {
            if s.name == "request" {
                continue;
            }
            // No torn records: every field belongs to the same write.
            assert_eq!(s.trace, trace_id.0, "span leaked across traces");
            assert_eq!(s.parent, root.span, "child must parent to its thread's root");
            assert!(s.name == "infer" || s.name == "kernel", "{s:?}");
            let detail: Vec<usize> = s
                .detail
                .split_whitespace()
                .map(|kv| kv.split('=').nth(1).unwrap().parse().unwrap())
                .collect();
            assert_eq!(detail[0], t, "detail torn across threads: {s:?}");
            let i = detail[1];
            assert_eq!(s.name, if i % 2 == 0 { "infer" } else { "kernel" }, "{s:?}");
            assert!(!seen[i], "span {i} recorded twice for thread {t}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&b| b), "thread {t} lost a span index");
    }

    // Span ids are globally unique across all threads.
    let mut all_ids: Vec<u64> =
        traces.iter().flat_map(|&t| trace::trace_spans(t)).map(|s| s.span).collect();
    let total = all_ids.len();
    all_ids.sort_unstable();
    all_ids.dedup();
    assert_eq!(all_ids.len(), total, "span ids collided");

    trace::set_enabled(false);
    trace::clear();
}
