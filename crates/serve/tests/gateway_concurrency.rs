//! Concurrency correctness: micro-batching must never change results.
//!
//! M threads fire localize requests at a running gateway concurrently; the
//! batcher coalesces them into shared fleet passes. Every response body
//! must be **byte-identical** to the response built locally from a direct
//! `camal::stream::serve` call on the same household — the JSON emitter is
//! deterministic, so byte equality pins bit equality of every status,
//! power and probability value.

use camal::config::CamalConfig;
use camal::ensemble::EnsembleMember;
use camal::registry::{ModelKey, ModelRegistry};
use camal::stream::{serve, HouseholdSeries, StreamConfig};
use camal::CamalModel;
use nilm_data::appliance::ApplianceKind;
use nilm_data::series::TimeSeries;
use nilm_data::templates::{template, DatasetId};
use nilm_json::JsonValue;
use nilm_models::detector::{build_from_spec, BackboneSpec};
use nilm_serve::gateway::{Gateway, GatewayConfig};
use nilm_serve::http::read_response;
use nilm_serve::protocol::{localize_request, localize_response, Detail, HouseholdRow};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::Duration;

const WINDOW: usize = 32;

fn random_model(kernels: &[usize], seed: u64) -> CamalModel {
    let cfg = CamalConfig {
        n_ensemble: kernels.len(),
        kernels: kernels.to_vec(),
        trials: 1,
        width_div: 16,
        ..Default::default()
    };
    let members = kernels
        .iter()
        .enumerate()
        .map(|(i, &k)| {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64));
            let spec = BackboneSpec::ResNet { kernel: k, width_div: cfg.width_div };
            EnsembleMember { net: build_from_spec(&mut rng, spec), spec, val_loss: 0.5 + i as f32 }
        })
        .collect();
    let mut model = CamalModel::from_members(cfg, members);
    model.set_window(WINDOW);
    model
}

fn toy_household(n_windows: usize, seed: u64) -> HouseholdSeries {
    let mut rng = nilm_tensor::init::rng(seed);
    let n = n_windows * WINDOW + 3;
    let mut values = Vec::with_capacity(n);
    for t in 0..n {
        let plateau = (t / 10) % 3 == 0;
        let base = if plateau { 2100.0 } else { 130.0 };
        values.push(base + nilm_tensor::init::randn(&mut rng).abs() * 20.0);
    }
    HouseholdSeries { id: format!("house-{seed}"), series: TimeSeries::new(values, 60) }
}

fn kettle() -> ModelKey {
    ModelKey::new(DatasetId::Refit, ApplianceKind::Kettle)
}

fn microwave() -> ModelKey {
    ModelKey::new(DatasetId::Refit, ApplianceKind::Microwave)
}

fn test_config() -> GatewayConfig {
    GatewayConfig { read_timeout: Duration::from_secs(2), ..GatewayConfig::default() }
}

/// The response body a direct (un-batched) `stream::serve` run produces
/// for `keys` over `households`, through the same protocol builder the
/// gateway uses.
fn expected_body(
    keys: &[ModelKey],
    models: &mut [(ModelKey, CamalModel)],
    households: &[HouseholdSeries],
    batch: usize,
) -> String {
    let mut per_key = Vec::new();
    for &key in keys {
        let tmpl = template(key.dataset);
        let avg = tmpl.case(key.appliance).map(|c| c.avg_power_w).unwrap_or(1000.0);
        let cfg = StreamConfig {
            window: WINDOW,
            step_s: tmpl.step_s,
            max_ffill_s: 3 * tmpl.step_s,
            batch,
            appliance: Some(key.appliance),
            avg_power_w: avg,
        };
        let model = &mut models.iter_mut().find(|(k, _)| *k == key).expect("model for key").1;
        per_key.push(serve(model, households, &cfg));
    }
    let rows: Vec<HouseholdRow> = households
        .iter()
        .enumerate()
        .map(|(hi, hh)| HouseholdRow {
            id: &hh.id,
            degraded: None,
            timelines: per_key.iter().map(|tls| &tls[hi]).collect(),
        })
        .collect();
    localize_response(keys, &rows, Detail::Full).to_compact()
}

/// One blocking request/response cycle over a fresh connection.
fn post_localize(addr: &str, body: &str) -> (u16, String) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let request = format!(
        "POST /v1/localize HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    (&stream).write_all(request.as_bytes()).expect("send");
    let mut reader = BufReader::new(&stream);
    let response = read_response(&mut reader).expect("response");
    (response.status, response.body_str().expect("UTF-8 body").to_string())
}

fn get(addr: &str, path: &str) -> (u16, String) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let request = format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n");
    (&stream).write_all(request.as_bytes()).expect("send");
    let mut reader = BufReader::new(&stream);
    let response = read_response(&mut reader).expect("response");
    (response.status, response.body_str().expect("UTF-8 body").to_string())
}

#[test]
fn concurrent_responses_are_bit_identical_to_direct_serve() {
    let mut registry = ModelRegistry::unbounded();
    registry.insert(kettle(), random_model(&[5, 7], 1));
    let mut oracle = vec![(kettle(), random_model(&[5, 7], 1))];

    let cfg = test_config();
    let batch = cfg.batch_windows;
    let gateway = Gateway::start(registry, cfg).expect("gateway starts");
    let addr = gateway.addr().to_string();

    let households = vec![toy_household(6, 42)];
    let body = localize_request(&[kettle()], &households, Detail::Full).to_compact();
    let expected = expected_body(&[kettle()], &mut oracle, &households, batch);

    // M threads x R rounds of the same request, all racing the batcher.
    const M: usize = 8;
    const R: usize = 4;
    let barrier = Arc::new(Barrier::new(M));
    let bodies: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..M)
            .map(|_| {
                let barrier = barrier.clone();
                let addr = addr.clone();
                let body = body.clone();
                scope.spawn(move || {
                    barrier.wait();
                    (0..R)
                        .map(|_| {
                            let (status, response) = post_localize(&addr, &body);
                            assert_eq!(status, 200, "{response}");
                            response
                        })
                        .collect::<Vec<String>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });
    assert_eq!(bodies.len(), M * R);
    for (i, got) in bodies.iter().enumerate() {
        assert_eq!(got, &expected, "response {i} differs from the direct stream::serve baseline");
    }

    // The metrics histogram proves cross-request coalescing actually
    // happened (some pass served >= 2 requests) — with 8 threads racing a
    // multi-millisecond pass this is deterministic in practice; retry a
    // few extra volleys if the scheduler was unlucky.
    let mut coalesced = saw_multi_request_pass(&addr);
    let mut attempts = 0;
    while !coalesced && attempts < 5 {
        attempts += 1;
        std::thread::scope(|scope| {
            for _ in 0..M {
                let addr = addr.clone();
                let body = body.clone();
                scope.spawn(move || {
                    let (status, _) = post_localize(&addr, &body);
                    assert_eq!(status, 200);
                });
            }
        });
        coalesced = saw_multi_request_pass(&addr);
    }
    assert!(coalesced, "no batcher pass ever coalesced two concurrent requests");

    gateway.shutdown();
}

/// Whether `/metrics` reports any batcher pass with >= 2 requests.
fn saw_multi_request_pass(addr: &str) -> bool {
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let doc = nilm_json::parse(&metrics).expect("metrics must be valid JSON");
    doc.get("batch_requests_histogram")
        .and_then(JsonValue::as_object)
        .expect("histogram present")
        .iter()
        .any(|(k, _)| k.parse::<usize>().map(|n| n >= 2).unwrap_or(false))
}

#[test]
fn sixty_four_pipelined_keep_alive_connections_stay_byte_identical() {
    // The reactor's real load shape: 64 persistent connections, each
    // writing bursts of pipelined requests and reading the responses back
    // in order. Every single body must equal the direct stream::serve
    // baseline — pipelining + out-of-order batcher completions must never
    // reorder, interleave or corrupt a response.
    let mut registry = ModelRegistry::unbounded();
    registry.insert(kettle(), random_model(&[5], 21));
    let mut oracle = vec![(kettle(), random_model(&[5], 21))];

    let cfg = test_config();
    let batch = cfg.batch_windows;
    let gateway = Gateway::start(registry, cfg).expect("gateway starts");
    let addr = gateway.addr().to_string();

    let households = vec![toy_household(2, 64)];
    let body = localize_request(&[kettle()], &households, Detail::Full).to_compact();
    let expected = expected_body(&[kettle()], &mut oracle, &households, batch);
    let request = format!(
        "POST /v1/localize HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );

    const CONNS: usize = 64;
    const DEPTH: usize = 3; // pipelined requests per burst
    const WAVES: usize = 2;
    let barrier = Arc::new(Barrier::new(CONNS));
    let total: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CONNS)
            .map(|_| {
                let barrier = barrier.clone();
                let addr = addr.clone();
                let request = request.as_str();
                let expected = expected.as_str();
                scope.spawn(move || {
                    let stream = TcpStream::connect(&addr).expect("connect");
                    stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
                    let mut reader = BufReader::new(&stream);
                    barrier.wait();
                    let mut done = 0usize;
                    for _ in 0..WAVES {
                        let burst = request.repeat(DEPTH);
                        (&stream).write_all(burst.as_bytes()).expect("send burst");
                        for _ in 0..DEPTH {
                            let r = read_response(&mut reader).expect("pipelined response");
                            assert_eq!(r.status, 200, "{:?}", r.body_str());
                            assert_eq!(
                                r.body_str().expect("UTF-8"),
                                expected,
                                "pipelined response diverged from direct serve"
                            );
                            done += 1;
                        }
                    }
                    done
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).sum()
    });
    assert_eq!(total, CONNS * DEPTH * WAVES);

    // 64 connections racing pipelined bursts into a single batcher: the
    // histogram must show cross-request coalescing.
    assert!(
        saw_multi_request_pass(&addr),
        "64 pipelined connections never coalesced into one fleet pass"
    );

    // And the reactor counters actually moved.
    let (status, metrics) = get(&addr, "/metrics");
    assert_eq!(status, 200);
    let doc = nilm_json::parse(&metrics).unwrap();
    assert!(doc.get("epoll_wakeups").and_then(JsonValue::as_usize).unwrap() > 0);
    assert!(
        doc.get("conn_backlog_peak").and_then(JsonValue::as_usize).unwrap() >= 2,
        "pipelined bursts must show up as per-connection backlog"
    );

    gateway.shutdown();
}

#[test]
fn flooding_connection_cannot_starve_a_victim_connection() {
    // One connection floods deep pipelined bursts of a cheap route while a
    // victim issues sequential requests on its own connection. Round-robin
    // event ordering plus the per-wake read budget must keep the victim's
    // latency bounded — a reactor that drains the flooder to exhaustion
    // before looking at the victim fails this.
    let mut registry = ModelRegistry::unbounded();
    registry.insert(kettle(), random_model(&[5], 23));
    let gateway = Gateway::start(registry, test_config()).expect("gateway starts");
    let addr = gateway.addr().to_string();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let flooder = {
        let addr = addr.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let stream = TcpStream::connect(&addr).expect("connect");
            stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            let mut reader = BufReader::new(&stream);
            let burst = "GET /healthz HTTP/1.1\r\nHost: flood\r\n\r\n".repeat(24);
            let mut served = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                (&stream).write_all(burst.as_bytes()).expect("flood burst");
                for _ in 0..24 {
                    let r = read_response(&mut reader).expect("flood response");
                    assert_eq!(r.status, 200);
                    served += 1;
                }
            }
            served
        })
    };

    // Victim: 200 sequential round-trips on its own keep-alive connection.
    let stream = TcpStream::connect(&addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut reader = BufReader::new(&stream);
    let mut latencies_ms = Vec::with_capacity(200);
    for _ in 0..200 {
        let start = std::time::Instant::now();
        (&stream).write_all(b"GET /healthz HTTP/1.1\r\nHost: victim\r\n\r\n").unwrap();
        let r = read_response(&mut reader).expect("victim response");
        assert_eq!(r.status, 200);
        latencies_ms.push(start.elapsed().as_secs_f64() * 1e3);
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let flood_served = flooder.join().expect("flooder thread");

    let p99 = nilm_serve::metrics::percentile(&latencies_ms, 99.0);
    assert!(flood_served > 0, "flooder made no progress at all");
    // Generous bound (single-core CI): the victim must never wait behind
    // the flooder's entire backlog. Unfair draining puts this in the
    // hundreds of milliseconds; fair draining keeps it near one wake.
    assert!(p99 < 100.0, "victim p99 {p99:.2}ms under flood — reactor is starving connections");

    gateway.shutdown();
}

#[test]
fn mixed_key_sets_group_correctly_under_concurrency() {
    // Two request shapes race: kettle-only and kettle+microwave. The
    // batcher groups them into separate fleet passes per drain; both must
    // still match their direct baselines byte-for-byte.
    let mut registry = ModelRegistry::unbounded();
    registry.insert(kettle(), random_model(&[5], 11));
    registry.insert(microwave(), random_model(&[9], 12));
    let mut oracle =
        vec![(kettle(), random_model(&[5], 11)), (microwave(), random_model(&[9], 12))];

    let cfg = test_config();
    let batch = cfg.batch_windows;
    let gateway = Gateway::start(registry, cfg).expect("gateway starts");
    let addr = gateway.addr().to_string();

    let hh_a = vec![toy_household(4, 7)];
    let hh_b = vec![toy_household(5, 8), toy_household(3, 9)];
    let body_a = localize_request(&[kettle()], &hh_a, Detail::Full).to_compact();
    let body_b = localize_request(&[kettle(), microwave()], &hh_b, Detail::Full).to_compact();
    let expected_a = expected_body(&[kettle()], &mut oracle, &hh_a, batch);
    let expected_b = expected_body(&[kettle(), microwave()], &mut oracle, &hh_b, batch);

    std::thread::scope(|scope| {
        for i in 0..8 {
            let addr = addr.clone();
            let (body, expected) = if i % 2 == 0 {
                (body_a.clone(), expected_a.clone())
            } else {
                (body_b.clone(), expected_b.clone())
            };
            scope.spawn(move || {
                for _ in 0..3 {
                    let (status, got) = post_localize(&addr, &body);
                    assert_eq!(status, 200, "{got}");
                    assert_eq!(got, expected, "thread {i} got a divergent response");
                }
            });
        }
    });

    gateway.shutdown();
}

#[test]
fn full_queue_sheds_with_503() {
    // Capacity-1 queue: while the batcher grinds one pass, at most one job
    // can wait — a synchronized burst of 8 must shed some requests.
    let mut registry = ModelRegistry::unbounded();
    registry.insert(kettle(), random_model(&[5, 7, 9], 31));
    let cfg = GatewayConfig { queue_capacity: 1, ..test_config() };
    let gateway = Gateway::start(registry, cfg).expect("gateway starts");
    let addr = gateway.addr().to_string();

    let households = vec![toy_household(24, 77)];
    let body = localize_request(&[kettle()], &households, Detail::Full).to_compact();

    let mut shed = 0usize;
    let mut ok = 0usize;
    for _ in 0..5 {
        const M: usize = 8;
        let barrier = Arc::new(Barrier::new(M));
        let statuses: Vec<u16> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..M)
                .map(|_| {
                    let barrier = barrier.clone();
                    let addr = addr.clone();
                    let body = body.clone();
                    scope.spawn(move || {
                        barrier.wait();
                        post_localize(&addr, &body).0
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client thread")).collect()
        });
        ok += statuses.iter().filter(|&&s| s == 200).count();
        shed += statuses.iter().filter(|&&s| s == 503).count();
        assert!(
            statuses.iter().all(|&s| s == 200 || s == 503),
            "only 200/503 expected, got {statuses:?}"
        );
        if shed > 0 {
            break;
        }
    }
    assert!(shed > 0, "a capacity-1 queue never shed under an 8-way burst");
    assert!(ok > 0, "some requests must still succeed while shedding");

    // The shed counter must agree.
    let (status, metrics) = get(&addr, "/metrics");
    assert_eq!(status, 200);
    let doc = nilm_json::parse(&metrics).unwrap();
    assert_eq!(doc.get("shed_total").and_then(JsonValue::as_usize), Some(shed));

    gateway.shutdown();
}

#[test]
fn health_models_and_unknown_key_routes() {
    let mut registry = ModelRegistry::unbounded();
    // A mixed TransApp + ResNet ensemble so /v1/models reports both families.
    let cfg = CamalConfig { n_ensemble: 2, kernels: vec![5], trials: 1, ..Default::default() };
    let members = [
        (BackboneSpec::TransApp { d_model: 8, heads: 2, d_ff: 16, layers: 1, downsample: 4 }, 0.4),
        (BackboneSpec::ResNet { kernel: 5, width_div: 16 }, 0.5),
    ]
    .into_iter()
    .enumerate()
    .map(|(i, (spec, val_loss))| {
        let mut rng = StdRng::seed_from_u64(77 + i as u64);
        EnsembleMember { net: build_from_spec(&mut rng, spec), spec, val_loss }
    })
    .collect();
    let mut model = CamalModel::from_members(cfg, members);
    model.set_window(WINDOW);
    registry.insert(kettle(), model);
    let gateway = Gateway::start(registry, test_config()).expect("gateway starts");
    let addr = gateway.addr().to_string();

    let (status, body) = get(&addr, "/healthz");
    assert_eq!(status, 200);
    let doc = nilm_json::parse(&body).unwrap();
    assert_eq!(doc.get("status").and_then(JsonValue::as_str), Some("ok"));
    assert_eq!(doc.get("models").and_then(JsonValue::as_usize), Some(1));

    let (status, body) = get(&addr, "/v1/models");
    assert_eq!(status, 200);
    let doc = nilm_json::parse(&body).unwrap();
    let models = doc.get("models").and_then(JsonValue::as_array).unwrap();
    assert_eq!(models[0].get("key").and_then(JsonValue::as_str), Some("refit:kettle"));
    assert_eq!(models[0].get("window").and_then(JsonValue::as_usize), Some(WINDOW));
    let members = models[0].get("members").and_then(JsonValue::as_array).unwrap();
    assert_eq!(
        members[0].get("backbone").and_then(JsonValue::as_str),
        Some("transapp(d8xh2,ff16,l1,ds4)")
    );
    assert!(members[0].get("params").and_then(JsonValue::as_usize).unwrap() > 0);

    // A valid label that is not registered -> 404, not 500.
    let households = vec![toy_household(2, 1)];
    let body = localize_request(&[microwave()], &households, Detail::Full).to_compact();
    let (status, body) = post_localize(&addr, &body);
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("not registered"));

    gateway.shutdown();
}
