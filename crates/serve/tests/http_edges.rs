//! Fuzz-ish HTTP edge cases over real sockets: the gateway must answer
//! malformed, truncated, oversized and abusive inputs with clean 4xx/5xx
//! responses (or a clean close) — and must never panic or hang.

use camal::config::CamalConfig;
use camal::ensemble::EnsembleMember;
use camal::registry::{ModelKey, ModelRegistry};
use camal::CamalModel;
use nilm_data::appliance::ApplianceKind;
use nilm_data::templates::DatasetId;
use nilm_models::detector::{build_from_spec, BackboneSpec};
use nilm_serve::gateway::{Gateway, GatewayConfig};
use nilm_serve::http::{read_response, HttpLimits};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

fn tiny_model(seed: u64) -> CamalModel {
    let cfg = CamalConfig {
        n_ensemble: 1,
        kernels: vec![5],
        trials: 1,
        width_div: 16,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = BackboneSpec::ResNet { kernel: 5, width_div: cfg.width_div };
    let member = EnsembleMember { net: build_from_spec(&mut rng, spec), spec, val_loss: 0.1 };
    let mut model = CamalModel::from_members(cfg, vec![member]);
    model.set_window(32);
    model
}

fn start_gateway() -> Gateway {
    let mut registry = ModelRegistry::unbounded();
    registry.insert(ModelKey::new(DatasetId::Refit, ApplianceKind::Kettle), tiny_model(5));
    let cfg = GatewayConfig {
        read_timeout: Duration::from_millis(500),
        limits: HttpLimits {
            max_request_line: 1024,
            max_header_line: 1024,
            max_headers: 16,
            max_body: 64 * 1024,
        },
        ..GatewayConfig::default()
    };
    Gateway::start(registry, cfg).expect("gateway starts")
}

fn connect(addr: &str) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    stream
}

/// Sends raw bytes on a fresh connection; returns the status of the first
/// response, or `None` if the server just closed the connection.
fn send_raw(addr: &str, bytes: &[u8]) -> Option<u16> {
    let stream = connect(addr);
    (&stream).write_all(bytes).ok()?;
    let mut reader = BufReader::new(&stream);
    read_response(&mut reader).ok().map(|r| r.status)
}

/// The server is alive iff /healthz answers 200.
fn assert_alive(addr: &str) {
    let stream = connect(addr);
    (&stream).write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let mut reader = BufReader::new(&stream);
    let r = read_response(&mut reader).expect("healthz after abuse");
    assert_eq!(r.status, 200);
}

#[test]
fn malformed_and_truncated_inputs_get_4xx_and_never_kill_the_server() {
    let gateway = start_gateway();
    let addr = gateway.addr().to_string();

    // (input, expected status) — None means "clean close is acceptable".
    let cases: Vec<(&[u8], Option<u16>)> = vec![
        (b"GARBAGE\r\n\r\n", Some(400)),
        (b"GET /x\r\n\r\n", Some(400)),
        (b"GET /x HTTP/9.9\r\n\r\n", Some(400)),
        (b"POST /v1/localize HTTP/1.1\r\nContent-Length: oops\r\n\r\n", Some(400)),
        // No Content-Length = empty body (curl -X POST); invalid JSON -> 400.
        (b"POST /v1/localize HTTP/1.1\r\n\r\n", Some(400)),
        (b"POST /v1/localize HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n", Some(411)),
        (b"GET /nope HTTP/1.1\r\n\r\n", Some(404)),
        (b"PUT /healthz HTTP/1.1\r\nContent-Length: 0\r\n\r\n", Some(405)),
        (b"POST /v1/localize HTTP/1.1\r\nContent-Length: 7\r\n\r\nnotjson", Some(400)),
        // Content-Length over the configured 64 KiB cap.
        (b"POST /v1/localize HTTP/1.1\r\nContent-Length: 10000000\r\n\r\n", Some(413)),
    ];
    for (input, want) in cases {
        let got = send_raw(&addr, input);
        match want {
            Some(status) => {
                assert_eq!(got, Some(status), "input {:?}", String::from_utf8_lossy(input))
            }
            None => {}
        }
        assert_alive(&addr);
    }

    // A JSON nesting bomb in the body must be a 400, not a stack-overflow
    // abort of the whole server process.
    let bomb =
        format!("POST /v1/localize HTTP/1.1\r\nContent-Length: 20000\r\n\r\n{}", "[".repeat(20000));
    assert_eq!(send_raw(&addr, bomb.as_bytes()), Some(400));
    assert_alive(&addr);

    // Oversized request line -> 414; oversized header line / count -> 431.
    let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(4000));
    assert_eq!(send_raw(&addr, long_line.as_bytes()), Some(414));
    let long_header = format!("GET /healthz HTTP/1.1\r\nx: {}\r\n\r\n", "v".repeat(4000));
    assert_eq!(send_raw(&addr, long_header.as_bytes()), Some(431));
    let many_headers = format!("GET /healthz HTTP/1.1\r\n{}\r\n", "a: 1\r\n".repeat(32));
    assert_eq!(send_raw(&addr, many_headers.as_bytes()), Some(431));
    assert_alive(&addr);

    gateway.shutdown();
}

#[test]
fn truncated_request_line_and_mid_body_disconnects_do_not_hang() {
    let gateway = start_gateway();
    let addr = gateway.addr().to_string();

    // Truncated request line, then abrupt close.
    {
        let stream = connect(&addr);
        (&stream).write_all(b"GET /hea").unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        // Server should close without a response (incomplete line).
        let mut reader = BufReader::new(&stream);
        let _ = read_response(&mut reader); // whatever it is, it must return
    }
    assert_alive(&addr);

    // Declared body of 100 bytes, 10 sent, then abrupt close.
    {
        let stream = connect(&addr);
        (&stream)
            .write_all(b"POST /v1/localize HTTP/1.1\r\nContent-Length: 100\r\n\r\n0123456789")
            .unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        let mut buf = Vec::new();
        // The server drops the connection (no valid framing possible).
        let _ = (&stream).read_to_end(&mut buf);
    }
    assert_alive(&addr);

    // Client that sends nothing at all: the read timeout reaps it.
    {
        let stream = connect(&addr);
        std::thread::sleep(Duration::from_millis(700));
        let mut buf = [0u8; 16];
        let n = (&stream).read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "idle connection must be closed by the server");
    }
    assert_alive(&addr);

    gateway.shutdown();
}

#[test]
fn pipelined_keep_alive_requests_all_get_answers_in_order() {
    let gateway = start_gateway();
    let addr = gateway.addr().to_string();

    let stream = connect(&addr);
    // Three pipelined requests in one write: two healthz, one models.
    (&stream)
        .write_all(
            b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n\
              GET /v1/models HTTP/1.1\r\nHost: t\r\n\r\n\
              GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        )
        .unwrap();
    let mut reader = BufReader::new(&stream);
    let r1 = read_response(&mut reader).expect("first pipelined response");
    let r2 = read_response(&mut reader).expect("second pipelined response");
    let r3 = read_response(&mut reader).expect("third pipelined response");
    assert_eq!((r1.status, r2.status, r3.status), (200, 200, 200));
    assert!(r2.body_str().unwrap().contains("refit:kettle"));
    assert_eq!(r1.header("connection"), Some("keep-alive"));
    assert_eq!(r3.header("connection"), Some("close"), "Connection: close must be honored");

    gateway.shutdown();
}

#[test]
fn connection_flood_is_shed_with_503_not_unbounded_threads() {
    let mut registry = ModelRegistry::unbounded();
    registry.insert(ModelKey::new(DatasetId::Refit, ApplianceKind::Kettle), tiny_model(6));
    let cfg = GatewayConfig {
        max_connections: 2,
        read_timeout: Duration::from_millis(500),
        ..GatewayConfig::default()
    };
    let gateway = Gateway::start(registry, cfg).expect("gateway starts");
    let addr = gateway.addr().to_string();

    // Two idle connections occupy both handler slots...
    let _held_a = connect(&addr);
    let _held_b = connect(&addr);
    std::thread::sleep(Duration::from_millis(50));
    // ...so the third is answered 503 and closed instead of spawning a
    // third handler thread.
    let shed = connect(&addr);
    let mut reader = BufReader::new(&shed);
    let r = read_response(&mut reader).expect("shed connection still gets a response");
    assert_eq!(r.status, 503);
    assert_eq!(r.header("connection"), Some("close"));

    // Once the idle connections are reaped by the read timeout, new
    // clients are served again.
    std::thread::sleep(Duration::from_millis(700));
    assert_alive(&addr);

    gateway.shutdown();
}

#[test]
fn slow_loris_header_drip_is_cut_off_with_408() {
    let gateway = start_gateway();
    let addr = gateway.addr().to_string();

    // Drip one header byte every 100ms — each drip is fresh "activity", but
    // the idle clock starts at the request's FIRST byte, so at the 500ms
    // read timeout the reactor must cut the connection off with a 408
    // instead of letting the loris hold a slot forever.
    let stream = connect(&addr);
    for byte in b"GET /healthz HT" {
        if (&stream).write_all(&[*byte]).is_err() {
            break; // server already closed on us — also acceptable progress
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    let mut reader = BufReader::new(&stream);
    let r = read_response(&mut reader).expect("loris must get a response, not a hang");
    assert_eq!(r.status, 408, "{:?}", r.body_str());
    assert_eq!(r.header("connection"), Some("close"));
    assert!(r.body_str().unwrap().contains("idle deadline"), "{:?}", r.body_str());
    // And the socket really is closed afterwards.
    let n = (&stream).read(&mut [0u8; 16]).unwrap_or(0);
    assert_eq!(n, 0, "connection must be closed after the 408");

    assert_alive(&addr);
    gateway.shutdown();
}

#[test]
fn half_closed_sockets_get_their_response_then_are_reaped() {
    let gateway = start_gateway();
    let addr = gateway.addr().to_string();

    // Full request then SHUT_WR: the in-flight request must still be
    // answered, after which the connection is closed (not leaked).
    {
        let stream = connect(&addr);
        (&stream).write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        let mut reader = BufReader::new(&stream);
        let r = read_response(&mut reader).expect("half-closed client still gets its response");
        assert_eq!(r.status, 200);
        let mut rest = Vec::new();
        let n = reader.read_to_end(&mut rest).unwrap_or(0);
        assert_eq!(n, 0, "server must close after answering a half-closed peer");
    }

    // SHUT_WR with nothing sent: clean EOF at a request boundary — the
    // reactor reaps it silently and promptly (no 500ms idle wait needed).
    {
        let stream = connect(&addr);
        stream.shutdown(Shutdown::Write).unwrap();
        let start = std::time::Instant::now();
        let n = (&stream).read(&mut [0u8; 16]).unwrap_or(0);
        assert_eq!(n, 0, "empty half-closed connection must be closed");
        assert!(start.elapsed() < Duration::from_millis(400), "EOF reap must not wait for idle");
    }

    assert_alive(&addr);
    gateway.shutdown();
}

/// Property tests for the incremental parser itself (no sockets): any way
/// of chunking a byte stream must produce the identical sequence of parsed
/// requests — and, for malformed streams, the identical 4xx error at the
/// identical byte offset. This is the invariant that lets the reactor feed
/// whatever the kernel hands it without changing observable behavior.
mod chunking_invariance {
    use nilm_serve::http::{HttpLimits, RequestParser};
    use proptest::prelude::*;
    use proptest::rand::rngs::StdRng;
    use proptest::rand::Rng as _;

    fn limits() -> HttpLimits {
        HttpLimits { max_request_line: 64, max_header_line: 64, max_headers: 8, max_body: 256 }
    }

    /// Everything externally observable about a parse run, in order.
    #[derive(Debug, PartialEq, Eq)]
    enum Event {
        Request {
            method: String,
            path: String,
            http10: bool,
            headers: Vec<(String, String)>,
            body: Vec<u8>,
        },
        /// Mapped 4xx status (0 if unmapped) and the exact byte offset the
        /// parser had consumed when it failed.
        Error { status: u16, offset: u64 },
    }

    /// Runs a fresh parser over `stream` split into chunks of the given
    /// lengths and records every completed request and the terminal error.
    fn drive(stream: &[u8], chunk_lens: &[usize]) -> Vec<Event> {
        let mut parser = RequestParser::new(limits());
        let mut events = Vec::new();
        let mut pos = 0usize;
        for &len in chunk_lens {
            let chunk = &stream[pos..pos + len];
            pos += len;
            let mut off = 0usize;
            while off < chunk.len() {
                match parser.feed(&chunk[off..]) {
                    Ok((n, done)) => {
                        off += n;
                        if let Some(r) = done {
                            events.push(Event::Request {
                                method: r.method,
                                path: r.path,
                                http10: r.http10,
                                headers: r.headers,
                                body: r.body,
                            });
                        }
                    }
                    Err(e) => {
                        let status = e.error.status().map(|(s, _)| s).unwrap_or(0);
                        events.push(Event::Error { status, offset: e.offset });
                        return events;
                    }
                }
            }
        }
        events
    }

    fn random_valid_request(rng: &mut StdRng, out: &mut Vec<u8>) {
        // Occasional leading empty lines — tolerated between requests.
        for _ in 0..rng.random_range(0..3u32) {
            out.extend_from_slice(if rng.random_range(0..2u32) == 0 { b"\r\n" } else { b"\n" });
        }
        if rng.random_range(0..2u32) == 0 {
            let path_len = rng.random_range(1..20usize);
            out.extend_from_slice(b"GET /");
            out.extend(std::iter::repeat(b'p').take(path_len));
            out.extend_from_slice(b" HTTP/1.1\r\nHost: t\r\n\r\n");
        } else {
            let body: Vec<u8> = (0..rng.random_range(0..60usize))
                .map(|_| rng.random_range(0..=255u32) as u8)
                .collect();
            out.extend_from_slice(
                format!("POST /v1/x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", body.len()).as_bytes(),
            );
            out.extend_from_slice(&body);
        }
    }

    fn random_malformed_request(rng: &mut StdRng, out: &mut Vec<u8>) {
        match rng.random_range(0..7u32) {
            0 => out.extend_from_slice(b"GARBAGE LINE\r\n\r\n"),
            1 => out.extend_from_slice(b"GET /x HTTP/9.9\r\n\r\n"),
            2 => out.extend_from_slice(b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            3 => out.extend_from_slice(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            4 => {
                // Request line over the 64-byte cap -> 414 mid-line.
                out.extend_from_slice(b"GET /");
                out.extend(std::iter::repeat(b'a').take(100));
                out.extend_from_slice(b" HTTP/1.1\r\n\r\n");
            }
            5 => {
                // More headers than max_headers -> 431.
                out.extend_from_slice(b"GET /x HTTP/1.1\r\n");
                for i in 0..12 {
                    out.extend_from_slice(format!("h{i}: v\r\n").as_bytes());
                }
                out.extend_from_slice(b"\r\n");
            }
            _ => out.extend_from_slice(b"GET /x HTTP/1.1\r\nX: \xff\xfe\r\n\r\n"),
        }
    }

    /// A byte stream of 1..=3 concatenated requests (each valid or
    /// malformed) plus one random chunking of it. Small chunk sizes
    /// dominate so splits land inside request lines, headers and bodies.
    #[derive(Clone, Copy, Debug)]
    struct StreamAndSplit;

    impl Strategy for StreamAndSplit {
        type Value = (Vec<u8>, Vec<usize>);

        fn sample(&self, rng: &mut StdRng) -> (Vec<u8>, Vec<usize>) {
            let mut stream = Vec::new();
            for _ in 0..rng.random_range(1..=3usize) {
                if rng.random_range(0..4u32) == 0 {
                    random_malformed_request(rng, &mut stream);
                } else {
                    random_valid_request(rng, &mut stream);
                }
            }
            let mut chunk_lens = Vec::new();
            let mut left = stream.len();
            while left > 0 {
                let take = match rng.random_range(0..4u32) {
                    0 => 1,
                    1 => rng.random_range(1..=left.min(3)),
                    2 => rng.random_range(1..=left.min(17)),
                    _ => rng.random_range(1..=left),
                };
                chunk_lens.push(take);
                left -= take;
            }
            (stream, chunk_lens)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// Any chunk split parses identically to feeding the whole buffer
        /// at once: same requests, same bytes, and — for malformed input —
        /// the same 4xx at the same byte offset.
        #[test]
        fn any_chunk_split_parses_identically((stream, chunk_lens) in StreamAndSplit) {
            let whole = drive(&stream, &[stream.len()]);
            let split = drive(&stream, &chunk_lens);
            prop_assert_eq!(
                &split, &whole,
                "split {:?} diverged on stream {:?}",
                chunk_lens, String::from_utf8_lossy(&stream)
            );
        }

        /// Byte-at-a-time is the worst-case split; it too must match.
        #[test]
        fn byte_at_a_time_parses_identically((stream, _) in StreamAndSplit) {
            let whole = drive(&stream, &[stream.len()]);
            let bytes = drive(&stream, &vec![1; stream.len()]);
            prop_assert_eq!(&bytes, &whole);
        }
    }
}

#[test]
fn graceful_shutdown_over_http_stops_the_server() {
    let gateway = start_gateway();
    let addr = gateway.addr().to_string();

    let stream = connect(&addr);
    (&stream)
        .write_all(b"POST /admin/shutdown HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n")
        .unwrap();
    let mut reader = BufReader::new(&stream);
    let r = read_response(&mut reader).expect("shutdown response");
    assert_eq!(r.status, 200);
    assert_eq!(r.header("connection"), Some("close"));

    // wait() must return promptly now that shutdown was requested.
    gateway.wait();
    // And the port must stop accepting.
    std::thread::sleep(Duration::from_millis(50));
    assert!(TcpStream::connect(&addr).is_err(), "listener must be closed after graceful shutdown");
}
