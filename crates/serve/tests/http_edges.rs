//! Fuzz-ish HTTP edge cases over real sockets: the gateway must answer
//! malformed, truncated, oversized and abusive inputs with clean 4xx/5xx
//! responses (or a clean close) — and must never panic or hang.

use camal::config::CamalConfig;
use camal::ensemble::EnsembleMember;
use camal::registry::{ModelKey, ModelRegistry};
use camal::CamalModel;
use nilm_data::appliance::ApplianceKind;
use nilm_data::templates::DatasetId;
use nilm_models::detector::{build_from_spec, BackboneSpec};
use nilm_serve::gateway::{Gateway, GatewayConfig};
use nilm_serve::http::{read_response, HttpLimits};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

fn tiny_model(seed: u64) -> CamalModel {
    let cfg = CamalConfig {
        n_ensemble: 1,
        kernels: vec![5],
        trials: 1,
        width_div: 16,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = BackboneSpec::ResNet { kernel: 5, width_div: cfg.width_div };
    let member = EnsembleMember { net: build_from_spec(&mut rng, spec), spec, val_loss: 0.1 };
    let mut model = CamalModel::from_members(cfg, vec![member]);
    model.set_window(32);
    model
}

fn start_gateway() -> Gateway {
    let mut registry = ModelRegistry::unbounded();
    registry.insert(ModelKey::new(DatasetId::Refit, ApplianceKind::Kettle), tiny_model(5));
    let cfg = GatewayConfig {
        read_timeout: Duration::from_millis(500),
        limits: HttpLimits {
            max_request_line: 1024,
            max_header_line: 1024,
            max_headers: 16,
            max_body: 64 * 1024,
        },
        ..GatewayConfig::default()
    };
    Gateway::start(registry, cfg).expect("gateway starts")
}

fn connect(addr: &str) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    stream
}

/// Sends raw bytes on a fresh connection; returns the status of the first
/// response, or `None` if the server just closed the connection.
fn send_raw(addr: &str, bytes: &[u8]) -> Option<u16> {
    let stream = connect(addr);
    (&stream).write_all(bytes).ok()?;
    let mut reader = BufReader::new(&stream);
    read_response(&mut reader).ok().map(|r| r.status)
}

/// The server is alive iff /healthz answers 200.
fn assert_alive(addr: &str) {
    let stream = connect(addr);
    (&stream).write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let mut reader = BufReader::new(&stream);
    let r = read_response(&mut reader).expect("healthz after abuse");
    assert_eq!(r.status, 200);
}

#[test]
fn malformed_and_truncated_inputs_get_4xx_and_never_kill_the_server() {
    let gateway = start_gateway();
    let addr = gateway.addr().to_string();

    // (input, expected status) — None means "clean close is acceptable".
    let cases: Vec<(&[u8], Option<u16>)> = vec![
        (b"GARBAGE\r\n\r\n", Some(400)),
        (b"GET /x\r\n\r\n", Some(400)),
        (b"GET /x HTTP/9.9\r\n\r\n", Some(400)),
        (b"POST /v1/localize HTTP/1.1\r\nContent-Length: oops\r\n\r\n", Some(400)),
        // No Content-Length = empty body (curl -X POST); invalid JSON -> 400.
        (b"POST /v1/localize HTTP/1.1\r\n\r\n", Some(400)),
        (b"POST /v1/localize HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n", Some(411)),
        (b"GET /nope HTTP/1.1\r\n\r\n", Some(404)),
        (b"PUT /healthz HTTP/1.1\r\nContent-Length: 0\r\n\r\n", Some(405)),
        (b"POST /v1/localize HTTP/1.1\r\nContent-Length: 7\r\n\r\nnotjson", Some(400)),
        // Content-Length over the configured 64 KiB cap.
        (b"POST /v1/localize HTTP/1.1\r\nContent-Length: 10000000\r\n\r\n", Some(413)),
    ];
    for (input, want) in cases {
        let got = send_raw(&addr, input);
        match want {
            Some(status) => {
                assert_eq!(got, Some(status), "input {:?}", String::from_utf8_lossy(input))
            }
            None => {}
        }
        assert_alive(&addr);
    }

    // A JSON nesting bomb in the body must be a 400, not a stack-overflow
    // abort of the whole server process.
    let bomb =
        format!("POST /v1/localize HTTP/1.1\r\nContent-Length: 20000\r\n\r\n{}", "[".repeat(20000));
    assert_eq!(send_raw(&addr, bomb.as_bytes()), Some(400));
    assert_alive(&addr);

    // Oversized request line -> 414; oversized header line / count -> 431.
    let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(4000));
    assert_eq!(send_raw(&addr, long_line.as_bytes()), Some(414));
    let long_header = format!("GET /healthz HTTP/1.1\r\nx: {}\r\n\r\n", "v".repeat(4000));
    assert_eq!(send_raw(&addr, long_header.as_bytes()), Some(431));
    let many_headers = format!("GET /healthz HTTP/1.1\r\n{}\r\n", "a: 1\r\n".repeat(32));
    assert_eq!(send_raw(&addr, many_headers.as_bytes()), Some(431));
    assert_alive(&addr);

    gateway.shutdown();
}

#[test]
fn truncated_request_line_and_mid_body_disconnects_do_not_hang() {
    let gateway = start_gateway();
    let addr = gateway.addr().to_string();

    // Truncated request line, then abrupt close.
    {
        let stream = connect(&addr);
        (&stream).write_all(b"GET /hea").unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        // Server should close without a response (incomplete line).
        let mut reader = BufReader::new(&stream);
        let _ = read_response(&mut reader); // whatever it is, it must return
    }
    assert_alive(&addr);

    // Declared body of 100 bytes, 10 sent, then abrupt close.
    {
        let stream = connect(&addr);
        (&stream)
            .write_all(b"POST /v1/localize HTTP/1.1\r\nContent-Length: 100\r\n\r\n0123456789")
            .unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        let mut buf = Vec::new();
        // The server drops the connection (no valid framing possible).
        let _ = (&stream).read_to_end(&mut buf);
    }
    assert_alive(&addr);

    // Client that sends nothing at all: the read timeout reaps it.
    {
        let stream = connect(&addr);
        std::thread::sleep(Duration::from_millis(700));
        let mut buf = [0u8; 16];
        let n = (&stream).read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "idle connection must be closed by the server");
    }
    assert_alive(&addr);

    gateway.shutdown();
}

#[test]
fn pipelined_keep_alive_requests_all_get_answers_in_order() {
    let gateway = start_gateway();
    let addr = gateway.addr().to_string();

    let stream = connect(&addr);
    // Three pipelined requests in one write: two healthz, one models.
    (&stream)
        .write_all(
            b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n\
              GET /v1/models HTTP/1.1\r\nHost: t\r\n\r\n\
              GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        )
        .unwrap();
    let mut reader = BufReader::new(&stream);
    let r1 = read_response(&mut reader).expect("first pipelined response");
    let r2 = read_response(&mut reader).expect("second pipelined response");
    let r3 = read_response(&mut reader).expect("third pipelined response");
    assert_eq!((r1.status, r2.status, r3.status), (200, 200, 200));
    assert!(r2.body_str().unwrap().contains("refit:kettle"));
    assert_eq!(r1.header("connection"), Some("keep-alive"));
    assert_eq!(r3.header("connection"), Some("close"), "Connection: close must be honored");

    gateway.shutdown();
}

#[test]
fn connection_flood_is_shed_with_503_not_unbounded_threads() {
    let mut registry = ModelRegistry::unbounded();
    registry.insert(ModelKey::new(DatasetId::Refit, ApplianceKind::Kettle), tiny_model(6));
    let cfg = GatewayConfig {
        max_connections: 2,
        read_timeout: Duration::from_millis(500),
        ..GatewayConfig::default()
    };
    let gateway = Gateway::start(registry, cfg).expect("gateway starts");
    let addr = gateway.addr().to_string();

    // Two idle connections occupy both handler slots...
    let _held_a = connect(&addr);
    let _held_b = connect(&addr);
    std::thread::sleep(Duration::from_millis(50));
    // ...so the third is answered 503 and closed instead of spawning a
    // third handler thread.
    let shed = connect(&addr);
    let mut reader = BufReader::new(&shed);
    let r = read_response(&mut reader).expect("shed connection still gets a response");
    assert_eq!(r.status, 503);
    assert_eq!(r.header("connection"), Some("close"));

    // Once the idle connections are reaped by the read timeout, new
    // clients are served again.
    std::thread::sleep(Duration::from_millis(700));
    assert_alive(&addr);

    gateway.shutdown();
}

#[test]
fn graceful_shutdown_over_http_stops_the_server() {
    let gateway = start_gateway();
    let addr = gateway.addr().to_string();

    let stream = connect(&addr);
    (&stream)
        .write_all(b"POST /admin/shutdown HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n")
        .unwrap();
    let mut reader = BufReader::new(&stream);
    let r = read_response(&mut reader).expect("shutdown response");
    assert_eq!(r.status, 200);
    assert_eq!(r.header("connection"), Some("close"));

    // wait() must return promptly now that shutdown was requested.
    gateway.wait();
    // And the port must stop accepting.
    std::thread::sleep(Duration::from_millis(50));
    assert!(TcpStream::connect(&addr).is_err(), "listener must be closed after graceful shutdown");
}
