//! End-to-end observability acceptance: one traced localize request must
//! yield, via `GET /debug/trace`, a single connected trace covering the
//! whole socket-to-kernel pipeline — parse → queue_wait → coalesce →
//! preprocess → infer (with kernel child spans naming op/shape/backend) →
//! stitch → write — every span parenting back to the root `request` span
//! and every duration fitting inside the client-observed wall time. With
//! tracing **on**, response bodies must stay byte-identical to a direct
//! `stream::serve` run. Also pins `/readyz` semantics (200 when servable,
//! 503 + reason while the queue is saturated) and the Prometheus
//! exposition route.

use camal::config::CamalConfig;
use camal::ensemble::EnsembleMember;
use camal::registry::{ModelKey, ModelRegistry};
use camal::stream::{serve, HouseholdSeries, StreamConfig};
use camal::CamalModel;
use nilm_data::appliance::ApplianceKind;
use nilm_data::series::TimeSeries;
use nilm_data::templates::{template, DatasetId};
use nilm_json::JsonValue;
use nilm_models::detector::{build_from_spec, BackboneSpec};
use nilm_serve::gateway::{Gateway, GatewayConfig};
use nilm_serve::http::{read_response, Response};
use nilm_serve::protocol::{localize_request, localize_response, Detail, HouseholdRow};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const WINDOW: usize = 32;

fn random_model(kernels: &[usize], seed: u64) -> CamalModel {
    let cfg = CamalConfig {
        n_ensemble: kernels.len(),
        kernels: kernels.to_vec(),
        trials: 1,
        width_div: 16,
        ..Default::default()
    };
    let members = kernels
        .iter()
        .enumerate()
        .map(|(i, &k)| {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64));
            let spec = BackboneSpec::ResNet { kernel: k, width_div: cfg.width_div };
            EnsembleMember { net: build_from_spec(&mut rng, spec), spec, val_loss: 0.5 + i as f32 }
        })
        .collect();
    let mut model = CamalModel::from_members(cfg, members);
    model.set_window(WINDOW);
    model
}

fn toy_household(n_windows: usize, seed: u64) -> HouseholdSeries {
    let mut rng = nilm_tensor::init::rng(seed);
    let n = n_windows * WINDOW + 3;
    let mut values = Vec::with_capacity(n);
    for t in 0..n {
        let plateau = (t / 10) % 3 == 0;
        let base = if plateau { 2100.0 } else { 130.0 };
        values.push(base + nilm_tensor::init::randn(&mut rng).abs() * 20.0);
    }
    HouseholdSeries { id: format!("house-{seed}"), series: TimeSeries::new(values, 60) }
}

fn kettle() -> ModelKey {
    ModelKey::new(DatasetId::Refit, ApplianceKind::Kettle)
}

fn test_config() -> GatewayConfig {
    GatewayConfig { read_timeout: Duration::from_secs(2), ..GatewayConfig::default() }
}

/// The response body a direct (un-batched) `stream::serve` run produces.
fn expected_body(
    keys: &[ModelKey],
    models: &mut [(ModelKey, CamalModel)],
    households: &[HouseholdSeries],
    batch: usize,
) -> String {
    let mut per_key = Vec::new();
    for &key in keys {
        let tmpl = template(key.dataset);
        let avg = tmpl.case(key.appliance).map(|c| c.avg_power_w).unwrap_or(1000.0);
        let cfg = StreamConfig {
            window: WINDOW,
            step_s: tmpl.step_s,
            max_ffill_s: 3 * tmpl.step_s,
            batch,
            appliance: Some(key.appliance),
            avg_power_w: avg,
        };
        let model = &mut models.iter_mut().find(|(k, _)| *k == key).expect("model for key").1;
        per_key.push(serve(model, households, &cfg));
    }
    let rows: Vec<HouseholdRow> = households
        .iter()
        .enumerate()
        .map(|(hi, hh)| HouseholdRow {
            id: &hh.id,
            degraded: None,
            timelines: per_key.iter().map(|tls| &tls[hi]).collect(),
        })
        .collect();
    localize_response(keys, &rows, Detail::Full).to_compact()
}

/// One blocking POST /v1/localize with an optional inbound trace ID,
/// returning the full response (headers included).
fn post_localize(addr: &str, body: &str, trace_id: Option<&str>) -> Response {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let trace_header = trace_id.map(|id| format!("X-Camal-Trace-Id: {id}\r\n")).unwrap_or_default();
    let request = format!(
        "POST /v1/localize HTTP/1.1\r\nHost: t\r\n{trace_header}Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    (&stream).write_all(request.as_bytes()).expect("send");
    let mut reader = BufReader::new(&stream);
    read_response(&mut reader).expect("response")
}

fn get(addr: &str, path: &str) -> Response {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let request = format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n");
    (&stream).write_all(request.as_bytes()).expect("send");
    let mut reader = BufReader::new(&stream);
    read_response(&mut reader).expect("response")
}

/// One span row parsed back out of the /debug/trace JSON.
#[derive(Debug, Clone)]
struct Span {
    span: u64,
    parent: u64,
    name: String,
    detail: String,
    start_us: f64,
    dur_us: f64,
}

/// Polls `/debug/trace?id=` until the root `request` span lands (it is
/// recorded only after the response's last byte reaches the socket, so the
/// client can briefly outrun it).
fn poll_trace(addr: &str, id: &str) -> Vec<Span> {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let resp = get(addr, &format!("/debug/trace?id={id}"));
        if resp.status == 200 {
            let doc = nilm_json::parse(resp.body_str().expect("UTF-8")).expect("trace JSON");
            assert_eq!(doc.get("trace").and_then(JsonValue::as_str), Some(id));
            let spans: Vec<Span> = doc
                .get("spans")
                .and_then(JsonValue::as_array)
                .expect("spans array")
                .iter()
                .map(|s| Span {
                    span: s.get("span").and_then(JsonValue::as_usize).expect("span id") as u64,
                    parent: s.get("parent").and_then(JsonValue::as_usize).expect("parent") as u64,
                    name: s.get("name").and_then(JsonValue::as_str).expect("name").to_string(),
                    detail: s.get("detail").and_then(JsonValue::as_str).unwrap_or("").to_string(),
                    start_us: s.get("start_us").and_then(JsonValue::as_f64).expect("start_us"),
                    dur_us: s.get("dur_us").and_then(JsonValue::as_f64).expect("dur_us"),
                })
                .collect();
            if spans.iter().any(|s| s.name == "request") {
                return spans;
            }
        }
        assert!(Instant::now() < deadline, "root request span never appeared for trace {id}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn find<'s>(spans: &'s [Span], name: &str) -> &'s Span {
    let mut hits = spans.iter().filter(|s| s.name == name);
    let first = hits.next().unwrap_or_else(|| panic!("no {name:?} span in {spans:?}"));
    assert!(hits.next().is_none(), "more than one {name:?} span for a single request");
    first
}

#[test]
fn traced_localize_yields_a_connected_socket_to_kernel_trace() {
    nilm_obs::trace::set_enabled(true);
    let mut registry = ModelRegistry::unbounded();
    registry.insert(kettle(), random_model(&[5, 7], 1));
    let mut oracle = vec![(kettle(), random_model(&[5, 7], 1))];
    let cfg = test_config();
    let batch = cfg.batch_windows;
    let gateway = Gateway::start(registry, cfg).expect("gateway starts");
    let addr = gateway.addr().to_string();

    let households = vec![toy_household(6, 42)];
    let body = localize_request(&[kettle()], &households, Detail::Full).to_compact();
    let expected = expected_body(&[kettle()], &mut oracle, &households, batch);

    // An inbound trace ID is honored and echoed; the body stays
    // byte-identical to the direct stream::serve baseline with tracing ON.
    let trace_hex = "00000000deadbeef";
    let wall = Instant::now();
    let resp = post_localize(&addr, &body, Some(trace_hex));
    let wall_us = wall.elapsed().as_micros() as f64;
    assert_eq!(resp.status, 200, "{:?}", resp.body_str());
    assert_eq!(resp.header("x-camal-trace-id"), Some(trace_hex));
    assert_eq!(
        resp.body_str().expect("UTF-8 body"),
        expected,
        "tracing must not change a single response byte"
    );

    // Without the header a fresh ID is minted and echoed.
    let resp = post_localize(&addr, &body, None);
    assert_eq!(resp.status, 200);
    let minted = resp.header("x-camal-trace-id").expect("minted trace id");
    assert_eq!(minted.len(), 16);
    assert!(minted.bytes().all(|b| b.is_ascii_hexdigit()));
    assert_ne!(minted, "0000000000000000");

    // The full pipeline, reassembled from the ring.
    let spans = poll_trace(&addr, trace_hex);
    let root = find(&spans, "request");
    assert_eq!(root.parent, 0, "the request span is the trace root");
    assert!(root.detail.contains("route=localize") && root.detail.contains("status=200"));

    // Every stage of the pipeline is present exactly once and parents to
    // the root request span.
    for name in ["parse", "queue_wait", "coalesce", "preprocess", "infer", "stitch", "write"] {
        let stage = find(&spans, name);
        assert_eq!(stage.parent, root.span, "{name} must parent to the request span");
    }
    // ... and at least one kernel execution parents into the infer stage,
    // naming its op, shape and backend.
    let infer = find(&spans, "infer");
    let kernels: Vec<&Span> = spans.iter().filter(|s| s.name == "kernel").collect();
    assert!(!kernels.is_empty(), "no kernel child spans in {spans:?}");
    for k in &kernels {
        assert_eq!(k.parent, infer.span, "kernel spans must nest under infer");
        assert!(k.detail.contains("op="), "kernel detail must name the op: {k:?}");
        assert!(k.detail.contains("backend="), "kernel detail must name the backend: {k:?}");
    }

    // The whole tree is connected: every parent link resolves to another
    // span of this trace (or 0 for the root).
    let ids: BTreeMap<u64, &Span> = spans.iter().map(|s| (s.span, s)).collect();
    for s in &spans {
        assert!(
            s.parent == 0 || ids.contains_key(&s.parent),
            "span {s:?} has a dangling parent link"
        );
    }

    // Durations are sane: the root covers the dispatch-to-last-byte
    // interval, stages are sequential inside it, and everything fits the
    // client-observed wall time.
    assert!(root.dur_us <= wall_us, "request span {:.0}us > wall {:.0}us", root.dur_us, wall_us);
    let stage_sum: f64 = ["queue_wait", "coalesce", "preprocess", "infer", "stitch", "write"]
        .iter()
        .map(|n| find(&spans, n).dur_us)
        .sum();
    assert!(
        stage_sum <= wall_us,
        "stage durations sum to {stage_sum:.0}us, beyond the {wall_us:.0}us wall time"
    );
    let parse = find(&spans, "parse");
    let queue_wait = find(&spans, "queue_wait");
    let write = find(&spans, "write");
    assert!(parse.start_us <= queue_wait.start_us, "queue_wait cannot start before parse");
    assert!(infer.start_us <= write.start_us, "write cannot start before infer");

    // /debug/trace error paths: missing and malformed IDs are 400, an
    // unknown ID is 404.
    assert_eq!(get(&addr, "/debug/trace").status, 400);
    assert_eq!(get(&addr, "/debug/trace?id=zz").status, 400);
    assert_eq!(get(&addr, "/debug/trace?id=abcd1234abcd1234").status, 404);

    // Prometheus exposition alongside the JSON metrics.
    let resp = get(&addr, "/metrics?format=prometheus");
    assert_eq!(resp.status, 200);
    assert!(resp.header("content-type").unwrap_or("").starts_with("text/plain"));
    let text = resp.body_str().expect("UTF-8 exposition");
    assert!(text.contains("# TYPE nilm_request_duration_seconds histogram"));
    assert!(text.contains("route=\"localize\""));
    assert!(text.contains("nilm_stage_duration_seconds_bucket"));
    assert!(text.contains("stage=\"infer\""));
    assert!(text.contains("nilm_kernel_calls_total{"));
    // The JSON route still answers.
    let resp = get(&addr, "/metrics");
    assert_eq!(resp.status, 200);
    assert!(nilm_json::parse(resp.body_str().unwrap()).is_ok());

    // A warm gateway is ready.
    let resp = get(&addr, "/readyz");
    assert_eq!(resp.status, 200);
    let doc = nilm_json::parse(resp.body_str().unwrap()).unwrap();
    assert_eq!(doc.get("ready").and_then(JsonValue::as_bool), Some(true));
    assert!(doc.get("queue_capacity").and_then(JsonValue::as_usize).unwrap() > 0);

    gateway.shutdown();
}

#[test]
fn readyz_drops_to_503_while_the_queue_is_saturated_and_recovers() {
    let mut registry = ModelRegistry::unbounded();
    registry.insert(kettle(), random_model(&[5, 7, 9], 31));
    let cfg = GatewayConfig { queue_capacity: 1, ..test_config() };
    let gateway = Gateway::start(registry, cfg).expect("gateway starts");
    let addr = gateway.addr().to_string();

    let resp = get(&addr, "/readyz");
    assert_eq!(resp.status, 200, "a fresh gateway must be ready");

    // Saturate: with a capacity-1 queue, a burst of heavy localize
    // requests keeps one job parked while the batcher grinds — /readyz
    // must report 503 "queue saturated" in that window. The window is
    // multi-millisecond but scheduler-dependent, so retry a few volleys.
    let households = vec![toy_household(24, 77)];
    let body = localize_request(&[kettle()], &households, Detail::Full).to_compact();
    let saw_saturated = Arc::new(AtomicBool::new(false));
    for _ in 0..5 {
        const M: usize = 6;
        let inflight = Arc::new(AtomicUsize::new(M));
        let barrier = Arc::new(Barrier::new(M + 1));
        std::thread::scope(|scope| {
            for _ in 0..M {
                let barrier = barrier.clone();
                let inflight = inflight.clone();
                let addr = addr.clone();
                let body = body.clone();
                scope.spawn(move || {
                    barrier.wait();
                    let resp = post_localize(&addr, &body, None);
                    assert!(
                        resp.status == 200 || resp.status == 503,
                        "unexpected status {}",
                        resp.status
                    );
                    inflight.fetch_sub(1, Ordering::SeqCst);
                });
            }
            barrier.wait();
            while inflight.load(Ordering::SeqCst) > 0 {
                let resp = get(&addr, "/readyz");
                if resp.status == 503 {
                    let doc = nilm_json::parse(resp.body_str().unwrap()).unwrap();
                    assert_eq!(doc.get("ready").and_then(JsonValue::as_bool), Some(false));
                    assert_eq!(
                        doc.get("reason").and_then(JsonValue::as_str),
                        Some("queue saturated")
                    );
                    assert_eq!(resp.header("retry-after"), Some("1"));
                    saw_saturated.store(true, Ordering::SeqCst);
                }
            }
        });
        if saw_saturated.load(Ordering::SeqCst) {
            break;
        }
    }
    assert!(
        saw_saturated.load(Ordering::SeqCst),
        "a capacity-1 queue under a 6-way heavy burst never reported saturation"
    );

    // Once the burst drains, readiness recovers.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if get(&addr, "/readyz").status == 200 {
            break;
        }
        assert!(Instant::now() < deadline, "/readyz never recovered after the burst drained");
        std::thread::sleep(Duration::from_millis(20));
    }

    gateway.shutdown();
}
