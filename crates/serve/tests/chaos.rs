//! Chaos suite for the gateway: every fault point of the serving stack is
//! armed in turn and the gateway must answer **every** request — `200`s
//! and `503 + Retry-After`s only, never a `500` and never a hang — and
//! once the fault clears, responses must return to being byte-identical
//! to a direct `camal::stream::serve` baseline.
//!
//! The fault table is process-global, so this suite lives in its own test
//! binary and serializes every test on one mutex.

use camal::config::CamalConfig;
use camal::ensemble::EnsembleMember;
use camal::registry::{ModelKey, ModelRegistry, QuarantinePolicy};
use camal::stream::{serve, HouseholdSeries, StreamConfig};
use camal::CamalModel;
use nilm_data::appliance::ApplianceKind;
use nilm_data::series::TimeSeries;
use nilm_data::templates::{template, DatasetId};
use nilm_json::JsonValue;
use nilm_models::detector::{build_from_spec, BackboneSpec};
use nilm_serve::gateway::{Gateway, GatewayConfig};
use nilm_serve::http::{read_response, Response};
use nilm_serve::protocol::{localize_request, localize_response, Detail, HouseholdRow};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

const WINDOW: usize = 32;

static SERIAL: Mutex<()> = Mutex::new(());

struct FaultGuard {
    _serial: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        nilm_fault::disarm_all();
    }
}

fn faults() -> FaultGuard {
    let g = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    nilm_fault::disarm_all();
    FaultGuard { _serial: g }
}

fn random_model(kernels: &[usize], seed: u64) -> CamalModel {
    let cfg = CamalConfig {
        n_ensemble: kernels.len(),
        kernels: kernels.to_vec(),
        trials: 1,
        width_div: 16,
        ..Default::default()
    };
    let members = kernels
        .iter()
        .enumerate()
        .map(|(i, &k)| {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64));
            let spec = BackboneSpec::ResNet { kernel: k, width_div: cfg.width_div };
            EnsembleMember { net: build_from_spec(&mut rng, spec), spec, val_loss: 0.5 + i as f32 }
        })
        .collect();
    let mut model = CamalModel::from_members(cfg, members);
    model.set_window(WINDOW);
    model
}

fn toy_household(n_windows: usize, seed: u64) -> HouseholdSeries {
    let mut rng = nilm_tensor::init::rng(seed);
    let n = n_windows * WINDOW + 3;
    let mut values = Vec::with_capacity(n);
    for t in 0..n {
        let plateau = (t / 10) % 3 == 0;
        let base = if plateau { 2100.0 } else { 130.0 };
        values.push(base + nilm_tensor::init::randn(&mut rng).abs() * 20.0);
    }
    HouseholdSeries { id: format!("house-{seed}"), series: TimeSeries::new(values, 60) }
}

fn kettle() -> ModelKey {
    ModelKey::new(DatasetId::Refit, ApplianceKind::Kettle)
}

fn test_config() -> GatewayConfig {
    GatewayConfig { read_timeout: Duration::from_secs(5), ..GatewayConfig::default() }
}

/// The byte-exact body a direct `stream::serve` produces for one kettle
/// request over `households`.
fn expected_body(oracle: &mut CamalModel, households: &[HouseholdSeries], batch: usize) -> String {
    let key = kettle();
    let tmpl = template(key.dataset);
    let cfg = StreamConfig {
        window: WINDOW,
        step_s: tmpl.step_s,
        max_ffill_s: 3 * tmpl.step_s,
        batch,
        appliance: Some(key.appliance),
        avg_power_w: tmpl.case(key.appliance).map(|c| c.avg_power_w).unwrap_or(1000.0),
    };
    let timelines = serve(oracle, households, &cfg);
    let rows: Vec<HouseholdRow> = households
        .iter()
        .enumerate()
        .map(|(hi, hh)| HouseholdRow {
            id: &hh.id,
            degraded: None,
            timelines: vec![&timelines[hi]],
        })
        .collect();
    localize_response(&[key], &rows, Detail::Full).to_compact()
}

/// One blocking localize round-trip; returns the full response so callers
/// can inspect headers (`Retry-After`).
fn post_localize(addr: &str, body: &str) -> Response {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let request = format!(
        "POST /v1/localize HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    (&stream).write_all(request.as_bytes()).expect("send");
    let mut reader = BufReader::new(&stream);
    read_response(&mut reader).expect("response")
}

fn metrics_doc(addr: &str) -> JsonValue {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    (&stream).write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n").expect("send");
    let mut reader = BufReader::new(&stream);
    let response = read_response(&mut reader).expect("response");
    assert_eq!(response.status, 200);
    nilm_json::parse(response.body_str().expect("UTF-8")).expect("metrics JSON")
}

fn counter(doc: &JsonValue, name: &str) -> usize {
    doc.get(name).and_then(JsonValue::as_usize).unwrap_or_else(|| panic!("{name} in metrics"))
}

/// A `503` under chaos must always say when to come back.
fn assert_503_with_retry_after(response: &Response) {
    assert_eq!(response.status, 503, "{:?}", response.body_str());
    let retry = response.header("retry-after").expect("503 must carry Retry-After");
    assert!(retry.parse::<u64>().is_ok_and(|s| s >= 1), "Retry-After {retry:?}");
}

#[test]
fn batcher_panic_respawns_and_replies_identically() {
    let _g = faults();
    let mut registry = ModelRegistry::unbounded();
    registry.insert(kettle(), random_model(&[5, 7], 1));
    let mut oracle = random_model(&[5, 7], 1);
    let cfg = test_config();
    let batch = cfg.batch_windows;
    let gateway = Gateway::start(registry, cfg).expect("gateway starts");
    let addr = gateway.addr().to_string();

    let households = vec![toy_household(4, 42)];
    let body = localize_request(&[kettle()], &households, Detail::Full).to_compact();
    let expected = expected_body(&mut oracle, &households, batch);

    // Sanity: healthy round-trip first.
    let response = post_localize(&addr, &body);
    assert_eq!(response.status, 200);
    assert_eq!(response.body_str().unwrap(), expected);

    // The next pass panics with our job in flight: the handler must get a
    // prompt 503 + Retry-After (reply channel dropped in the unwind), not
    // a hang and not a 500.
    nilm_fault::arm_limited("batcher.panic", 1.0, 7, Some(1));
    let start = Instant::now();
    let response = post_localize(&addr, &body);
    assert!(start.elapsed() < Duration::from_secs(10), "no timely reply after panic");
    assert_503_with_retry_after(&response);

    // The supervisor respawned the batcher with a rebuilt registry: the
    // very next request must succeed and be byte-identical to before.
    let response = post_localize(&addr, &body);
    assert_eq!(response.status, 200, "{:?}", response.body_str());
    assert_eq!(
        response.body_str().unwrap(),
        expected,
        "post-restart response must match the pre-fault baseline byte-for-byte"
    );

    let doc = metrics_doc(&addr);
    assert!(counter(&doc, "batcher_restarts") >= 1, "restart must be visible in metrics");
    let fired = doc
        .get("faults")
        .and_then(|f| f.get("batcher.panic"))
        .and_then(|p| p.get("fired"))
        .and_then(JsonValue::as_usize);
    assert_eq!(fired, Some(1), "fault counters must be exported");

    nilm_fault::disarm_all();
    gateway.shutdown();
}

#[test]
fn wedged_pass_hits_the_deadline_not_a_hang() {
    let _g = faults();
    let mut registry = ModelRegistry::unbounded();
    registry.insert(kettle(), random_model(&[5], 3));
    // Tight deadline so the test is fast; the injected slow pass sleeps
    // 2x this, past every waiting handler's budget.
    let cfg = GatewayConfig { deadline: Duration::from_millis(250), ..test_config() };
    let gateway = Gateway::start(registry, cfg).expect("gateway starts");
    let addr = gateway.addr().to_string();

    let households = vec![toy_household(2, 5)];
    let body = localize_request(&[kettle()], &households, Detail::Summary).to_compact();

    nilm_fault::arm_limited("gateway.slow_pass", 1.0, 9, Some(1));
    let start = Instant::now();
    let response = post_localize(&addr, &body);
    let elapsed = start.elapsed();
    assert_503_with_retry_after(&response);
    assert!(response.body_str().unwrap().contains("deadline"), "{:?}", response.body_str());
    assert!(
        elapsed >= Duration::from_millis(200) && elapsed < Duration::from_secs(5),
        "deadline reply took {elapsed:?}, want ~250ms"
    );

    // Once the slow pass drains (the injected nap is 2 x 250ms plus the
    // pass itself), the gateway serves normally again.
    std::thread::sleep(Duration::from_millis(700));
    let response = post_localize(&addr, &body);
    assert_eq!(response.status, 200, "{:?}", response.body_str());
    assert!(counter(&metrics_doc(&addr), "deadline_timeouts") >= 1);

    nilm_fault::disarm_all();
    gateway.shutdown();
}

#[test]
fn per_request_deadline_header_overrides_the_config() {
    let _g = faults();
    let mut registry = ModelRegistry::unbounded();
    registry.insert(kettle(), random_model(&[5], 3));
    // Config deadline of 1s; the request's own 200ms header must win (the
    // injected slow pass sleeps 2x the config deadline, past both).
    let cfg = GatewayConfig { deadline: Duration::from_secs(1), ..test_config() };
    let gateway = Gateway::start(registry, cfg).expect("gateway starts");
    let addr = gateway.addr().to_string();

    let households = vec![toy_household(2, 5)];
    let body = localize_request(&[kettle()], &households, Detail::Summary).to_compact();

    nilm_fault::arm_limited("gateway.slow_pass", 1.0, 9, Some(1));
    let stream = TcpStream::connect(&addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let request = format!(
        "POST /v1/localize HTTP/1.1\r\nHost: t\r\nX-Camal-Deadline-Ms: 200\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let start = Instant::now();
    (&stream).write_all(request.as_bytes()).expect("send");
    let mut reader = BufReader::new(&stream);
    let response = read_response(&mut reader).expect("response");
    let elapsed = start.elapsed();
    assert_503_with_retry_after(&response);
    assert!(
        elapsed < Duration::from_millis(900),
        "a 200ms header deadline must beat the 1s config deadline, took {elapsed:?}"
    );

    nilm_fault::disarm_all();
    // shutdown joins the batcher, which is still inside its 2s injected
    // nap — bounded, so the join is too.
    gateway.shutdown();
}

#[test]
fn checkpoint_corruption_becomes_503_retry_after_and_heals() {
    let _g = faults();
    let dir = std::env::temp_dir().join(format!("camal_chaos_gw_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path: PathBuf = dir.join(kettle().file_name());
    random_model(&[5], 21).save(&path).expect("save checkpoint");

    let mut registry = ModelRegistry::unbounded();
    registry.set_quarantine_policy(QuarantinePolicy {
        threshold: 2,
        base_backoff: Duration::from_millis(300),
        max_backoff: Duration::from_secs(2),
    });
    registry.register_file(kettle(), &path);
    let mut oracle = random_model(&[5], 21);
    let cfg = test_config();
    let batch = cfg.batch_windows;
    let gateway = Gateway::start(registry, cfg).expect("gateway starts (warm load is clean)");
    let addr = gateway.addr().to_string();

    let households = vec![toy_household(3, 8)];
    let body = localize_request(&[kettle()], &households, Detail::Full).to_compact();
    let expected = expected_body(&mut oracle, &households, batch);

    // Kill the batcher once so the rebuilt registry must reload the
    // checkpoint from disk — and make the next two reads corrupt.
    nilm_fault::arm_limited("batcher.panic", 1.0, 11, Some(1));
    nilm_fault::arm_limited("persist.load.corrupt", 1.0, 13, Some(2));
    let response = post_localize(&addr, &body);
    assert_503_with_retry_after(&response); // the panicked generation

    // Two corrupt reads: a Load failure (503), then the second failure
    // trips the threshold-2 quarantine (503 whose Retry-After covers the
    // backoff window). Neither may surface as 500.
    let response = post_localize(&addr, &body);
    assert_503_with_retry_after(&response);
    assert!(response.body_str().unwrap().contains("fleet pass failed"));
    let response = post_localize(&addr, &body);
    assert_503_with_retry_after(&response);

    // The quarantine window is open: even with storage healed the next
    // request inside the window is refused with a timed Retry-After.
    nilm_fault::disarm("persist.load.corrupt");
    let response = post_localize(&addr, &body);
    assert_503_with_retry_after(&response);
    assert!(response.body_str().unwrap().contains("quarantined"), "{:?}", response.body_str());

    // After the backoff expires the load retries, succeeds, and the
    // response is byte-identical to the healthy baseline.
    std::thread::sleep(Duration::from_millis(400));
    let response = post_localize(&addr, &body);
    assert_eq!(response.status, 200, "{:?}", response.body_str());
    assert_eq!(response.body_str().unwrap(), expected);

    let doc = metrics_doc(&addr);
    let registry_doc = doc.get("registry").expect("registry counters");
    assert!(counter(registry_doc, "load_failures") >= 2);
    assert!(counter(registry_doc, "quarantines") >= 1);

    nilm_fault::disarm_all();
    gateway.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_queue_full_sheds_cleanly() {
    let _g = faults();
    let mut registry = ModelRegistry::unbounded();
    registry.insert(kettle(), random_model(&[5], 31));
    let gateway = Gateway::start(registry, test_config()).expect("gateway starts");
    let addr = gateway.addr().to_string();

    let households = vec![toy_household(2, 6)];
    let body = localize_request(&[kettle()], &households, Detail::Summary).to_compact();

    nilm_fault::arm_limited("queue.full", 1.0, 17, Some(1));
    let response = post_localize(&addr, &body);
    assert_503_with_retry_after(&response);
    assert!(response.body_str().unwrap().contains("queue full"));

    let response = post_localize(&addr, &body);
    assert_eq!(response.status, 200, "{:?}", response.body_str());

    nilm_fault::disarm_all();
    gateway.shutdown();
}

#[test]
fn reactor_panic_respawns_the_event_loop_and_serving_resumes() {
    let _g = faults();
    let mut registry = ModelRegistry::unbounded();
    registry.insert(kettle(), random_model(&[5, 7], 51));
    let mut oracle = random_model(&[5, 7], 51);
    let cfg = test_config();
    let batch = cfg.batch_windows;
    let gateway = Gateway::start(registry, cfg).expect("gateway starts");
    let addr = gateway.addr().to_string();

    let households = vec![toy_household(3, 12)];
    let body = localize_request(&[kettle()], &households, Detail::Full).to_compact();
    let expected = expected_body(&mut oracle, &households, batch);

    // Healthy baseline, and a keep-alive connection that will be live when
    // the event loop dies.
    let response = post_localize(&addr, &body);
    assert_eq!(response.status, 200);
    assert_eq!(response.body_str().unwrap(), expected);
    let survivor = TcpStream::connect(&addr).expect("connect");
    survivor.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    (&survivor).write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let mut survivor_reader = BufReader::new(&survivor);
    assert_eq!(read_response(&mut survivor_reader).expect("pre-panic response").status, 200);

    // Kill the event loop once. The idle tick (<=25ms) trips it; the
    // supervisor respawns a fresh reactor on the same listener.
    nilm_fault::arm_limited("reactor.panic", 1.0, 43, Some(1));
    std::thread::sleep(Duration::from_millis(200));

    // The idle keep-alive connection was owned by the dead generation: it
    // must be closed cleanly (EOF or reset), never left hanging.
    let start = Instant::now();
    let gone = match std::io::Read::read(&mut survivor_reader, &mut [0u8; 16]) {
        Ok(0) | Err(_) => true,
        Ok(_) => false,
    };
    assert!(gone, "connections of the dead reactor generation must be closed");
    assert!(start.elapsed() < Duration::from_secs(5), "close must be prompt, not a timeout");

    // A reconnect+retry must land on the respawned reactor and be
    // byte-identical to the pre-panic baseline.
    let start = Instant::now();
    let response = post_localize(&addr, &body);
    assert!(start.elapsed() < Duration::from_secs(10), "no timely reply after reactor respawn");
    assert_eq!(response.status, 200, "{:?}", response.body_str());
    assert_eq!(response.body_str().unwrap(), expected);

    let doc = metrics_doc(&addr);
    assert!(counter(&doc, "reactor_restarts") >= 1, "restart must be visible in metrics");
    let fired = doc
        .get("faults")
        .and_then(|f| f.get("reactor.panic"))
        .and_then(|p| p.get("fired"))
        .and_then(JsonValue::as_usize);
    assert_eq!(fired, Some(1), "fault counters must be exported");

    nilm_fault::disarm_all();
    gateway.shutdown();
}

#[test]
fn wedged_worker_is_answered_by_the_reactor_deadline() {
    let _g = faults();
    let mut registry = ModelRegistry::unbounded();
    registry.insert(kettle(), random_model(&[5], 53));
    // The wedged worker naps 2x this deadline with the request checked out;
    // the reactor's deadline heap must answer the client anyway.
    let cfg = GatewayConfig { deadline: Duration::from_millis(250), ..test_config() };
    let gateway = Gateway::start(registry, cfg).expect("gateway starts");
    let addr = gateway.addr().to_string();

    let households = vec![toy_household(2, 13)];
    let body = localize_request(&[kettle()], &households, Detail::Summary).to_compact();

    nilm_fault::arm_limited("worker.wedge", 1.0, 47, Some(1));
    let start = Instant::now();
    let response = post_localize(&addr, &body);
    let elapsed = start.elapsed();
    assert_503_with_retry_after(&response);
    assert!(response.body_str().unwrap().contains("deadline"), "{:?}", response.body_str());
    assert!(
        elapsed >= Duration::from_millis(200) && elapsed < Duration::from_secs(5),
        "deadline reply took {elapsed:?}, want ~250ms"
    );

    // Once the wedged worker wakes back up, the pool serves normally.
    std::thread::sleep(Duration::from_millis(700));
    let response = post_localize(&addr, &body);
    assert_eq!(response.status, 200, "{:?}", response.body_str());
    assert!(counter(&metrics_doc(&addr), "deadline_timeouts") >= 1);

    nilm_fault::disarm_all();
    gateway.shutdown();
}

#[test]
fn forced_short_writes_still_deliver_byte_identical_responses() {
    let _g = faults();
    let mut registry = ModelRegistry::unbounded();
    registry.insert(kettle(), random_model(&[5, 7], 57));
    let mut oracle = random_model(&[5, 7], 57);
    let cfg = test_config();
    let batch = cfg.batch_windows;
    let gateway = Gateway::start(registry, cfg).expect("gateway starts");
    let addr = gateway.addr().to_string();

    let households = vec![toy_household(3, 14)];
    let body = localize_request(&[kettle()], &households, Detail::Full).to_compact();
    let expected = expected_body(&mut oracle, &households, batch);

    // Every flush now writes ONE byte and reports the socket as blocked,
    // forcing the reactor through the partial-write / re-register-WRITE /
    // resume path on every single response byte. The client must still see
    // the exact same bytes, just slower.
    nilm_fault::arm("conn.short_write", 1.0, 61);
    let response = post_localize(&addr, &body);
    assert_eq!(response.status, 200, "{:?}", response.body_str());
    assert_eq!(
        response.body_str().unwrap(),
        expected,
        "byte-at-a-time flushing must not corrupt or reorder the response"
    );
    nilm_fault::disarm("conn.short_write");

    assert!(
        counter(&metrics_doc(&addr), "partial_writes") >= 1,
        "the partial-write path must be visible in metrics"
    );

    // Fault cleared: healthy and still byte-identical.
    let response = post_localize(&addr, &body);
    assert_eq!(response.status, 200);
    assert_eq!(response.body_str().unwrap(), expected);

    nilm_fault::disarm_all();
    gateway.shutdown();
}

#[test]
fn shard_panic_inside_the_gateway_retries_or_degrades() {
    let _g = faults();
    let mut registry = ModelRegistry::unbounded();
    registry.insert(kettle(), random_model(&[5, 7], 41));
    let mut oracle = random_model(&[5, 7], 41);
    let cfg = test_config();
    let batch = cfg.batch_windows;
    let gateway = Gateway::start(registry, cfg).expect("gateway starts");
    let addr = gateway.addr().to_string();

    let households = vec![toy_household(3, 9)];
    let body = localize_request(&[kettle()], &households, Detail::Full).to_compact();
    let expected = expected_body(&mut oracle, &households, batch);

    // One panic: the shard retries on a fresh model copy; the client sees
    // a perfectly normal, byte-identical 200.
    nilm_fault::arm_limited("fleet.shard.panic", 1.0, 23, Some(1));
    let response = post_localize(&addr, &body);
    assert_eq!(response.status, 200, "{:?}", response.body_str());
    assert_eq!(response.body_str().unwrap(), expected);
    assert!(counter(&metrics_doc(&addr), "shard_retries_total") >= 1);

    // Persistent panics: attempt + retry both die, so the household comes
    // back as a structured degraded summary row — still a 200, the rest
    // of the response shape intact.
    nilm_fault::arm("fleet.shard.panic", 1.0, 29);
    let response = post_localize(&addr, &body);
    assert_eq!(response.status, 200, "{:?}", response.body_str());
    let doc = nilm_json::parse(response.body_str().unwrap()).expect("valid JSON");
    let hh = doc.get("households").and_then(JsonValue::as_array).expect("households")[0].clone();
    let reason = hh.get("degraded").and_then(JsonValue::as_str).expect("degraded reason");
    assert!(reason.contains("injected fault"), "{reason}");
    assert!(counter(&metrics_doc(&addr), "households_degraded_total") >= 1);

    // Fault cleared: back to byte-identical healthy responses.
    nilm_fault::disarm_all();
    let response = post_localize(&addr, &body);
    assert_eq!(response.status, 200);
    assert_eq!(response.body_str().unwrap(), expected);

    gateway.shutdown();
}
