//! # nilm_serve
//!
//! The networked inference gateway of the CamAL reproduction: a
//! dependency-free HTTP/1.1 service (`std::net` only) that exposes the
//! model registry and the fleet engine over a socket, with **cross-request
//! micro-batching** — windows from concurrently arriving requests are
//! coalesced into shared GEMM passes, so throughput under concurrency
//! beats issuing the same requests one at a time.
//!
//! ```text
//!   TCP clients ══ epoll ══▶ reactor thread (owns every connection)
//!                               │ incremental parse / in-order write
//!                               │ state machines, backpressure,
//!                               │ per-request deadlines, fairness
//!                               ▼
//!                          worker pool (decode + validate)
//!                               │
//!                          bounded job queue ──(full)→ 503
//!                               │
//!                          batcher thread (owns the ModelRegistry)
//!                               │ drain queue, group by key set,
//!                               │ merge households, ONE fleet pass
//!                               ▼
//!                  camal::fleet::serve_fleet (shared GEMM batches)
//!                               │ split per request
//!                               ▼
//!                  completions channel ──▶ reactor ──▶ HTTP responses
//! ```
//!
//! Modules:
//! - [`http`] — minimal HTTP/1.1 layer around an **incremental**,
//!   chunking-invariant request parser ([`http::RequestParser`]),
//!   `Content-Length` bodies, keep-alive, hard limits that map to 4xx
//!   statuses. Never panics on malformed input.
//! - [`sys`] — the vendored epoll + wake-pipe shim (no `libc` crate):
//!   level/edge-triggered readiness polling and cross-thread wakeups.
//! - [`protocol`] — the `POST /v1/localize` JSON request/response schemas
//!   over [`nilm_json`].
//! - [`queue`] — the bounded job queue between the workers and the
//!   batcher (load shedding with 503 when full).
//! - [`metrics`] — request counters, micro-batch size histogram, reactor
//!   counters (`epoll_wakeups`, `partial_writes`, backlog peaks), queue
//!   depth and latency percentiles, served as JSON on `GET /metrics`.
//! - [`gateway`] — the server: configuration, routing, the batcher
//!   thread, supervision, graceful shutdown.
//! - [`loadgen`] — a real-socket load generator (optionally pipelined)
//!   measuring requests/s and latency percentiles against a running
//!   gateway.
//!
//! (The reactor event loop and per-connection state machines live in the
//! crate-private `reactor` and `conn` modules.)
//!
//! Micro-batching never changes results: the fleet engine scores each
//! window independently (eval-mode BatchNorm, row-independent GEMMs), so a
//! response is bit-identical to a direct [`camal::stream::serve`] call on
//! the same household — the concurrency tests pin exactly that.

#![warn(missing_docs)]

mod conn;
pub mod gateway;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod protocol;
pub mod queue;
mod reactor;
pub mod sys;

pub use gateway::{Gateway, GatewayConfig};
pub use loadgen::{run_loadgen, run_loadgen_with, LoadgenOptions, LoadgenReport};
