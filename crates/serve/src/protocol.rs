//! The `POST /v1/localize` request/response JSON schemas.
//!
//! Request (`application/json`):
//!
//! ```json
//! {
//!   "appliances": ["refit:kettle", "refit:microwave"],
//!   "households": [
//!     {"id": "house-1", "step_s": 60, "values": [120.5, 2010.0, null, 130.0]}
//!   ]
//! }
//! ```
//!
//! `appliances` are [`ModelKey::label`] strings; `values` are mains watts
//! at `step_s` resolution with `null` marking missing samples (JSON cannot
//! carry NaN). Response:
//!
//! ```json
//! {
//!   "schema": "camal_localize/v1",
//!   "appliances": ["refit:kettle"],
//!   "households": [
//!     {"id": "house-1", "step_s": 60, "samples": 4,
//!      "windows_total": 0, "windows_scored": 0,
//!      "results": {"refit:kettle": {"status": [], "power_w": [], "...": "..."}}}
//!   ]
//! }
//! ```
//!
//! Both directions go through [`nilm_json`]; response emission is
//! deterministic (sorted object keys, shortest-roundtrip numbers), so a
//! gateway response can be compared **byte-for-byte** against one built
//! locally from a direct [`camal::stream::serve`] call — the concurrency
//! tests do exactly that to pin that micro-batching never changes results.

use camal::registry::ModelKey;
use camal::stream::{HouseholdSeries, HouseholdTimeline};
use nilm_data::series::TimeSeries;
use nilm_json::JsonValue;

/// Schema tag of the localize response document.
pub const LOCALIZE_SCHEMA: &str = "camal_localize/v1";

/// How much of each timeline the response carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Detail {
    /// Every per-sample array (status, power, probabilities, starts) —
    /// the default, and the form the bit-identity tests compare.
    Full,
    /// Only the per-appliance aggregates (windows detected, activations,
    /// on-fraction, energy) — the cheap form for dashboards and loadgen.
    Summary,
}

/// A parsed, validated localize request.
#[derive(Clone, Debug)]
pub struct LocalizeRequest {
    /// Requested appliance models, deduplicated, in request order.
    pub appliances: Vec<ModelKey>,
    /// Household feeds to localize over.
    pub households: Vec<HouseholdSeries>,
    /// Requested response detail (`"detail": "summary"`; default full).
    pub detail: Detail,
}

/// Parses and validates a localize request body. The error string is safe
/// to echo back in a 400 response.
pub fn parse_localize(body: &[u8]) -> Result<LocalizeRequest, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = nilm_json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let detail = match doc.get("detail") {
        None => Detail::Full,
        Some(d) => match d.as_str() {
            Some("full") => Detail::Full,
            Some("summary") => Detail::Summary,
            _ => return Err("\"detail\" must be \"full\" or \"summary\"".to_string()),
        },
    };
    let appliances_json = doc
        .get("appliances")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "missing \"appliances\" array".to_string())?;
    let mut appliances: Vec<ModelKey> = Vec::with_capacity(appliances_json.len());
    for a in appliances_json {
        let label = a.as_str().ok_or_else(|| "appliance entries must be strings".to_string())?;
        let key = ModelKey::from_label(label)
            .ok_or_else(|| format!("unknown appliance label {label:?} (want dataset:appliance)"))?;
        if !appliances.contains(&key) {
            appliances.push(key);
        }
    }
    if appliances.is_empty() {
        return Err("\"appliances\" must name at least one model".to_string());
    }
    let households_json = doc
        .get("households")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "missing \"households\" array".to_string())?;
    if households_json.is_empty() {
        return Err("\"households\" must contain at least one feed".to_string());
    }
    let mut households = Vec::with_capacity(households_json.len());
    for (i, h) in households_json.iter().enumerate() {
        let id = h
            .get("id")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("household {i}: missing \"id\" string"))?;
        let step_s = h
            .get("step_s")
            .and_then(JsonValue::as_usize)
            .filter(|&s| s >= 1 && s <= u32::MAX as usize)
            .ok_or_else(|| format!("household {i}: missing or invalid \"step_s\""))?;
        let values_json = h
            .get("values")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| format!("household {i}: missing \"values\" array"))?;
        if values_json.is_empty() {
            return Err(format!("household {i}: \"values\" is empty"));
        }
        let mut values = Vec::with_capacity(values_json.len());
        for v in values_json {
            if v.is_null() {
                values.push(f32::NAN);
            } else {
                let n = v
                    .as_f64()
                    .ok_or_else(|| format!("household {i}: values must be numbers or null"))?;
                values.push(n as f32);
            }
        }
        households.push(HouseholdSeries {
            id: id.to_string(),
            series: TimeSeries::new(values, step_s as u32),
        });
    }
    Ok(LocalizeRequest { appliances, households, detail })
}

/// Builds a localize request document (the loadgen / client side).
pub fn localize_request(
    appliances: &[ModelKey],
    households: &[HouseholdSeries],
    detail: Detail,
) -> JsonValue {
    let hh: Vec<JsonValue> = households
        .iter()
        .map(|h| {
            JsonValue::object([
                ("id", JsonValue::String(h.id.clone())),
                ("step_s", JsonValue::Number(h.series.step_s as f64)),
                (
                    "values",
                    JsonValue::Array(
                        // Non-finite samples emit as null, the wire form of
                        // a missing reading.
                        h.series.values.iter().map(|&v| JsonValue::Number(v as f64)).collect(),
                    ),
                ),
            ])
        })
        .collect();
    JsonValue::object([
        (
            "appliances",
            JsonValue::Array(appliances.iter().map(|k| JsonValue::String(k.label())).collect()),
        ),
        (
            "detail",
            JsonValue::String(match detail {
                Detail::Full => "full".into(),
                Detail::Summary => "summary".into(),
            }),
        ),
        ("households", JsonValue::Array(hh)),
    ])
}

/// One household row of a response: its id plus one timeline per requested
/// appliance (parallel to the `appliances` slice handed to
/// [`localize_response`]).
#[derive(Clone, Debug)]
pub struct HouseholdRow<'a> {
    /// Echo of the request household id.
    pub id: &'a str,
    /// One timeline per appliance, in response-appliance order.
    pub timelines: Vec<&'a HouseholdTimeline>,
    /// `Some(reason)` when this household's fleet shard panicked twice and
    /// the timelines are zeroed placeholders: the row is emitted in summary
    /// detail with a `"degraded"` key so clients can tell a real all-OFF
    /// result from a failed one. `None` for normally served rows (which are
    /// emitted byte-identically to the pre-fault format).
    pub degraded: Option<&'a str>,
}

fn u8s(v: &[u8]) -> JsonValue {
    JsonValue::Array(v.iter().map(|&s| JsonValue::Number(s as f64)).collect())
}

fn f32s(v: &[f32]) -> JsonValue {
    JsonValue::Array(v.iter().map(|&x| JsonValue::Number(x as f64)).collect())
}

fn usizes(v: &[usize]) -> JsonValue {
    JsonValue::Array(v.iter().map(|&x| JsonValue::Number(x as f64)).collect())
}

/// Builds the deterministic localize response document. `detail` selects
/// between the full per-sample payload and the cheap summary form.
pub fn localize_response(
    appliances: &[ModelKey],
    rows: &[HouseholdRow],
    detail: Detail,
) -> JsonValue {
    let hh: Vec<JsonValue> = rows
        .iter()
        .map(|row| {
            // A degraded row carries zeroed placeholder timelines; emitting
            // its full per-sample arrays would dress a failure up as data,
            // so degraded rows are forced to summary detail.
            let row_detail = if row.degraded.is_some() { Detail::Summary } else { detail };
            let results: std::collections::BTreeMap<String, JsonValue> = appliances
                .iter()
                .zip(&row.timelines)
                .map(|(key, tl)| {
                    let aggregates = [
                        ("windows_detected", JsonValue::Number(tl.windows_detected as f64)),
                        ("activations", JsonValue::Number(tl.activations() as f64)),
                        ("on_fraction", JsonValue::Number(tl.on_fraction())),
                        ("energy_wh", JsonValue::Number(tl.energy_wh())),
                    ];
                    let body = match row_detail {
                        Detail::Summary => JsonValue::object(aggregates),
                        Detail::Full => JsonValue::object(
                            [
                                ("raw_status", u8s(&tl.raw_status)),
                                ("status", u8s(&tl.status)),
                                ("power_w", f32s(&tl.power_w)),
                                ("detection_proba", f32s(&tl.detection_proba)),
                                ("scored_starts", usizes(&tl.scored_starts)),
                            ]
                            .into_iter()
                            .chain(aggregates),
                        ),
                    };
                    (key.label(), body)
                })
                .collect();
            let first = row.timelines.first().expect("at least one appliance per row");
            let mut fields = vec![
                ("id", JsonValue::String(row.id.to_string())),
                ("step_s", JsonValue::Number(first.step_s as f64)),
                ("samples", JsonValue::Number(first.status.len() as f64)),
                ("windows_total", JsonValue::Number(first.windows_total as f64)),
                ("windows_scored", JsonValue::Number(first.windows_scored as f64)),
                ("results", JsonValue::Object(results)),
            ];
            if let Some(reason) = row.degraded {
                fields.push(("degraded", JsonValue::String(reason.to_string())));
            }
            JsonValue::object(fields)
        })
        .collect();
    JsonValue::object([
        ("schema", JsonValue::String(LOCALIZE_SCHEMA.into())),
        (
            "appliances",
            JsonValue::Array(appliances.iter().map(|k| JsonValue::String(k.label())).collect()),
        ),
        ("households", JsonValue::Array(hh)),
    ])
}

/// Builds the standard error body `{"error": msg}`.
pub fn error_body(msg: &str) -> String {
    JsonValue::object([("error", JsonValue::String(msg.to_string()))]).to_compact()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilm_data::appliance::ApplianceKind;
    use nilm_data::templates::DatasetId;

    fn kettle() -> ModelKey {
        ModelKey::new(DatasetId::Refit, ApplianceKind::Kettle)
    }

    #[test]
    fn request_round_trips_including_nan() {
        let households = vec![HouseholdSeries {
            id: "h1".into(),
            series: TimeSeries::new(vec![1.0, f32::NAN, 3.5], 60),
        }];
        let body = localize_request(&[kettle()], &households, Detail::Full).to_compact();
        let req = parse_localize(body.as_bytes()).unwrap();
        assert_eq!(req.appliances, vec![kettle()]);
        assert_eq!(req.detail, Detail::Full);
        assert_eq!(req.households.len(), 1);
        assert_eq!(req.households[0].series.step_s, 60);
        let vals = &req.households[0].series.values;
        assert_eq!((vals[0], vals[2]), (1.0, 3.5));
        assert!(vals[1].is_nan(), "null must parse back to NaN");
    }

    #[test]
    fn duplicate_appliances_are_deduplicated_in_order() {
        let body = r#"{"appliances": ["refit:kettle", "refit:microwave", "refit:kettle"],
                       "households": [{"id": "h", "step_s": 60, "values": [1]}]}"#;
        let req = parse_localize(body.as_bytes()).unwrap();
        assert_eq!(
            req.appliances,
            vec![kettle(), ModelKey::new(DatasetId::Refit, ApplianceKind::Microwave)]
        );
    }

    #[test]
    fn detail_flag_parses_and_defaults_to_full() {
        let base = r#"{"appliances": ["refit:kettle"],
                       "households": [{"id": "h", "step_s": 60, "values": [1]}]"#;
        let req = parse_localize(format!("{base}}}").as_bytes()).unwrap();
        assert_eq!(req.detail, Detail::Full);
        let req = parse_localize(format!("{base}, \"detail\": \"summary\"}}").as_bytes()).unwrap();
        assert_eq!(req.detail, Detail::Summary);
        let err = parse_localize(format!("{base}, \"detail\": \"tiny\"}}").as_bytes())
            .expect_err("bad detail");
        assert!(err.contains("detail"));
    }

    #[test]
    fn malformed_requests_are_rejected_with_messages() {
        for (body, needle) in [
            (&b"\xff\xfe"[..], "UTF-8"),
            (b"{", "invalid JSON"),
            (b"{}", "appliances"),
            (br#"{"appliances": [], "households": []}"#, "at least one model"),
            (br#"{"appliances": ["bad-label"], "households": []}"#, "unknown appliance"),
            (br#"{"appliances": ["mars:kettle"], "households": []}"#, "unknown appliance"),
            (br#"{"appliances": ["refit:kettle"]}"#, "households"),
            (br#"{"appliances": ["refit:kettle"], "households": []}"#, "at least one feed"),
            (
                br#"{"appliances": ["refit:kettle"], "households": [{"id": "h"}]}"#,
                "step_s",
            ),
            (
                br#"{"appliances": ["refit:kettle"], "households": [{"id": "h", "step_s": 0, "values": [1]}]}"#,
                "step_s",
            ),
            (
                br#"{"appliances": ["refit:kettle"], "households": [{"id": "h", "step_s": 60, "values": []}]}"#,
                "empty",
            ),
            (
                br#"{"appliances": ["refit:kettle"], "households": [{"id": "h", "step_s": 60, "values": ["x"]}]}"#,
                "numbers or null",
            ),
        ] {
            let err = parse_localize(body).expect_err("must reject");
            assert!(
                err.contains(needle),
                "error {err:?} does not mention {needle:?} for {:?}",
                String::from_utf8_lossy(body)
            );
        }
    }

    #[test]
    fn response_document_is_valid_and_deterministic() {
        let status: Vec<u8> = [0u8, 1, 1, 0].repeat(16);
        let power: Vec<f32> = status.iter().map(|&s| if s == 1 { 1500.0 } else { 0.0 }).collect();
        let tl = HouseholdTimeline {
            id: "h".into(),
            step_s: 60,
            raw_status: status.clone(),
            status,
            power_w: power,
            detection_proba: vec![0.75, 0.5],
            scored_starts: vec![0, 32],
            windows_total: 2,
            windows_scored: 2,
            windows_detected: 1,
        };
        let rows = vec![HouseholdRow { id: "h", timelines: vec![&tl], degraded: None }];
        let doc = localize_response(&[kettle()], &rows, Detail::Full);
        let text = doc.to_compact();
        nilm_json::validate(&text).unwrap();
        assert_eq!(text, localize_response(&[kettle()], &rows, Detail::Full).to_compact());
        assert!(
            !text.contains("degraded"),
            "healthy rows must not mention degradation (byte-stability)"
        );
        let parsed = nilm_json::parse(&text).unwrap();
        assert_eq!(parsed.get("schema").and_then(JsonValue::as_str), Some(LOCALIZE_SCHEMA));
        let result = |doc: &JsonValue| -> JsonValue {
            doc.get("households").and_then(JsonValue::as_array).unwrap()[0]
                .get("results")
                .and_then(|r| r.get("refit:kettle"))
                .cloned()
                .unwrap()
        };
        let full = result(&parsed);
        assert_eq!(full.get("status").and_then(JsonValue::as_array).map(<[_]>::len), Some(64));
        assert_eq!(full.get("activations").and_then(JsonValue::as_usize), Some(16));

        // Summary detail drops the per-sample arrays but keeps aggregates.
        let summary_doc = localize_response(&[kettle()], &rows, Detail::Summary);
        nilm_json::validate(&summary_doc.to_compact()).unwrap();
        let summary = result(&summary_doc);
        assert!(summary.get("status").is_none());
        assert!(summary.get("power_w").is_none());
        assert_eq!(summary.get("activations").and_then(JsonValue::as_usize), Some(16));
        assert_eq!(summary.get("windows_detected").and_then(JsonValue::as_usize), Some(1));
        assert!(
            summary_doc.to_compact().len() < text.len() / 2,
            "summary responses must be much smaller"
        );
    }

    #[test]
    fn degraded_rows_carry_the_reason_and_drop_sample_arrays() {
        let tl = HouseholdTimeline {
            id: "h".into(),
            step_s: 60,
            raw_status: vec![0; 64],
            status: vec![0; 64],
            power_w: vec![0.0; 64],
            detection_proba: Vec::new(),
            scored_starts: Vec::new(),
            windows_total: 2,
            windows_scored: 0,
            windows_detected: 0,
        };
        let rows =
            vec![HouseholdRow { id: "h", timelines: vec![&tl], degraded: Some("shard panicked") }];
        // Even when the client asked for full detail, a degraded row comes
        // back as summary + reason, never fabricated per-sample data.
        let doc = localize_response(&[kettle()], &rows, Detail::Full);
        nilm_json::validate(&doc.to_compact()).unwrap();
        let row = &doc.get("households").and_then(JsonValue::as_array).unwrap()[0];
        assert_eq!(row.get("degraded").and_then(JsonValue::as_str), Some("shard panicked"));
        let result = row.get("results").and_then(|r| r.get("refit:kettle")).unwrap();
        assert!(result.get("status").is_none(), "no per-sample arrays in degraded rows");
        assert_eq!(result.get("windows_detected").and_then(JsonValue::as_usize), Some(0));
    }
}
