//! The gateway's epoll reactor: one event-loop thread multiplexing every
//! connection, plus a worker pool that decodes requests off the loop.
//!
//! ```text
//!            epoll_wait                    mpsc                 JobQueue
//!  sockets ─────────────▶ reactor thread ──────▶ worker pool ──────────▶ batcher
//!            readiness     │  ▲   parse/write     decode+route            fleet pass
//!                          │  │   state machines  validate
//!                          │  └──────────────────────┴──────────────────────┘
//!                          │        completions channel + wake pipe
//!                          ▼
//!                     responses, in request order per connection
//! ```
//!
//! The reactor thread owns the listener, the [`Poller`], and every
//! [`Conn`]. Each wake it: accepts new sockets (shedding over
//! `max_connections` with a canned 503), pumps readable connections
//! through the incremental parser and dispatches complete requests to the
//! workers, drains the completions channel back into connection outboxes,
//! expires per-request deadlines, reaps idle connections (slow-loris gets
//! a 408; a never-wrote-anything connection is closed silently), and
//! flushes outboxes — parking on `EWOULDBLOCK` with write-interest
//! re-registration. Connections are visited in rotating order with a
//! per-wake read cap, so one flooding client cannot monopolize a wake.
//!
//! Workers never block the loop: they JSON-decode, validate against the
//! model snapshot, and either answer immediately (health, metrics, errors)
//! or enqueue a batcher job carrying a [`ReplyHandle`]. Replies flow back
//! through one completions channel; the wake pipe interrupts `epoll_wait`
//! so a completion is written the moment it exists. Deadlines are armed in
//! the *reactor* at dispatch time, so a wedged worker or batcher still
//! turns into a timely `503` — nothing downstream of the loop is trusted
//! to be alive.
//!
//! The loop runs under a supervisor: a panic (the `reactor.panic` fault
//! point injects one) drops the generation's poller and connections —
//! closing every socket cleanly — and respawns a fresh loop on the same
//! listener, waker, and channels. In-flight batcher work completes into
//! the new generation and is dropped as stale; clients reconnect and
//! retry. Shutdown is ordered: the listener closes first, live
//! connections drain (bounded by their deadlines), then the loop exits,
//! the work channel drops (workers exit), and the batcher closes the
//! queue.

use crate::conn::{Conn, WriteProgress};
use crate::gateway::{route, Reply, Shared};
use crate::http::{encode_response_with, Request};
use crate::protocol::error_body;
use crate::sys::{Interest, Poller};
use nilm_obs::trace::TraceId;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::net::TcpListener;
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poll-set token of the listener socket.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Poll-set token of the wake pipe's read end.
const TOKEN_WAKER: u64 = u64::MAX - 1;
/// Per-connection read budget per wake — the fairness bound: a flooder's
/// extra bytes wait for the next rotation instead of starving its peers.
const READ_BUDGET: usize = 64 * 1024;
/// Upper bound on one epoll wait; idle ticks also drive fault-free
/// deadline/reaper scans when no readiness arrives.
const MAX_WAIT: Duration = Duration::from_millis(25);

/// One finished request: which connection/slot it answers, and the reply.
pub(crate) struct Completion {
    conn_id: u64,
    seq: u64,
    reply: Reply,
}

/// Clonable sender half of the completions channel; every send also wakes
/// the reactor so the response goes out immediately.
#[derive(Clone)]
pub(crate) struct CompletionSender {
    tx: mpsc::Sender<Completion>,
    wake: crate::sys::WakeHandle,
}

impl CompletionSender {
    fn send(&self, conn_id: u64, seq: u64, reply: Reply) {
        // A dead receiver means the gateway is gone; nothing to answer.
        let _ = self.tx.send(Completion { conn_id, seq, reply });
        self.wake.wake();
    }
}

/// The per-request reply channel handed to workers and batcher jobs.
///
/// Exactly one reply reaches the reactor per handle: either an explicit
/// [`ReplyHandle::send`], or — if the handle is dropped unanswered, which
/// is what a batcher panic's unwind does to in-flight jobs — an automatic
/// `503 Retry-After` so the waiting connection learns about the fault
/// immediately instead of burning its full deadline.
pub(crate) struct ReplyHandle {
    sender: CompletionSender,
    conn_id: u64,
    seq: u64,
    /// The request's `(trace_id, root_span_id)`, minted at parse time.
    /// Rides the handle so batcher jobs can parent their stage spans
    /// (queue-wait, coalesce, fleet stages) to the request's root span.
    pub(crate) trace: (u64, u64),
    sent: bool,
}

impl ReplyHandle {
    /// Answers the request.
    pub fn send(mut self, reply: Reply) {
        self.sent = true;
        self.sender.send(self.conn_id, self.seq, reply);
    }
}

impl Drop for ReplyHandle {
    fn drop(&mut self) {
        if !self.sent {
            self.sender.send(
                self.conn_id,
                self.seq,
                Reply::unavailable("batcher restarting after a fault, retry shortly", 1),
            );
        }
    }
}

/// One decoded-request unit for the worker pool.
struct Work {
    conn_id: u64,
    seq: u64,
    request: Request,
    /// `(trace_id, root_span_id)` minted at parse time.
    trace: (u64, u64),
    /// The request's effective deadline (already armed reactor-side; the
    /// `worker.wedge` fault sleeps past it to prove the deadline answers).
    deadline: Duration,
}

/// Join handles of the serving threads [`spawn`] started.
pub(crate) struct ReactorHandles {
    /// The supervised event-loop thread.
    pub reactor: JoinHandle<()>,
    /// The decode/validate worker pool.
    pub workers: Vec<JoinHandle<()>>,
}

/// How many workers to run: the config knob, else `NILM_REACTOR_WORKERS`,
/// else one per available core.
fn worker_count(shared: &Shared) -> usize {
    if shared.cfg.reactor_workers > 0 {
        return shared.cfg.reactor_workers;
    }
    if let Ok(v) = std::env::var("NILM_REACTOR_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Spawns the reactor thread and its worker pool on `listener`.
pub(crate) fn spawn(shared: Arc<Shared>, listener: TcpListener) -> std::io::Result<ReactorHandles> {
    listener.set_nonblocking(true)?;
    let (completion_tx, completion_rx) = mpsc::channel::<Completion>();
    let (work_tx, work_rx) = mpsc::channel::<Work>();
    let work_rx = Arc::new(Mutex::new(work_rx));
    let completions = CompletionSender { tx: completion_tx, wake: shared.waker.handle() };

    let mut workers = Vec::new();
    for i in 0..worker_count(&shared) {
        let shared = shared.clone();
        let work_rx = work_rx.clone();
        let completions = completions.clone();
        workers.push(
            std::thread::Builder::new()
                .name(format!("gateway-worker-{i}"))
                .spawn(move || worker_loop(&shared, &work_rx, &completions))
                .expect("spawn gateway worker"),
        );
    }
    let reactor = {
        let shared = shared.clone();
        std::thread::Builder::new()
            .name("gateway-reactor".into())
            .spawn(move || {
                supervise_reactor(&shared, listener, &completion_rx, work_tx, &completions)
            })
            .expect("spawn gateway reactor")
    };
    Ok(ReactorHandles { reactor, workers })
}

/// Runs the event loop under a panic supervisor. A clean return is
/// shutdown; a panic drops the generation's poller and connections (every
/// socket closes cleanly) and respawns the loop on the surviving listener,
/// waker, and channels.
fn supervise_reactor(
    shared: &Arc<Shared>,
    listener: TcpListener,
    completion_rx: &mpsc::Receiver<Completion>,
    work_tx: mpsc::Sender<Work>,
    completions: &CompletionSender,
) {
    let mut listener = Some(listener);
    let mut next_conn_id: u64 = 0;
    loop {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_reactor(
                shared,
                &mut listener,
                completion_rx,
                &work_tx,
                completions,
                &mut next_conn_id,
            )
        }));
        match outcome {
            Ok(()) => return,
            Err(_) => {
                shared.metrics.reactor_restart();
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Brief pause so a persistently failing environment (e.g.
                // epoll fd exhaustion) cannot respawn-spin a core.
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    // `work_tx` drops on return → workers' recv errors → pool exits.
}

/// One reactor generation: owns the poller and the connection table for
/// its lifetime. Unwinding out of here closes every connection.
fn run_reactor(
    shared: &Arc<Shared>,
    listener: &mut Option<TcpListener>,
    completion_rx: &mpsc::Receiver<Completion>,
    work_tx: &mpsc::Sender<Work>,
    completions: &CompletionSender,
    next_conn_id: &mut u64,
) {
    let poller = Poller::new().expect("create epoll instance");
    if let Some(l) = listener.as_ref() {
        poller.register(l.as_raw_fd(), TOKEN_LISTENER, Interest::READ).expect("register listener");
    }
    // The wake pipe is edge-triggered: it is drained to empty every wake,
    // so a level re-arm would only produce redundant wakeups.
    poller
        .register(shared.waker.read_fd(), TOKEN_WAKER, Interest::READ.edge())
        .expect("register wake pipe");

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    // Registered interest per connection, to skip no-op re-registrations.
    let mut interests: HashMap<u64, Interest> = HashMap::new();
    // Pending per-request deadlines: (expiry, conn, seq, deadline-ms).
    let mut deadlines: BinaryHeap<Reverse<(Instant, u64, u64, u64)>> = BinaryHeap::new();
    let mut events: Vec<crate::sys::Event> = Vec::new();
    let mut rotate: usize = 0;

    loop {
        // The injected event-loop panic: lands between waits, with the
        // connection table live — exactly what supervision must survive.
        nilm_fault::maybe_panic("reactor.panic");

        let now = Instant::now();
        let mut timeout = MAX_WAIT;
        if let Some(Reverse((t, ..))) = deadlines.peek() {
            timeout = timeout.min(t.saturating_duration_since(now));
        }
        events.clear();
        let n = poller.wait(&mut events, Some(timeout)).expect("epoll_wait");
        shared.metrics.reactor_wake(n);
        shared.waker.drain();
        let now = Instant::now();

        let shutting_down = shared.shutdown.load(Ordering::SeqCst);
        if shutting_down {
            if let Some(l) = listener.take() {
                // Stop accepting before draining: shutdown order is
                // accept → connections → batcher.
                let _ = poller.deregister(l.as_raw_fd());
            }
        }

        // Readiness, visited in rotating order for inter-connection
        // fairness.
        let len = events.len();
        if len > 0 {
            rotate = rotate.wrapping_add(1) % len;
        }
        for k in 0..len {
            let ev = events[(k + rotate) % len];
            match ev.token {
                TOKEN_WAKER => {}
                TOKEN_LISTENER => accept_ready(
                    shared,
                    listener,
                    &poller,
                    &mut conns,
                    &mut interests,
                    next_conn_id,
                    now,
                ),
                id => {
                    let Some(conn) = conns.get_mut(&id) else { continue };
                    let mut dead = false;
                    if ev.readable() {
                        match conn.read_some(READ_BUDGET, now) {
                            Ok(_) => {}
                            Err(_) => dead = true,
                        }
                    }
                    if !dead && ev.writable() && conn.wants_write() {
                        dead = flush_conn(shared, conn);
                    }
                    if dead {
                        drop_conn(&poller, &mut conns, &mut interests, id);
                    }
                }
            }
        }

        // Pump every connection with buffered input or freshly-ready
        // output. (Cheap when idle: the table is small and the checks are
        // a few flag reads.)
        let ids: Vec<u64> = conns.keys().copied().collect();
        for id in ids {
            let keep = pump_conn(shared, &mut conns, id, work_tx, completions, &mut deadlines, now);
            if !keep {
                drop_conn(&poller, &mut conns, &mut interests, id);
            }
        }

        // Route completions (batcher replies, worker answers) into their
        // pipeline slots and flush what became ready.
        while let Ok(done) = completion_rx.try_recv() {
            let Some(conn) = conns.get_mut(&done.conn_id) else { continue };
            let (keep_alive, trace) = {
                let slot = conn.pipeline.iter().find(|f| f.seq == done.seq);
                (
                    slot.map(|f| f.keep_alive).unwrap_or(false)
                        && !shared.shutdown.load(Ordering::SeqCst),
                    slot.map(|f| f.trace).unwrap_or(0),
                )
            };
            let bytes = encode_reply(&done.reply, keep_alive, trace);
            if let Some((route, dispatched)) =
                conn.complete(done.seq, bytes, keep_alive, done.reply.status)
            {
                shared.metrics.response(done.reply.status);
                shared.metrics.latency_ms(route, dispatched.elapsed().as_secs_f64() * 1e3);
            }
            let keep = pump_conn(
                shared,
                &mut conns,
                done.conn_id,
                work_tx,
                completions,
                &mut deadlines,
                now,
            );
            if !keep {
                drop_conn(&poller, &mut conns, &mut interests, done.conn_id);
            }
        }

        // Expired deadlines answer their slot with the timeout 503; a
        // completion arriving later finds the slot filled and is dropped.
        while let Some(Reverse((t, ..))) = deadlines.peek() {
            if *t > now {
                break;
            }
            let Reverse((_, conn_id, seq, deadline_ms)) = deadlines.pop().expect("peeked");
            let Some(conn) = conns.get_mut(&conn_id) else { continue };
            let reply = Reply::unavailable(
                &format!(
                    "deadline of {deadline_ms} ms expired before the batcher replied, retry later"
                ),
                1,
            );
            let (keep_alive, trace) = {
                let slot = conn.pipeline.iter().find(|f| f.seq == seq);
                match slot {
                    Some(f) if f.response.is_none() => {
                        (f.keep_alive && !shared.shutdown.load(Ordering::SeqCst), f.trace)
                    }
                    // Already answered (or gone): nothing to expire.
                    _ => {
                        continue;
                    }
                }
            };
            let bytes = encode_reply(&reply, keep_alive, trace);
            if let Some((route, dispatched)) = conn.complete(seq, bytes, keep_alive, reply.status) {
                shared.metrics.deadline_timeout();
                shared.metrics.response(reply.status);
                shared.metrics.latency_ms(route, dispatched.elapsed().as_secs_f64() * 1e3);
            }
            let keep =
                pump_conn(shared, &mut conns, conn_id, work_tx, completions, &mut deadlines, now);
            if !keep {
                drop_conn(&poller, &mut conns, &mut interests, conn_id);
            }
        }

        // Idle reaping. A connection that never sent a byte of the next
        // request is closed silently (keep-alive expiry); one that went
        // quiet mid-request is a slow-loris and gets a 408 first.
        let idle_cut = shared.cfg.read_timeout;
        let idle_ids: Vec<u64> = conns
            .iter()
            .filter(|(_, c)| c.is_quiescent() && now.duration_since(c.last_activity) >= idle_cut)
            .map(|(id, _)| *id)
            .collect();
        for id in idle_ids {
            let conn = conns.get_mut(&id).expect("idle conn exists");
            if conn.parser.is_idle() && !conn.has_buffered_input() {
                drop_conn(&poller, &mut conns, &mut interests, id);
            } else {
                shared.metrics.response(408);
                conn.push_synthetic_response(
                    encode_response_with(
                        408,
                        "Request Timeout",
                        "application/json",
                        error_body("idle deadline expired before the request completed").as_bytes(),
                        false,
                        &[],
                    ),
                    408,
                    now,
                );
                conn.poison_input();
                conn.promote();
                if flush_conn(shared, conn) || conn.is_quiescent() {
                    drop_conn(&poller, &mut conns, &mut interests, id);
                }
            }
        }

        if shutting_down {
            // Quiescent connections close now; ones with in-flight work
            // drain first (bounded by their deadlines).
            let done_ids: Vec<u64> =
                conns.iter().filter(|(_, c)| c.is_quiescent()).map(|(id, _)| *id).collect();
            for id in done_ids {
                drop_conn(&poller, &mut conns, &mut interests, id);
            }
            if conns.is_empty() {
                return;
            }
        }

        // Re-register interest where it changed.
        for (id, conn) in conns.iter() {
            let want = Interest {
                readable: conn.wants_read(shared.cfg.max_pipeline),
                writable: conn.wants_write(),
                edge: false,
            };
            let current = interests.get(id).copied();
            if current != Some(want) {
                if poller.reregister(conn.stream.as_raw_fd(), *id, want).is_ok() {
                    interests.insert(*id, want);
                }
            }
        }
    }
}

/// Accepts every pending connection; over `max_connections` each extra
/// socket gets a best-effort canned `503` + `Retry-After` and is dropped.
fn accept_ready(
    shared: &Arc<Shared>,
    listener: &Option<TcpListener>,
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    interests: &mut HashMap<u64, Interest>,
    next_conn_id: &mut u64,
    now: Instant,
) {
    let Some(listener) = listener.as_ref() else { return };
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            // Transient accept errors (EMFILE under fd pressure): leave
            // the remainder for the next wake instead of spinning.
            Err(_) => return,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            continue;
        }
        if conns.len() >= shared.cfg.max_connections {
            shared.metrics.shed();
            shared.metrics.response(503);
            let _ = stream.set_nonblocking(true);
            let body = error_body("connection limit reached, retry later");
            let bytes = encode_response_with(
                503,
                "Service Unavailable",
                "application/json",
                body.as_bytes(),
                false,
                &[("Retry-After", "1".into())],
            );
            let mut stream = stream;
            let _ = std::io::Write::write(&mut stream, &bytes);
            continue;
        }
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let _ = stream.set_nodelay(true);
        let id = *next_conn_id;
        *next_conn_id += 1;
        if poller.register(stream.as_raw_fd(), id, Interest::READ).is_err() {
            continue;
        }
        interests.insert(id, Interest::READ);
        conns.insert(id, Conn::new(stream, shared.cfg.limits, now));
    }
}

/// Parses buffered input into requests (up to the pipeline bound),
/// dispatches them to the workers, arms their deadlines, promotes ready
/// responses, and flushes. Returns `false` when the connection must close.
fn pump_conn(
    shared: &Arc<Shared>,
    conns: &mut HashMap<u64, Conn>,
    id: u64,
    work_tx: &mpsc::Sender<Work>,
    completions: &CompletionSender,
    deadlines: &mut BinaryHeap<Reverse<(Instant, u64, u64, u64)>>,
    now: Instant,
) -> bool {
    let Some(conn) = conns.get_mut(&id) else { return true };
    while !conn.close_after_flush && conn.pipeline.len() < shared.cfg.max_pipeline {
        let parse_start = Instant::now();
        let parse_start_ns = nilm_obs::trace::now_ns();
        match conn.parse_next() {
            Ok(Some(request)) => {
                let parse_ms = parse_start.elapsed().as_secs_f64() * 1e3;
                shared.metrics.stage_ms("parse", parse_ms);
                let deadline = request
                    .header("x-camal-deadline-ms")
                    .and_then(|v| v.trim().parse::<u64>().ok())
                    .map(Duration::from_millis)
                    .unwrap_or(shared.cfg.deadline)
                    .max(Duration::from_millis(1));
                let keep_alive = request.keep_alive();
                // Accept an inbound trace ID (client-stitched traces) or
                // mint one; either way the response echoes it back in
                // `X-Camal-Trace-Id`.
                let trace_id = request
                    .header("x-camal-trace-id")
                    .and_then(TraceId::parse)
                    .unwrap_or_else(nilm_obs::trace::mint_trace_id);
                // 0 when tracing is off — which also gates the span below,
                // so the detail string is never built for nothing.
                let root_span = nilm_obs::trace::mint_span_id();
                if root_span != 0 {
                    nilm_obs::trace::record_span(
                        trace_id,
                        root_span,
                        "parse",
                        format!("method={} path={}", request.method, request.path),
                        parse_start_ns,
                        ((parse_ms * 1e6) as u64).max(1),
                    );
                }
                let route = crate::gateway::route_label(&request.method, &request.path);
                let seq = conn.begin_request(
                    keep_alive,
                    route,
                    trace_id.0,
                    root_span,
                    now,
                    nilm_obs::trace::now_ns(),
                );
                shared.metrics.conn_backlog(conn.pipeline.len());
                deadlines.push(Reverse((now + deadline, id, seq, deadline.as_millis() as u64)));
                let trace = (trace_id.0, root_span);
                if work_tx.send(Work { conn_id: id, seq, request, trace, deadline }).is_err() {
                    // Worker pool is gone (shutdown race): answer directly.
                    let handle = ReplyHandle {
                        sender: completions.clone(),
                        conn_id: id,
                        seq,
                        trace,
                        sent: false,
                    };
                    handle.send(Reply::unavailable("gateway is shutting down", 1));
                }
            }
            Ok(None) => break,
            Err(e) => {
                // Framing is unreliable after a parse error: answer a
                // best-effort 4xx in order, drop buffered input, close.
                if let Some((status, reason)) = e.error.status() {
                    shared.metrics.response(status);
                    conn.push_synthetic_response(
                        encode_response_with(
                            status,
                            reason,
                            "application/json",
                            error_body(&e.error.to_string()).as_bytes(),
                            false,
                            &[],
                        ),
                        status,
                        now,
                    );
                }
                conn.poison_input();
                break;
            }
        }
    }
    // Peer EOF with a request half-parsed: answer what the truncation
    // maps to (400 for a cut line/headers, silence for a cut body) and
    // close once flushed — same contract as the blocking reader.
    if conn.peer_eof
        && !conn.close_after_flush
        && !conn.has_buffered_input()
        && conn.pipeline.is_empty()
        && !conn.parser.is_idle()
        && !conn.parser.failed()
    {
        let err = conn.parser.eof_error();
        if let Some((status, reason)) = err.status() {
            shared.metrics.response(status);
            // The synthetic response closes the connection itself once it
            // flushes (setting close_after_flush here would gate promote).
            conn.push_synthetic_response(
                encode_response_with(
                    status,
                    reason,
                    "application/json",
                    error_body(&err.to_string()).as_bytes(),
                    false,
                    &[],
                ),
                status,
                now,
            );
        } else {
            // A body truncated mid-stream: nothing useful to say, close.
            conn.close_after_flush = true;
        }
    }
    conn.promote();
    if conn.wants_write() && flush_conn(shared, conn) {
        return false;
    }
    if conn.close_after_flush && conn.outbox_empty() {
        return false;
    }
    if conn.peer_eof && conn.is_quiescent() && !conn.has_buffered_input() {
        return false;
    }
    true
}

/// Flushes a connection's outbox. Returns `true` when the connection died.
fn flush_conn(shared: &Arc<Shared>, conn: &mut Conn) -> bool {
    let force_short = nilm_fault::fires("conn.short_write");
    let progress = conn.write_some(force_short);
    for write in conn.take_completed_writes() {
        finish_write(shared, &write);
    }
    match progress {
        WriteProgress::Flushed => false,
        WriteProgress::Partial => {
            shared.metrics.partial_write();
            false
        }
        WriteProgress::PeerGone => true,
    }
}

/// One response fully handed to the socket: closes out the request's
/// observability — the `write` stage sample and span, the root "request"
/// span (under the ID minted at parse time, so every stage recorded in
/// between already parents to it), and the slow-request log line.
fn finish_write(shared: &Arc<Shared>, write: &crate::conn::PendingWrite) {
    let now_ns = nilm_obs::trace::now_ns();
    let write_ms = write.promoted.elapsed().as_secs_f64() * 1e3;
    let total_ms = write.dispatched.elapsed().as_secs_f64() * 1e3;
    shared.metrics.stage_ms("write", write_ms);
    if write.root_span != 0 {
        let trace = TraceId(write.trace);
        nilm_obs::trace::record_span(
            trace,
            write.root_span,
            "write",
            format!("bytes={}", write.bytes),
            write.promoted_ns,
            now_ns.saturating_sub(write.promoted_ns).max(1),
        );
        nilm_obs::trace::record_span_with_id(
            trace,
            0,
            write.root_span,
            "request",
            request_detail(write.route, write.status),
            write.dispatched_ns,
            now_ns.saturating_sub(write.dispatched_ns).max(1),
        );
    }
    if let Some(threshold) = nilm_obs::slowlog::threshold_ms() {
        if total_ms >= threshold && write.trace != 0 {
            nilm_obs::slowlog::emit(&format!(
                "route={} status={} total_ms={total_ms:.1} write_ms={write_ms:.1} trace={}",
                write.route,
                write.status,
                TraceId(write.trace).to_hex(),
            ));
        }
    }
}

/// Interned `route=... status=...` detail for the root "request" span.
/// The (route, status) space is small and fixed — route labels are
/// `&'static str` from `route_label` — so each combination formats once
/// per process and every later record is allocation-free.
fn request_detail(route: &'static str, status: u16) -> &'static str {
    use std::collections::HashMap as Map;
    use std::sync::OnceLock;
    static DETAILS: OnceLock<Mutex<Map<(&'static str, u16), &'static str>>> = OnceLock::new();
    let mut map =
        DETAILS.get_or_init(|| Mutex::new(Map::new())).lock().unwrap_or_else(|p| p.into_inner());
    map.entry((route, status))
        .or_insert_with(|| Box::leak(format!("route={route} status={status}").into_boxed_str()))
}

/// Removes a connection from the poll set and the table (closing it).
fn drop_conn(
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    interests: &mut HashMap<u64, Interest>,
    id: u64,
) {
    if let Some(conn) = conns.remove(&id) {
        let _ = poller.deregister(conn.stream.as_raw_fd());
    }
    interests.remove(&id);
}

/// Encodes a [`Reply`] with the framing the thread-per-connection handler
/// used — the body stays byte-identical; `trace` (when nonzero) adds the
/// `X-Camal-Trace-Id` echo header.
fn encode_reply(reply: &Reply, keep_alive: bool, trace: u64) -> Vec<u8> {
    let mut extra: Vec<(&str, String)> = Vec::new();
    if let Some(secs) = reply.retry_after {
        extra.push(("Retry-After", secs.to_string()));
    }
    if trace != 0 {
        extra.push(("X-Camal-Trace-Id", TraceId(trace).to_hex()));
    }
    encode_response_with(
        reply.status,
        reply.reason,
        reply.content_type,
        reply.body.as_bytes(),
        keep_alive,
        &extra,
    )
}

/// One decode/validate worker: pulls requests off the shared channel and
/// routes them. Localize requests end up on the batcher queue; everything
/// else is answered inline through the completions channel.
fn worker_loop(
    shared: &Arc<Shared>,
    work_rx: &Mutex<mpsc::Receiver<Work>>,
    completions: &CompletionSender,
) {
    loop {
        let work = {
            let rx = work_rx.lock().expect("work channel lock");
            rx.recv()
        };
        let Ok(work) = work else { return };
        // A wedged worker: sleeps past the request's deadline, proving the
        // reactor-side timer answers even when decode itself is stuck.
        if nilm_fault::fires("worker.wedge") {
            std::thread::sleep(work.deadline.saturating_mul(2));
        }
        let handle = ReplyHandle {
            sender: completions.clone(),
            conn_id: work.conn_id,
            seq: work.seq,
            trace: work.trace,
            sent: false,
        };
        route(&work.request, shared, handle);
    }
}
