//! Operational metrics of the gateway, served as JSON on `GET /metrics`
//! and in Prometheus text exposition on `GET /metrics?format=prometheus`.
//!
//! Counters are grouped behind one mutex (the gateway records a handful of
//! updates per request — contention is negligible next to inference) and
//! snapshot into a [`JsonValue`] document or an exposition body on demand.
//! Latencies live in [`nilm_obs::hist::Histogram`]s — log-linear HDR-style
//! histograms with bounded memory and a ~0.4% quantile error — keyed by
//! route, plus one histogram per pipeline stage (`parse`, `queue_wait`,
//! `coalesce`, `preprocess`, `infer`, `stitch`, `write`), so the full
//! latency distribution survives indefinitely instead of a lossy last-N
//! window.
//!
//! Recovery is observable, not just tested: the document carries batcher
//! restarts, per-request deadline timeouts, fleet shard retries and
//! degraded households, the registry's load-failure / quarantine counters
//! (kept monotonic across batcher restarts by folding each dead
//! generation's totals into a base), and — when fault injection is armed —
//! per-point trial/fire counts from [`nilm_fault::stats`]. Cumulative
//! per-`(op, shape, backend)` kernel timings from
//! [`nilm_obs::kernel::stats`] ride along in both exporters.

use camal::registry::RegistryStats;
use nilm_json::JsonValue;
use nilm_obs::hist::Histogram;
use nilm_obs::prom::PromWriter;
use std::collections::BTreeMap;
use std::sync::Mutex;

#[derive(Default)]
struct Inner {
    requests_total: u64,
    /// Requests by route label (`localize`, `healthz`, `metrics`, ...).
    by_route: BTreeMap<&'static str, u64>,
    /// Responses by status code.
    by_status: BTreeMap<u16, u64>,
    /// `503` responses from a full queue specifically.
    shed_total: u64,
    /// Requests coalesced per batcher pass → number of passes with that
    /// many requests. THE micro-batching histogram: `{1: n}` only means no
    /// cross-request batching ever happened.
    batch_requests_hist: BTreeMap<usize, u64>,
    /// GEMM batch tensors assembled across all passes (from the fleet
    /// summary), and windows scored.
    gemm_batches_total: u64,
    windows_scored_total: u64,
    inferences_total: u64,
    /// Peak queue depth observed at enqueue time.
    queue_peak: usize,
    /// End-to-end latency distribution per route (dispatch → reply).
    latency: BTreeMap<&'static str, Histogram>,
    /// Per-pipeline-stage duration distributions (`parse`, `queue_wait`,
    /// `coalesce`, `preprocess`, `infer`, `stitch`, `write`).
    stages: BTreeMap<&'static str, Histogram>,
    /// Batcher generations respawned after a panic.
    batcher_restarts: u64,
    /// Localize requests answered 503 because the per-request deadline
    /// expired before the batcher replied.
    deadline_timeouts: u64,
    /// Fleet shards retried on fresh model copies after a panic.
    shard_retries: u64,
    /// Households answered with degraded placeholder rows.
    households_degraded: u64,
    /// Registry counters folded in from batcher generations that ended
    /// (panicked or exited); `registry_current` is the live generation.
    registry_base: RegistryStats,
    registry_current: RegistryStats,
    /// `epoll_wait` returns in the reactor (each is one wake of the event
    /// loop), and the total readiness events those wakes delivered — the
    /// ratio `ready_events_per_wake` is the batching efficiency of the
    /// event loop itself.
    epoll_wakeups: u64,
    ready_events: u64,
    /// Response writes that could not complete in one `write` call
    /// (`EWOULDBLOCK` or a short write) and parked bytes in the outbox
    /// until the socket signalled writable again.
    partial_writes: u64,
    /// Largest per-connection in-flight pipeline (requests parsed but not
    /// yet answered) observed on any connection.
    conn_backlog_peak: usize,
    /// Reactor generations respawned after an event-loop panic.
    reactor_restarts: u64,
}

/// `a + b` per counter (RegistryStats has no Add impl of its own).
fn add_stats(a: RegistryStats, b: RegistryStats) -> RegistryStats {
    RegistryStats {
        hits: a.hits + b.hits,
        loads: a.loads + b.loads,
        evictions: a.evictions + b.evictions,
        load_failures: a.load_failures + b.load_failures,
        quarantines: a.quarantines + b.quarantines,
    }
}

/// Shared metrics sink. All methods take `&self`.
#[derive(Default)]
pub struct Metrics {
    inner: Mutex<Inner>,
}

impl Metrics {
    /// A fresh, zeroed sink.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Counts one request hitting `route`.
    pub fn request(&self, route: &'static str) {
        let mut m = self.inner.lock().expect("metrics lock");
        m.requests_total += 1;
        *m.by_route.entry(route).or_insert(0) += 1;
    }

    /// Counts one response with `status`.
    pub fn response(&self, status: u16) {
        let mut m = self.inner.lock().expect("metrics lock");
        *m.by_status.entry(status).or_insert(0) += 1;
    }

    /// Counts one load-shedding rejection (a `503` from a full queue; the
    /// response itself is counted by [`Metrics::response`]).
    pub fn shed(&self) {
        self.inner.lock().expect("metrics lock").shed_total += 1;
    }

    /// Records the queue depth observed right after an enqueue.
    pub fn queue_depth(&self, depth: usize) {
        let mut m = self.inner.lock().expect("metrics lock");
        m.queue_peak = m.queue_peak.max(depth);
    }

    /// Records one batcher pass: how many requests it coalesced and the
    /// fleet-pass work counters.
    pub fn batch(&self, requests: usize, gemm_batches: usize, windows: usize, inferences: usize) {
        let mut m = self.inner.lock().expect("metrics lock");
        *m.batch_requests_hist.entry(requests).or_insert(0) += 1;
        m.gemm_batches_total += gemm_batches as u64;
        m.windows_scored_total += windows as u64;
        m.inferences_total += inferences as u64;
    }

    /// Records one request's end-to-end latency under its route label.
    pub fn latency_ms(&self, route: &'static str, ms: f64) {
        let mut m = self.inner.lock().expect("metrics lock");
        m.latency.entry(route).or_default().record_ms(ms);
    }

    /// Records one pipeline-stage duration sample.
    pub fn stage_ms(&self, stage: &'static str, ms: f64) {
        let mut m = self.inner.lock().expect("metrics lock");
        m.stages.entry(stage).or_default().record_ms(ms);
    }

    /// Counts one batcher respawn after a panic.
    pub fn batcher_restart(&self) {
        self.inner.lock().expect("metrics lock").batcher_restarts += 1;
    }

    /// Counts one localize request that hit its deadline before the
    /// batcher replied (answered `503` + `Retry-After`).
    pub fn deadline_timeout(&self) {
        self.inner.lock().expect("metrics lock").deadline_timeouts += 1;
    }

    /// Records one fleet pass's recovery counters: shards retried after a
    /// panic and households answered with degraded rows.
    pub fn shard_recovery(&self, retries: usize, degraded: usize) {
        let mut m = self.inner.lock().expect("metrics lock");
        m.shard_retries += retries as u64;
        m.households_degraded += degraded as u64;
    }

    /// Updates the live registry counters (the current batcher generation).
    pub fn set_registry_current(&self, stats: RegistryStats) {
        self.inner.lock().expect("metrics lock").registry_current = stats;
    }

    /// Folds a dead batcher generation's final registry counters into the
    /// base, so the exported totals stay monotonic across restarts. The
    /// fresh generation starts from zero.
    pub fn roll_registry(&self, last_seen: RegistryStats) {
        let mut m = self.inner.lock().expect("metrics lock");
        m.registry_base = add_stats(m.registry_base, last_seen);
        m.registry_current = RegistryStats::default();
    }

    /// Records one reactor wake and how many readiness events it carried.
    pub fn reactor_wake(&self, ready_events: usize) {
        let mut m = self.inner.lock().expect("metrics lock");
        m.epoll_wakeups += 1;
        m.ready_events += ready_events as u64;
    }

    /// Counts one response write parked on `EWOULDBLOCK` / a short write.
    pub fn partial_write(&self) {
        self.inner.lock().expect("metrics lock").partial_writes += 1;
    }

    /// Records a connection's in-flight pipeline depth; keeps the peak.
    pub fn conn_backlog(&self, depth: usize) {
        let mut m = self.inner.lock().expect("metrics lock");
        m.conn_backlog_peak = m.conn_backlog_peak.max(depth);
    }

    /// Counts one reactor respawn after an event-loop panic.
    pub fn reactor_restart(&self) {
        self.inner.lock().expect("metrics lock").reactor_restarts += 1;
    }

    /// Snapshot as the `GET /metrics` JSON document. `queue_depth` is the
    /// live depth sampled by the caller.
    pub fn to_json(&self, queue_depth: usize) -> JsonValue {
        let m = self.inner.lock().expect("metrics lock");
        let routes: BTreeMap<String, JsonValue> =
            m.by_route.iter().map(|(k, v)| (k.to_string(), JsonValue::Number(*v as f64))).collect();
        let statuses: BTreeMap<String, JsonValue> = m
            .by_status
            .iter()
            .map(|(k, v)| (k.to_string(), JsonValue::Number(*v as f64)))
            .collect();
        let hist: BTreeMap<String, JsonValue> = m
            .batch_requests_hist
            .iter()
            .map(|(k, v)| (format!("{k:04}"), JsonValue::Number(*v as f64)))
            .collect();
        let localize = m.latency.get("localize");
        let by_route: BTreeMap<String, JsonValue> =
            m.latency.iter().map(|(k, h)| (k.to_string(), hist_json(h))).collect();
        let stages: BTreeMap<String, JsonValue> =
            m.stages.iter().map(|(k, h)| (k.to_string(), hist_json(h))).collect();
        JsonValue::object([
            ("requests_total", JsonValue::Number(m.requests_total as f64)),
            ("requests_by_route", JsonValue::Object(routes)),
            ("responses_by_status", JsonValue::Object(statuses)),
            ("shed_total", JsonValue::Number(m.shed_total as f64)),
            ("batch_requests_histogram", JsonValue::Object(hist)),
            ("gemm_batches_total", JsonValue::Number(m.gemm_batches_total as f64)),
            ("windows_scored_total", JsonValue::Number(m.windows_scored_total as f64)),
            ("inferences_total", JsonValue::Number(m.inferences_total as f64)),
            ("queue_depth", JsonValue::Number(queue_depth as f64)),
            ("queue_peak", JsonValue::Number(m.queue_peak as f64)),
            (
                // Localize end-to-end latency, the headline series. Kept at
                // the top level (and in this shape) for dashboard
                // continuity; `latency_by_route` has every route.
                "latency_ms",
                JsonValue::object([
                    (
                        "count",
                        JsonValue::Number(localize.map(Histogram::count).unwrap_or(0) as f64),
                    ),
                    ("mean", JsonValue::Number(localize.map(Histogram::mean_ms).unwrap_or(0.0))),
                    (
                        "p50",
                        JsonValue::Number(localize.map(|h| h.quantile_ms(0.50)).unwrap_or(0.0)),
                    ),
                    (
                        "p99",
                        JsonValue::Number(localize.map(|h| h.quantile_ms(0.99)).unwrap_or(0.0)),
                    ),
                ]),
            ),
            ("latency_by_route", JsonValue::Object(by_route)),
            ("stages", JsonValue::Object(stages)),
            ("kernels", kernels_json()),
            ("epoll_wakeups", JsonValue::Number(m.epoll_wakeups as f64)),
            (
                "ready_events_per_wake",
                JsonValue::Number(if m.epoll_wakeups > 0 {
                    m.ready_events as f64 / m.epoll_wakeups as f64
                } else {
                    0.0
                }),
            ),
            ("partial_writes", JsonValue::Number(m.partial_writes as f64)),
            ("conn_backlog_peak", JsonValue::Number(m.conn_backlog_peak as f64)),
            ("reactor_restarts", JsonValue::Number(m.reactor_restarts as f64)),
            ("batcher_restarts", JsonValue::Number(m.batcher_restarts as f64)),
            ("deadline_timeouts", JsonValue::Number(m.deadline_timeouts as f64)),
            ("shard_retries_total", JsonValue::Number(m.shard_retries as f64)),
            ("households_degraded_total", JsonValue::Number(m.households_degraded as f64)),
            ("registry", registry_json(add_stats(m.registry_base, m.registry_current))),
            ("faults", faults_json()),
            (
                "trace",
                JsonValue::object([
                    ("enabled", JsonValue::Bool(nilm_obs::trace::enabled())),
                    ("ring_spans", JsonValue::Number(nilm_obs::trace::ring_len() as f64)),
                ]),
            ),
        ])
    }

    /// Snapshot as a Prometheus text-exposition (0.0.4) body, for
    /// `GET /metrics?format=prometheus`.
    pub fn to_prometheus(&self, queue_depth: usize) -> String {
        let m = self.inner.lock().expect("metrics lock");
        let mut w = PromWriter::new();

        w.family("nilm_requests_total", "counter", "Requests received, by route.");
        for (route, n) in &m.by_route {
            w.sample("nilm_requests_total", &[("route", route)], *n as f64);
        }
        w.family("nilm_responses_total", "counter", "Responses sent, by HTTP status.");
        for (status, n) in &m.by_status {
            w.sample("nilm_responses_total", &[("status", &status.to_string())], *n as f64);
        }
        w.family("nilm_shed_total", "counter", "Requests shed by the full queue.");
        w.sample("nilm_shed_total", &[], m.shed_total as f64);

        w.family(
            "nilm_batch_passes_total",
            "counter",
            "Batcher passes, by number of coalesced requests.",
        );
        for (requests, n) in &m.batch_requests_hist {
            w.sample("nilm_batch_passes_total", &[("requests", &requests.to_string())], *n as f64);
        }
        w.family("nilm_gemm_batches_total", "counter", "GEMM batch tensors assembled.");
        w.sample("nilm_gemm_batches_total", &[], m.gemm_batches_total as f64);
        w.family("nilm_windows_scored_total", "counter", "Detector windows scored.");
        w.sample("nilm_windows_scored_total", &[], m.windows_scored_total as f64);
        w.family("nilm_inferences_total", "counter", "Ensemble-member inferences run.");
        w.sample("nilm_inferences_total", &[], m.inferences_total as f64);

        w.family("nilm_queue_depth", "gauge", "Jobs waiting in the batcher queue now.");
        w.sample("nilm_queue_depth", &[], queue_depth as f64);
        w.family("nilm_queue_peak", "gauge", "Peak queue depth observed at enqueue.");
        w.sample("nilm_queue_peak", &[], m.queue_peak as f64);

        w.family(
            "nilm_request_duration_seconds",
            "histogram",
            "End-to-end request latency (dispatch to reply), by route.",
        );
        for (route, h) in &m.latency {
            w.histogram("nilm_request_duration_seconds", &[("route", route)], h);
        }
        w.family(
            "nilm_stage_duration_seconds",
            "histogram",
            "Per-pipeline-stage duration (parse, queue_wait, coalesce, preprocess, infer, \
             stitch, write).",
        );
        for (stage, h) in &m.stages {
            w.histogram("nilm_stage_duration_seconds", &[("stage", stage)], h);
        }

        w.family(
            "nilm_kernel_calls_total",
            "counter",
            "Production kernel invocations, by op, GEMM shape, thread count, and backend.",
        );
        w.family(
            "nilm_kernel_seconds_total",
            "counter",
            "Cumulative time inside production kernels, by op, shape, and backend.",
        );
        for (key, stat) in nilm_obs::kernel::stats() {
            let (m_s, n_s, k_s, t_s) =
                (key.m.to_string(), key.n.to_string(), key.k.to_string(), key.threads.to_string());
            let labels: [(&str, &str); 6] = [
                ("op", key.op),
                ("m", &m_s),
                ("n", &n_s),
                ("k", &k_s),
                ("threads", &t_s),
                ("backend", key.backend),
            ];
            w.sample("nilm_kernel_calls_total", &labels, stat.calls as f64);
            w.sample("nilm_kernel_seconds_total", &labels, stat.total_ns as f64 / 1e9);
        }

        w.family("nilm_epoll_wakeups_total", "counter", "Reactor event-loop wakeups.");
        w.sample("nilm_epoll_wakeups_total", &[], m.epoll_wakeups as f64);
        w.family("nilm_ready_events_total", "counter", "Readiness events delivered to the loop.");
        w.sample("nilm_ready_events_total", &[], m.ready_events as f64);
        w.family("nilm_partial_writes_total", "counter", "Response writes parked on EWOULDBLOCK.");
        w.sample("nilm_partial_writes_total", &[], m.partial_writes as f64);
        w.family("nilm_conn_backlog_peak", "gauge", "Largest per-connection pipeline observed.");
        w.sample("nilm_conn_backlog_peak", &[], m.conn_backlog_peak as f64);

        w.family("nilm_reactor_restarts_total", "counter", "Reactor respawns after a panic.");
        w.sample("nilm_reactor_restarts_total", &[], m.reactor_restarts as f64);
        w.family("nilm_batcher_restarts_total", "counter", "Batcher respawns after a panic.");
        w.sample("nilm_batcher_restarts_total", &[], m.batcher_restarts as f64);
        w.family(
            "nilm_deadline_timeouts_total",
            "counter",
            "Requests answered 503 by the reactor deadline.",
        );
        w.sample("nilm_deadline_timeouts_total", &[], m.deadline_timeouts as f64);
        w.family("nilm_shard_retries_total", "counter", "Fleet shards retried after a panic.");
        w.sample("nilm_shard_retries_total", &[], m.shard_retries as f64);
        w.family(
            "nilm_households_degraded_total",
            "counter",
            "Households answered with degraded placeholder rows.",
        );
        w.sample("nilm_households_degraded_total", &[], m.households_degraded as f64);

        let reg = add_stats(m.registry_base, m.registry_current);
        w.family(
            "nilm_registry_events_total",
            "counter",
            "Model registry events across all batcher generations.",
        );
        for (event, n) in [
            ("hits", reg.hits),
            ("loads", reg.loads),
            ("evictions", reg.evictions),
            ("load_failures", reg.load_failures),
            ("quarantines", reg.quarantines),
        ] {
            w.sample("nilm_registry_events_total", &[("event", event)], n as f64);
        }

        let faults = nilm_fault::stats();
        if !faults.is_empty() {
            w.family("nilm_fault_trials_total", "counter", "Fault-point evaluations.");
            w.family("nilm_fault_fired_total", "counter", "Fault-point injections fired.");
            for (point, s) in &faults {
                w.sample("nilm_fault_trials_total", &[("point", point)], s.trials as f64);
            }
            for (point, s) in &faults {
                w.sample("nilm_fault_fired_total", &[("point", point)], s.fired as f64);
            }
        }

        w.family("nilm_trace_enabled", "gauge", "Whether NILM_TRACE span recording is on.");
        w.sample("nilm_trace_enabled", &[], if nilm_obs::trace::enabled() { 1.0 } else { 0.0 });
        w.family("nilm_trace_ring_spans", "gauge", "Spans currently held in the trace ring.");
        w.sample("nilm_trace_ring_spans", &[], nilm_obs::trace::ring_len() as f64);

        w.into_string()
    }
}

/// One histogram as a JSON summary object.
fn hist_json(h: &Histogram) -> JsonValue {
    JsonValue::object([
        ("count", JsonValue::Number(h.count() as f64)),
        ("mean_ms", JsonValue::Number(h.mean_ms())),
        ("p50_ms", JsonValue::Number(h.quantile_ms(0.50))),
        ("p99_ms", JsonValue::Number(h.quantile_ms(0.99))),
        ("max_ms", JsonValue::Number(h.max_ms())),
    ])
}

/// Cumulative kernel timings as a JSON object keyed by a readable
/// `op MxNxK tT backend` label.
fn kernels_json() -> JsonValue {
    let rows: BTreeMap<String, JsonValue> = nilm_obs::kernel::stats()
        .into_iter()
        .map(|(key, stat)| {
            (
                format!(
                    "{} {}x{}x{} t{} {}",
                    key.op, key.m, key.n, key.k, key.threads, key.backend
                ),
                JsonValue::object([
                    ("calls", JsonValue::Number(stat.calls as f64)),
                    ("total_ms", JsonValue::Number(stat.total_ns as f64 / 1e6)),
                ]),
            )
        })
        .collect();
    JsonValue::Object(rows)
}

/// Registry totals (all batcher generations combined) as a JSON object.
fn registry_json(s: RegistryStats) -> JsonValue {
    JsonValue::object([
        ("hits", JsonValue::Number(s.hits as f64)),
        ("loads", JsonValue::Number(s.loads as f64)),
        ("evictions", JsonValue::Number(s.evictions as f64)),
        ("load_failures", JsonValue::Number(s.load_failures as f64)),
        ("quarantines", JsonValue::Number(s.quarantines as f64)),
    ])
}

/// Per-point fault-injection counters; an empty object when no fault
/// point is (or ever was) armed.
fn faults_json() -> JsonValue {
    let points: BTreeMap<String, JsonValue> = nilm_fault::stats()
        .into_iter()
        .map(|(name, s)| {
            (
                name,
                JsonValue::object([
                    ("trials", JsonValue::Number(s.trials as f64)),
                    ("fired", JsonValue::Number(s.fired as f64)),
                ]),
            )
        })
        .collect();
    JsonValue::Object(points)
}

/// Nearest-rank percentile of `samples` (0.0 when empty).
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let s: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&s, 50.0), 50.0);
        assert_eq!(percentile(&s, 99.0), 99.0);
        assert_eq!(percentile(&s, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn snapshot_counts_and_validates() {
        let m = Metrics::new();
        m.request("localize");
        m.request("healthz");
        m.response(200);
        m.response(503);
        m.shed();
        m.queue_depth(5);
        m.batch(4, 2, 48, 96);
        m.latency_ms("localize", 10.0);
        m.latency_ms("localize", 30.0);
        m.stage_ms("infer", 8.5);
        let doc = m.to_json(1);
        nilm_json::validate(&doc.to_pretty()).unwrap();
        assert_eq!(doc.get("requests_total").and_then(JsonValue::as_f64), Some(2.0));
        assert_eq!(doc.get("shed_total").and_then(JsonValue::as_f64), Some(1.0));
        assert_eq!(
            doc.get("batch_requests_histogram")
                .and_then(|h| h.get("0004"))
                .and_then(JsonValue::as_f64),
            Some(1.0)
        );
        assert_eq!(doc.get("queue_peak").and_then(JsonValue::as_f64), Some(5.0));
        let lat = doc.get("latency_ms").unwrap();
        assert_eq!(lat.get("count").and_then(JsonValue::as_f64), Some(2.0));
        // Histogram quantiles report the bucket midpoint: within the
        // documented ~0.4% bound of the exact 30 ms sample, not exact.
        let p99 = lat.get("p99").and_then(JsonValue::as_f64).unwrap();
        assert!((p99 - 30.0).abs() <= 30.0 / 256.0 + 0.001, "p99 {p99} drifted from 30 ms");
        let stage = doc.get("stages").and_then(|s| s.get("infer")).unwrap();
        assert_eq!(stage.get("count").and_then(JsonValue::as_f64), Some(1.0));
    }

    #[test]
    fn latency_histograms_keep_every_sample() {
        // The old last-4096 ring forgot early samples; the histogram must
        // keep every one (count is exact, quantiles within bound).
        let m = Metrics::new();
        for i in 0..10_000u64 {
            m.latency_ms("localize", i as f64 / 10.0);
            m.latency_ms("healthz", 0.05);
        }
        let doc = m.to_json(0);
        let lat = doc.get("latency_ms").unwrap();
        assert_eq!(lat.get("count").and_then(JsonValue::as_f64), Some(10_000.0));
        let p99 = lat.get("p99").and_then(JsonValue::as_f64).unwrap();
        let exact = 990.0;
        assert!((p99 - exact).abs() <= exact / 256.0 + 0.001, "p99 {p99} vs ~{exact}");
        let hz = doc.get("latency_by_route").and_then(|r| r.get("healthz")).unwrap();
        assert_eq!(hz.get("count").and_then(JsonValue::as_f64), Some(10_000.0));
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let m = Metrics::new();
        m.request("localize");
        m.response(200);
        m.latency_ms("localize", 12.5);
        m.latency_ms("healthz", 0.2);
        m.stage_ms("infer", 9.0);
        m.stage_ms("write", 0.1);
        m.batch(2, 1, 10, 20);
        let text = m.to_prometheus(3);
        // Every series line's family was declared with HELP + TYPE, and no
        // series repeats — the two invariants the CI gate re-checks over
        // a live gateway.
        let mut declared = std::collections::BTreeSet::new();
        let mut seen = std::collections::BTreeSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                declared.insert(rest.split(' ').next().unwrap().to_string());
            } else if line.starts_with('#') {
                continue;
            } else {
                let series = line.rsplit_once(' ').unwrap().0.to_string();
                let family = series.split('{').next().unwrap();
                let base = family
                    .strip_suffix("_bucket")
                    .or_else(|| family.strip_suffix("_sum"))
                    .or_else(|| family.strip_suffix("_count"))
                    .filter(|b| declared.contains(*b))
                    .unwrap_or(family);
                assert!(declared.contains(base), "undeclared family for {series}");
                assert!(seen.insert(series.clone()), "duplicate series {series}");
            }
        }
        assert!(text.contains("nilm_request_duration_seconds_bucket{route=\"localize\","));
        assert!(text.contains("le=\"+Inf\"}"));
        assert!(text.contains("nilm_stage_duration_seconds_count{stage=\"infer\"} 1"));
        assert!(text.contains("nilm_queue_depth 3"));
    }
}
