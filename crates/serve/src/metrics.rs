//! Operational metrics of the gateway, served as JSON on `GET /metrics`.
//!
//! Counters are grouped behind one mutex (the gateway records a handful of
//! updates per request — contention is negligible next to inference) and
//! snapshot into a [`JsonValue`] document on demand. Latencies keep a
//! bounded ring of recent samples, so percentiles reflect current behavior
//! and memory stays constant under sustained load.
//!
//! Recovery is observable, not just tested: the document carries batcher
//! restarts, per-request deadline timeouts, fleet shard retries and
//! degraded households, the registry's load-failure / quarantine counters
//! (kept monotonic across batcher restarts by folding each dead
//! generation's totals into a base), and — when fault injection is armed —
//! per-point trial/fire counts from [`nilm_fault::stats`].

use camal::registry::RegistryStats;
use nilm_json::JsonValue;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// How many recent per-request latencies the percentile window keeps.
const LATENCY_WINDOW: usize = 4096;

#[derive(Default)]
struct Inner {
    requests_total: u64,
    /// Requests by route label (`localize`, `healthz`, `metrics`, ...).
    by_route: BTreeMap<&'static str, u64>,
    /// Responses by status code.
    by_status: BTreeMap<u16, u64>,
    /// `503` responses from a full queue specifically.
    shed_total: u64,
    /// Requests coalesced per batcher pass → number of passes with that
    /// many requests. THE micro-batching histogram: `{1: n}` only means no
    /// cross-request batching ever happened.
    batch_requests_hist: BTreeMap<usize, u64>,
    /// GEMM batch tensors assembled across all passes (from the fleet
    /// summary), and windows scored.
    gemm_batches_total: u64,
    windows_scored_total: u64,
    inferences_total: u64,
    /// Peak queue depth observed at enqueue time.
    queue_peak: usize,
    /// Recent localize latencies in milliseconds (ring buffer).
    latencies_ms: Vec<f64>,
    latency_next: usize,
    latency_count: u64,
    latency_sum_ms: f64,
    /// Batcher generations respawned after a panic.
    batcher_restarts: u64,
    /// Localize requests answered 503 because the per-request deadline
    /// expired before the batcher replied.
    deadline_timeouts: u64,
    /// Fleet shards retried on fresh model copies after a panic.
    shard_retries: u64,
    /// Households answered with degraded placeholder rows.
    households_degraded: u64,
    /// Registry counters folded in from batcher generations that ended
    /// (panicked or exited); `registry_current` is the live generation.
    registry_base: RegistryStats,
    registry_current: RegistryStats,
    /// `epoll_wait` returns in the reactor (each is one wake of the event
    /// loop), and the total readiness events those wakes delivered — the
    /// ratio `ready_events_per_wake` is the batching efficiency of the
    /// event loop itself.
    epoll_wakeups: u64,
    ready_events: u64,
    /// Response writes that could not complete in one `write` call
    /// (`EWOULDBLOCK` or a short write) and parked bytes in the outbox
    /// until the socket signalled writable again.
    partial_writes: u64,
    /// Largest per-connection in-flight pipeline (requests parsed but not
    /// yet answered) observed on any connection.
    conn_backlog_peak: usize,
    /// Reactor generations respawned after an event-loop panic.
    reactor_restarts: u64,
}

/// `a + b` per counter (RegistryStats has no Add impl of its own).
fn add_stats(a: RegistryStats, b: RegistryStats) -> RegistryStats {
    RegistryStats {
        hits: a.hits + b.hits,
        loads: a.loads + b.loads,
        evictions: a.evictions + b.evictions,
        load_failures: a.load_failures + b.load_failures,
        quarantines: a.quarantines + b.quarantines,
    }
}

/// Shared metrics sink. All methods take `&self`.
#[derive(Default)]
pub struct Metrics {
    inner: Mutex<Inner>,
}

impl Metrics {
    /// A fresh, zeroed sink.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Counts one request hitting `route`.
    pub fn request(&self, route: &'static str) {
        let mut m = self.inner.lock().expect("metrics lock");
        m.requests_total += 1;
        *m.by_route.entry(route).or_insert(0) += 1;
    }

    /// Counts one response with `status`.
    pub fn response(&self, status: u16) {
        let mut m = self.inner.lock().expect("metrics lock");
        *m.by_status.entry(status).or_insert(0) += 1;
    }

    /// Counts one load-shedding rejection (a `503` from a full queue; the
    /// response itself is counted by [`Metrics::response`]).
    pub fn shed(&self) {
        self.inner.lock().expect("metrics lock").shed_total += 1;
    }

    /// Records the queue depth observed right after an enqueue.
    pub fn queue_depth(&self, depth: usize) {
        let mut m = self.inner.lock().expect("metrics lock");
        m.queue_peak = m.queue_peak.max(depth);
    }

    /// Records one batcher pass: how many requests it coalesced and the
    /// fleet-pass work counters.
    pub fn batch(&self, requests: usize, gemm_batches: usize, windows: usize, inferences: usize) {
        let mut m = self.inner.lock().expect("metrics lock");
        *m.batch_requests_hist.entry(requests).or_insert(0) += 1;
        m.gemm_batches_total += gemm_batches as u64;
        m.windows_scored_total += windows as u64;
        m.inferences_total += inferences as u64;
    }

    /// Records one localize request's end-to-end latency.
    pub fn latency_ms(&self, ms: f64) {
        let mut m = self.inner.lock().expect("metrics lock");
        m.latency_count += 1;
        m.latency_sum_ms += ms;
        if m.latencies_ms.len() < LATENCY_WINDOW {
            m.latencies_ms.push(ms);
        } else {
            let i = m.latency_next;
            m.latencies_ms[i] = ms;
        }
        m.latency_next = (m.latency_next + 1) % LATENCY_WINDOW;
    }

    /// Counts one batcher respawn after a panic.
    pub fn batcher_restart(&self) {
        self.inner.lock().expect("metrics lock").batcher_restarts += 1;
    }

    /// Counts one localize request that hit its deadline before the
    /// batcher replied (answered `503` + `Retry-After`).
    pub fn deadline_timeout(&self) {
        self.inner.lock().expect("metrics lock").deadline_timeouts += 1;
    }

    /// Records one fleet pass's recovery counters: shards retried after a
    /// panic and households answered with degraded rows.
    pub fn shard_recovery(&self, retries: usize, degraded: usize) {
        let mut m = self.inner.lock().expect("metrics lock");
        m.shard_retries += retries as u64;
        m.households_degraded += degraded as u64;
    }

    /// Updates the live registry counters (the current batcher generation).
    pub fn set_registry_current(&self, stats: RegistryStats) {
        self.inner.lock().expect("metrics lock").registry_current = stats;
    }

    /// Folds a dead batcher generation's final registry counters into the
    /// base, so the exported totals stay monotonic across restarts. The
    /// fresh generation starts from zero.
    pub fn roll_registry(&self, last_seen: RegistryStats) {
        let mut m = self.inner.lock().expect("metrics lock");
        m.registry_base = add_stats(m.registry_base, last_seen);
        m.registry_current = RegistryStats::default();
    }

    /// Records one reactor wake and how many readiness events it carried.
    pub fn reactor_wake(&self, ready_events: usize) {
        let mut m = self.inner.lock().expect("metrics lock");
        m.epoll_wakeups += 1;
        m.ready_events += ready_events as u64;
    }

    /// Counts one response write parked on `EWOULDBLOCK` / a short write.
    pub fn partial_write(&self) {
        self.inner.lock().expect("metrics lock").partial_writes += 1;
    }

    /// Records a connection's in-flight pipeline depth; keeps the peak.
    pub fn conn_backlog(&self, depth: usize) {
        let mut m = self.inner.lock().expect("metrics lock");
        m.conn_backlog_peak = m.conn_backlog_peak.max(depth);
    }

    /// Counts one reactor respawn after an event-loop panic.
    pub fn reactor_restart(&self) {
        self.inner.lock().expect("metrics lock").reactor_restarts += 1;
    }

    /// Snapshot as the `GET /metrics` JSON document. `queue_depth` is the
    /// live depth sampled by the caller.
    pub fn to_json(&self, queue_depth: usize) -> JsonValue {
        let m = self.inner.lock().expect("metrics lock");
        let routes: BTreeMap<String, JsonValue> =
            m.by_route.iter().map(|(k, v)| (k.to_string(), JsonValue::Number(*v as f64))).collect();
        let statuses: BTreeMap<String, JsonValue> = m
            .by_status
            .iter()
            .map(|(k, v)| (k.to_string(), JsonValue::Number(*v as f64)))
            .collect();
        let hist: BTreeMap<String, JsonValue> = m
            .batch_requests_hist
            .iter()
            .map(|(k, v)| (format!("{k:04}"), JsonValue::Number(*v as f64)))
            .collect();
        JsonValue::object([
            ("requests_total", JsonValue::Number(m.requests_total as f64)),
            ("requests_by_route", JsonValue::Object(routes)),
            ("responses_by_status", JsonValue::Object(statuses)),
            ("shed_total", JsonValue::Number(m.shed_total as f64)),
            ("batch_requests_histogram", JsonValue::Object(hist)),
            ("gemm_batches_total", JsonValue::Number(m.gemm_batches_total as f64)),
            ("windows_scored_total", JsonValue::Number(m.windows_scored_total as f64)),
            ("inferences_total", JsonValue::Number(m.inferences_total as f64)),
            ("queue_depth", JsonValue::Number(queue_depth as f64)),
            ("queue_peak", JsonValue::Number(m.queue_peak as f64)),
            (
                "latency_ms",
                JsonValue::object([
                    ("count", JsonValue::Number(m.latency_count as f64)),
                    (
                        "mean",
                        JsonValue::Number(if m.latency_count > 0 {
                            m.latency_sum_ms / m.latency_count as f64
                        } else {
                            0.0
                        }),
                    ),
                    ("p50", JsonValue::Number(percentile(&m.latencies_ms, 50.0))),
                    ("p99", JsonValue::Number(percentile(&m.latencies_ms, 99.0))),
                ]),
            ),
            ("epoll_wakeups", JsonValue::Number(m.epoll_wakeups as f64)),
            (
                "ready_events_per_wake",
                JsonValue::Number(if m.epoll_wakeups > 0 {
                    m.ready_events as f64 / m.epoll_wakeups as f64
                } else {
                    0.0
                }),
            ),
            ("partial_writes", JsonValue::Number(m.partial_writes as f64)),
            ("conn_backlog_peak", JsonValue::Number(m.conn_backlog_peak as f64)),
            ("reactor_restarts", JsonValue::Number(m.reactor_restarts as f64)),
            ("batcher_restarts", JsonValue::Number(m.batcher_restarts as f64)),
            ("deadline_timeouts", JsonValue::Number(m.deadline_timeouts as f64)),
            ("shard_retries_total", JsonValue::Number(m.shard_retries as f64)),
            ("households_degraded_total", JsonValue::Number(m.households_degraded as f64)),
            ("registry", registry_json(add_stats(m.registry_base, m.registry_current))),
            ("faults", faults_json()),
        ])
    }
}

/// Registry totals (all batcher generations combined) as a JSON object.
fn registry_json(s: RegistryStats) -> JsonValue {
    JsonValue::object([
        ("hits", JsonValue::Number(s.hits as f64)),
        ("loads", JsonValue::Number(s.loads as f64)),
        ("evictions", JsonValue::Number(s.evictions as f64)),
        ("load_failures", JsonValue::Number(s.load_failures as f64)),
        ("quarantines", JsonValue::Number(s.quarantines as f64)),
    ])
}

/// Per-point fault-injection counters; an empty object when no fault
/// point is (or ever was) armed.
fn faults_json() -> JsonValue {
    let points: BTreeMap<String, JsonValue> = nilm_fault::stats()
        .into_iter()
        .map(|(name, s)| {
            (
                name,
                JsonValue::object([
                    ("trials", JsonValue::Number(s.trials as f64)),
                    ("fired", JsonValue::Number(s.fired as f64)),
                ]),
            )
        })
        .collect();
    JsonValue::Object(points)
}

/// Nearest-rank percentile of `samples` (0.0 when empty).
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let s: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&s, 50.0), 50.0);
        assert_eq!(percentile(&s, 99.0), 99.0);
        assert_eq!(percentile(&s, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn snapshot_counts_and_validates() {
        let m = Metrics::new();
        m.request("localize");
        m.request("healthz");
        m.response(200);
        m.response(503);
        m.shed();
        m.queue_depth(5);
        m.batch(4, 2, 48, 96);
        m.latency_ms(10.0);
        m.latency_ms(30.0);
        let doc = m.to_json(1);
        nilm_json::validate(&doc.to_pretty()).unwrap();
        assert_eq!(doc.get("requests_total").and_then(JsonValue::as_f64), Some(2.0));
        assert_eq!(doc.get("shed_total").and_then(JsonValue::as_f64), Some(1.0));
        assert_eq!(
            doc.get("batch_requests_histogram")
                .and_then(|h| h.get("0004"))
                .and_then(JsonValue::as_f64),
            Some(1.0)
        );
        assert_eq!(doc.get("queue_peak").and_then(JsonValue::as_f64), Some(5.0));
        let lat = doc.get("latency_ms").unwrap();
        assert_eq!(lat.get("count").and_then(JsonValue::as_f64), Some(2.0));
        assert_eq!(lat.get("p99").and_then(JsonValue::as_f64), Some(30.0));
    }

    #[test]
    fn latency_ring_is_bounded() {
        let m = Metrics::new();
        for i in 0..(LATENCY_WINDOW + 100) {
            m.latency_ms(i as f64);
        }
        let inner = m.inner.lock().unwrap();
        assert_eq!(inner.latencies_ms.len(), LATENCY_WINDOW);
        assert_eq!(inner.latency_count as usize, LATENCY_WINDOW + 100);
    }
}
