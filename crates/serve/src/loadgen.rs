//! Socket-level load generator for the gateway.
//!
//! Opens `connections` real TCP connections, fires `total_requests`
//! `POST /v1/localize` requests split across them (each connection sends
//! its next request only after reading the previous response —
//! per-connection closed-loop, so `connections = 1` measures strictly
//! sequential serving and `connections = N` measures the concurrency the
//! micro-batcher can coalesce), and reports requests/s plus latency
//! percentiles.
//!
//! `keep_alive = false` opens a **fresh connection per request** — the
//! "sequential single requests" shape a naive integration (one curl per
//! household) issues, paying TCP setup and a gateway handler-thread spawn
//! every time. That is the baseline the demo's throughput gate compares
//! against; `keep_alive = true` is the production client shape.

use crate::http::{read_response, HttpError};
use crate::metrics::percentile;
use nilm_obs::hist::Histogram;
use std::collections::BTreeMap;
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Result of one load generation run.
#[derive(Clone, Debug)]
pub struct LoadgenReport {
    /// Concurrent connections used.
    pub connections: usize,
    /// Requests completed with a 200 response.
    pub ok: usize,
    /// Requests answered with a non-200 status (e.g. shed with 503).
    pub errors: usize,
    /// Completed requests by HTTP status code. The chaos gate reads this:
    /// under fault injection every request must land in 200 or 503 —
    /// a single 500 (or a hang, which shows up as a connection error)
    /// fails the run.
    pub by_status: BTreeMap<u16, usize>,
    /// `503` responses that arrived without a `Retry-After` header. The
    /// recovery contract says every `503` tells the client when to come
    /// back; this counts violations (should be 0).
    pub missing_retry_after: usize,
    /// Wall-clock seconds of the whole run.
    pub elapsed_s: f64,
    /// Completed requests (any status) per second.
    pub requests_per_second: f64,
    /// Median request latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency in milliseconds.
    pub p99_ms: f64,
    /// Mean request latency in milliseconds.
    pub mean_ms: f64,
    /// Total response body bytes read.
    pub body_bytes: usize,
    /// Full latency distribution (log-linear HDR buckets, every sample
    /// retained at ~1% value resolution) — `--latency-json` dumps this, and
    /// it answers any quantile the three summary fields above don't.
    pub latency: Histogram,
}

/// Errors the load generator can hit (connection-level; HTTP error
/// *statuses* are counted in the report instead).
#[derive(Debug)]
pub enum LoadgenError {
    /// Could not connect to the gateway.
    Connect(std::io::Error),
    /// A connection died mid-run.
    Http(HttpError),
}

impl std::fmt::Display for LoadgenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadgenError::Connect(e) => write!(f, "cannot connect: {e}"),
            LoadgenError::Http(e) => write!(f, "connection failed mid-run: {e}"),
        }
    }
}

impl std::error::Error for LoadgenError {}

/// Knobs for [`run_loadgen_with`]. [`run_loadgen`] is the
/// closed-loop (`pipeline = 1`) shorthand.
#[derive(Clone, Debug)]
pub struct LoadgenOptions {
    /// Concurrent TCP connections.
    pub connections: usize,
    /// Total requests across all connections.
    pub total_requests: usize,
    /// Persistent connections (`false` = fresh connection per request).
    pub keep_alive: bool,
    /// Requests written back-to-back before the first response is read
    /// (HTTP/1.1 pipelining). `1` is the classic closed loop; higher
    /// depths exercise the reactor's per-connection in-flight pipeline
    /// and in-order response writer. Ignored when `keep_alive` is off.
    pub pipeline: usize,
    /// Open-loop pacing: each connection fires its `k`-th request at
    /// `start + k * pace` (wall-clock schedule) instead of immediately
    /// after the previous response. Latency is measured from the
    /// *scheduled* send time, so a backed-up server cannot hide queueing
    /// delay by slowing the sender down (the coordinated-omission
    /// correction). `None` is the classic closed loop. Comparing tail
    /// latency across connection counts is only meaningful paced: a
    /// closed loop at N connections keeps N requests in flight, so its
    /// latency grows ~linearly in N by Little's law no matter how good
    /// the server is. Ignored when `keep_alive` is off or `pipeline > 1`.
    pub pace: Option<Duration>,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            connections: 1,
            total_requests: 1,
            keep_alive: true,
            pipeline: 1,
            pace: None,
        }
    }
}

/// Fires `total_requests` requests with body `body` at
/// `addr`/`/v1/localize` over `connections` connections (keep-alive when
/// `keep_alive`, one fresh connection per request otherwise). Requests
/// are split as evenly as possible; each worker thread runs its own
/// closed loop and records per-request latency.
pub fn run_loadgen(
    addr: &str,
    connections: usize,
    total_requests: usize,
    body: &str,
    keep_alive: bool,
) -> Result<LoadgenReport, LoadgenError> {
    run_loadgen_with(
        addr,
        body,
        &LoadgenOptions { connections, total_requests, keep_alive, ..LoadgenOptions::default() },
    )
}

/// [`run_loadgen`] with explicit [`LoadgenOptions`] — in particular a
/// pipelining depth: each connection writes `pipeline` requests in one
/// burst, then reads that many responses in order (latency is measured
/// per request from its wave's first byte out). Pipelined waves are what
/// force the gateway to hold several decoded requests in flight per
/// connection and still answer strictly in order.
pub fn run_loadgen_with(
    addr: &str,
    body: &str,
    opts: &LoadgenOptions,
) -> Result<LoadgenReport, LoadgenError> {
    let connections = opts.connections.max(1);
    let total_requests = opts.total_requests;
    let keep_alive = opts.keep_alive;
    let pipeline = opts.pipeline.max(1);
    let pace = opts.pace.filter(|_| keep_alive && pipeline == 1);
    let request = format!(
        "POST /v1/localize HTTP/1.1\r\nHost: gateway\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{}\r\n{body}",
        body.len(),
        if keep_alive { "" } else { "Connection: close\r\n" },
    );
    let per_conn: Vec<usize> = (0..connections)
        .map(|c| total_requests / connections + usize::from(c < total_requests % connections))
        .collect();

    let start = Instant::now();
    let results: Vec<Result<WorkerTally, LoadgenError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = per_conn
            .iter()
            .map(|&n| {
                let request = request.as_str();
                scope.spawn(move || worker(addr, n, request, keep_alive, pipeline, pace))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("loadgen worker panicked")).collect()
    });
    let elapsed_s = start.elapsed().as_secs_f64();

    let mut latencies: Vec<f64> = Vec::with_capacity(total_requests);
    let (mut ok, mut errors, mut body_bytes) = (0usize, 0usize, 0usize);
    let mut by_status: BTreeMap<u16, usize> = BTreeMap::new();
    let mut missing_retry_after = 0usize;
    for r in results {
        let tally = r?;
        latencies.extend(tally.latencies_ms);
        ok += tally.ok;
        errors += tally.errors;
        body_bytes += tally.body_bytes;
        missing_retry_after += tally.missing_retry_after;
        for (status, count) in tally.by_status {
            *by_status.entry(status).or_insert(0) += count;
        }
    }
    let completed = ok + errors;
    let mut latency = Histogram::new();
    for &ms in &latencies {
        latency.record_ms(ms);
    }
    Ok(LoadgenReport {
        connections,
        ok,
        errors,
        by_status,
        missing_retry_after,
        elapsed_s,
        requests_per_second: completed as f64 / elapsed_s.max(1e-9),
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
        mean_ms: if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        },
        body_bytes,
        latency,
    })
}

/// What one worker thread measured.
#[derive(Default)]
struct WorkerTally {
    latencies_ms: Vec<f64>,
    ok: usize,
    errors: usize,
    body_bytes: usize,
    by_status: BTreeMap<u16, usize>,
    missing_retry_after: usize,
}

impl WorkerTally {
    fn record(&mut self, start: Instant, response: &crate::http::Response) {
        self.latencies_ms.push(start.elapsed().as_secs_f64() * 1e3);
        if response.status == 200 {
            self.ok += 1;
        } else {
            self.errors += 1;
        }
        *self.by_status.entry(response.status).or_insert(0) += 1;
        if response.status == 503 && response.header("retry-after").is_none() {
            self.missing_retry_after += 1;
        }
        self.body_bytes += response.body.len();
    }
}

/// One worker: `n` request/response cycles, either over one persistent
/// connection (optionally pipelined `depth` at a time, optionally on an
/// open-loop `pace` schedule) or over a fresh connection each cycle.
fn worker(
    addr: &str,
    n: usize,
    request: &str,
    keep_alive: bool,
    depth: usize,
    pace: Option<Duration>,
) -> Result<WorkerTally, LoadgenError> {
    let mut tally = WorkerTally::default();
    if n == 0 {
        return Ok(tally);
    }
    let connect = || -> Result<TcpStream, LoadgenError> {
        let stream = TcpStream::connect(addr).map_err(LoadgenError::Connect)?;
        stream.set_read_timeout(Some(Duration::from_secs(60))).map_err(LoadgenError::Connect)?;
        let _ = stream.set_nodelay(true);
        Ok(stream)
    };
    tally.latencies_ms.reserve(n);
    if keep_alive {
        let stream = connect()?;
        let mut reader = BufReader::new(&stream);
        if let Some(interval) = pace {
            // Open loop: request k is due at t0 + k*interval, and latency
            // counts from that *scheduled* instant — if the server backs
            // up, the wait to get the request out the door is charged to
            // the server, not silently dropped from the measurement.
            let t0 = Instant::now();
            for k in 0..n {
                let scheduled = t0 + interval.saturating_mul(k as u32);
                let now = Instant::now();
                if scheduled > now {
                    std::thread::sleep(scheduled - now);
                }
                (&stream)
                    .write_all(request.as_bytes())
                    .map_err(|e| LoadgenError::Http(HttpError::Io(e)))?;
                let response = read_response(&mut reader).map_err(LoadgenError::Http)?;
                tally.record(scheduled, &response);
            }
            return Ok(tally);
        }
        let mut remaining = n;
        while remaining > 0 {
            let wave = depth.min(remaining);
            remaining -= wave;
            let start = Instant::now();
            let burst = request.repeat(wave);
            (&stream)
                .write_all(burst.as_bytes())
                .map_err(|e| LoadgenError::Http(HttpError::Io(e)))?;
            for _ in 0..wave {
                let response = read_response(&mut reader).map_err(LoadgenError::Http)?;
                tally.record(start, &response);
            }
        }
    } else {
        for _ in 0..n {
            let start = Instant::now();
            let stream = connect()?;
            (&stream)
                .write_all(request.as_bytes())
                .map_err(|e| LoadgenError::Http(HttpError::Io(e)))?;
            let mut reader = BufReader::new(&stream);
            let response = read_response(&mut reader).map_err(LoadgenError::Http)?;
            tally.record(start, &response);
        }
    }
    Ok(tally)
}
