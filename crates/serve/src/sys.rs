//! Minimal epoll + wakeup-pipe shim for the gateway reactor.
//!
//! A vendored, dependency-free slice of what `mio` provides: readiness
//! polling ([`Poller`]) and cross-thread wakeups ([`Waker`]). The std
//! library already links the platform libc, so the epoll and pipe entry
//! points are declared directly as `extern "C"` — no `libc` crate needed.
//!
//! Only the parts the reactor uses are exposed: add/modify/delete a file
//! descriptor's interest set (level-triggered; edge-triggered is available
//! via [`Interest::edge`] for the listener), wait with a timeout, and a
//! non-blocking self-pipe whose read end lives in the poll set so other
//! threads (the batcher's completion path, shutdown) can interrupt an
//! `epoll_wait`.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

// epoll_ctl ops.
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const O_NONBLOCK: i32 = 0o4000;
const O_CLOEXEC: i32 = 0o2000000;

/// Readiness bits (subset of `EPOLL*` the reactor cares about).
pub mod events {
    /// Readable.
    pub const IN: u32 = 0x1;
    /// Writable.
    pub const OUT: u32 = 0x4;
    /// Error condition (always reported, no need to register).
    pub const ERR: u32 = 0x8;
    /// Hangup (always reported, no need to register).
    pub const HUP: u32 = 0x10;
    /// Peer shut down its write half (half-closed socket).
    pub const RDHUP: u32 = 0x2000;
    /// Edge-triggered delivery.
    pub const ET: u32 = 1 << 31;
}

/// Matches the kernel's `struct epoll_event` on x86_64 (packed: the kernel
/// ABI has no padding between `events` and `data` there).
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct RawEpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut RawEpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut RawEpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn pipe2(fds: *mut i32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// What a registered fd wants to be woken for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when readable.
    pub readable: bool,
    /// Wake when writable.
    pub writable: bool,
    /// Edge-triggered instead of the default level-triggered delivery.
    pub edge: bool,
}

impl Interest {
    /// Level-triggered read interest.
    pub const READ: Interest = Interest { readable: true, writable: false, edge: false };
    /// Level-triggered write interest.
    pub const WRITE: Interest = Interest { readable: false, writable: true, edge: false };
    /// Level-triggered read + write interest.
    pub const READ_WRITE: Interest = Interest { readable: true, writable: true, edge: false };
    /// No interest: stays registered (so HUP/ERR still surface) but
    /// requests no read/write wakeups — the reactor's backpressure state.
    pub const NONE: Interest = Interest { readable: false, writable: false, edge: false };

    /// The same interest, edge-triggered.
    pub fn edge(self) -> Interest {
        Interest { edge: true, ..self }
    }

    fn bits(self) -> u32 {
        let mut bits = events::RDHUP;
        if self.readable {
            bits |= events::IN;
        }
        if self.writable {
            bits |= events::OUT;
        }
        if self.edge {
            bits |= events::ET;
        }
        bits
    }
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Raw `EPOLL*` readiness bits (see [`events`]).
    pub readiness: u32,
}

impl Event {
    /// Readable (or peer-closed, which reads as EOF).
    pub fn readable(&self) -> bool {
        self.readiness & (events::IN | events::HUP | events::ERR | events::RDHUP) != 0
    }

    /// Writable (or errored, so a write will surface the error).
    pub fn writable(&self) -> bool {
        self.readiness & (events::OUT | events::HUP | events::ERR) != 0
    }

    /// Peer hung up (full close or write-half shutdown).
    pub fn hangup(&self) -> bool {
        self.readiness & (events::HUP | events::RDHUP | events::ERR) != 0
    }
}

/// An epoll instance. Closes the epoll fd on drop; registered fds are
/// owned by their connections, not the poller.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Poller> {
        // SAFETY: plain syscall wrapper, no pointers involved.
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: Option<Interest>, token: u64) -> io::Result<()> {
        let mut ev =
            RawEpollEvent { events: interest.map(Interest::bits).unwrap_or(0), data: token };
        let evp =
            if interest.is_some() { &mut ev as *mut RawEpollEvent } else { std::ptr::null_mut() };
        // SAFETY: `ev` outlives the call; DEL passes a null event as the
        // kernel (>= 2.6.9) permits.
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, evp) })?;
        Ok(())
    }

    /// Registers `fd` with the given interest under `token`.
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, Some(interest), token)
    }

    /// Changes the interest set of an already registered `fd`.
    pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, Some(interest), token)
    }

    /// Removes `fd` from the poll set.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None, 0)
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// expires, appending readiness into `out`. Returns the number of
    /// events delivered; 0 means timeout. `EINTR` is retried internally.
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        const MAX_EVENTS: usize = 256;
        let mut raw = [RawEpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
        };
        loop {
            // SAFETY: `raw` is a valid buffer of MAX_EVENTS entries.
            let n =
                unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), MAX_EVENTS as i32, timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            let n = n as usize;
            for ev in &raw[..n] {
                out.push(Event { token: ev.data, readiness: ev.events });
            }
            return Ok(n);
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: epfd is a valid fd we own.
        unsafe { close(self.epfd) };
    }
}

/// A non-blocking self-pipe used to interrupt [`Poller::wait`] from other
/// threads. The reactor registers [`Waker::read_fd`] in its poll set under
/// a reserved token (and re-registers it after a supervised respawn — the
/// pipe outlives poller generations); [`Waker::wake`] writes one byte,
/// [`Waker::drain`] empties it.
#[derive(Debug)]
pub struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl Waker {
    /// Creates the non-blocking pipe.
    pub fn new() -> io::Result<Waker> {
        let mut fds = [0i32; 2];
        // SAFETY: `fds` is a valid out-buffer for two descriptors.
        cvt(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) })?;
        Ok(Waker { read_fd: fds[0], write_fd: fds[1] })
    }

    /// The read end, for [`Poller::register`] under a reserved token.
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Signals the poller. A full pipe means a wakeup is already pending,
    /// which is just as good — never an error.
    pub fn wake(&self) {
        let byte = 1u8;
        // SAFETY: one-byte write from a valid buffer; EAGAIN/EPIPE ignored.
        unsafe { write(self.write_fd, &byte, 1) };
    }

    /// Drains pending wakeup bytes so level-triggered polling goes quiet.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: reads into a valid buffer; loop ends on EAGAIN/EOF.
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                return;
            }
        }
    }

    /// A clonable handle that can only wake (for completion senders).
    pub fn handle(&self) -> WakeHandle {
        WakeHandle { write_fd: self.write_fd }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: both fds are valid and owned by this Waker.
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

/// A copyable wake-only handle to a [`Waker`]'s write end.
///
/// Holders must not outlive the `Waker` (the reactor guarantees this by
/// joining workers and the batcher before dropping its poller); a write to
/// a stale fd after that would at worst hit EBADF, which `wake` ignores.
#[derive(Clone, Copy, Debug)]
pub struct WakeHandle {
    write_fd: RawFd,
}

impl WakeHandle {
    /// Signals the poller (best-effort; see [`Waker::wake`]).
    pub fn wake(&self) {
        let byte = 1u8;
        // SAFETY: one-byte write from a valid buffer; errors ignored.
        unsafe { write(self.write_fd, &byte, 1) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn poller_sees_socket_readability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.register(server.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        // Nothing to read yet: times out.
        let n = poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0, "no readiness before any bytes arrive");

        client.write_all(b"ping").unwrap();
        let n = poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable());

        let mut server = server;
        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).unwrap(), 4);

        // Level-triggered: drained socket goes quiet again.
        events.clear();
        let n = poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0, "level-triggered readiness clears once drained");
    }

    #[test]
    fn interest_modification_gates_write_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        // NONE: registered but asks for nothing — an idle socket stays quiet.
        poller.register(server.as_raw_fd(), 1, Interest::NONE).unwrap();
        let mut events = Vec::new();
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap(), 0);

        // Flip to WRITE: an empty socket buffer is immediately writable.
        poller.reregister(server.as_raw_fd(), 1, Interest::WRITE).unwrap();
        let n = poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
        assert_eq!(n, 1);
        assert!(events[0].writable());

        poller.deregister(server.as_raw_fd()).unwrap();
        events.clear();
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap(), 0);
    }

    #[test]
    fn waker_interrupts_a_wait_and_drains_quiet() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.register(waker.read_fd(), u64::MAX, Interest::READ).unwrap();
        let handle = waker.handle();

        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            handle.wake();
        });
        let mut events = Vec::new();
        let n = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        t.join().unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, u64::MAX);

        waker.drain();
        events.clear();
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap(), 0);
    }
}
