//! Per-connection readiness state machine for the gateway reactor.
//!
//! A [`Conn`] owns one non-blocking socket plus everything needed to make
//! progress on it one readiness event at a time: the incremental
//! [`RequestParser`], an input buffer for bytes read ahead of the parser
//! (backpressure parks them here when the pipeline is full), the in-flight
//! request pipeline, and a write outbox with a cursor so a response
//! interrupted by `EWOULDBLOCK` resumes exactly where it stopped.
//!
//! **Ordering invariant.** Pipelined requests are answered strictly in
//! request order even though the batcher completes them out of order:
//! completions land in their [`InFlight`] slot by sequence number, and
//! [`Conn::promote`] moves responses into the outbox only from the front
//! of the pipeline. A completion for a request that is no longer tracked
//! (connection died, deadline already answered it) is dropped harmlessly.
//!
//! The struct is pure state + socket I/O — it never touches the queue,
//! the metrics sink, or the poller. The reactor decides *when* to call
//! these methods and what the outcomes mean; that split keeps the state
//! machine unit-testable over plain socket pairs.

use crate::http::{ParseError, Request, RequestParser};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// One request that has been parsed and dispatched but not yet answered
/// on the wire.
#[derive(Debug)]
pub(crate) struct InFlight {
    /// Connection-local sequence number (response order).
    pub seq: u64,
    /// The request's own keep-alive wish (`Connection` header semantics);
    /// the reactor combines it with the shutdown flag at encode time.
    pub keep_alive: bool,
    /// Route label (`"localize"`, `"healthz"`, ...) — keys the per-route
    /// latency histogram and rides into the slow-request log.
    pub route: &'static str,
    /// Trace ID minted (or accepted inbound) at parse time; echoed on the
    /// response as `X-Camal-Trace-Id`. Never 0 for a parsed request.
    pub trace: u64,
    /// Pre-minted root "request" span ID (0 when tracing is off); every
    /// stage span of this request parents to it.
    pub root_span: u64,
    /// When the request was handed to the worker pool; latency and the
    /// request deadline are measured from here.
    pub dispatched: Instant,
    /// `dispatched` on the trace clock (ns since the trace epoch).
    pub dispatched_ns: u64,
    /// HTTP status of the completion that filled the slot (0 while empty).
    pub status: u16,
    /// Encoded response bytes once the completion (or deadline) arrived.
    pub response: Option<Vec<u8>>,
    /// Whether the encoded response announced `Connection: keep-alive`;
    /// `false` closes the connection once the response is flushed.
    pub effective_keep_alive: bool,
}

/// One response whose bytes have been promoted into the outbox; resolved
/// into a completed-write record once the socket has taken all of them.
/// The reactor turns completed writes into the `write` stage metric, the
/// closing trace spans, and the slow-request log line.
#[derive(Debug)]
pub(crate) struct PendingWrite {
    /// The response is fully written once `Conn::bytes_sent` reaches this.
    end_at: u64,
    /// Route label of the request being answered.
    pub route: &'static str,
    /// HTTP status of the response.
    pub status: u16,
    /// Trace ID (0 for synthetic responses with no parsed request).
    pub trace: u64,
    /// Root span ID (0 when tracing is off).
    pub root_span: u64,
    /// When the request was dispatched (end-to-end latency start).
    pub dispatched: Instant,
    /// `dispatched` on the trace clock.
    pub dispatched_ns: u64,
    /// When the response entered the outbox (write-stage start).
    pub promoted: Instant,
    /// `promoted` on the trace clock.
    pub promoted_ns: u64,
    /// Encoded response size in bytes.
    pub bytes: usize,
}

/// How far a [`Conn::write_some`] call got.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum WriteProgress {
    /// The outbox is empty (nothing was pending, or it all went out).
    Flushed,
    /// Bytes remain parked in the outbox; the reactor must register write
    /// interest and retry on the next writable event.
    Partial,
    /// The socket is dead; drop the connection.
    PeerGone,
}

/// One live connection owned by the reactor.
#[derive(Debug)]
pub(crate) struct Conn {
    /// The non-blocking socket.
    pub stream: TcpStream,
    /// The incremental request parser (one per connection, survives
    /// across keep-alive requests).
    pub parser: RequestParser,
    /// Bytes read off the socket but not yet consumed by the parser.
    inbuf: Vec<u8>,
    /// Encoded responses waiting to go out, in response order.
    outbox: Vec<u8>,
    /// How much of `outbox` has already been written.
    outpos: usize,
    /// Parsed-but-unanswered requests, front = oldest.
    pub pipeline: VecDeque<InFlight>,
    /// Promoted responses not yet fully written, front = oldest.
    pending_writes: VecDeque<PendingWrite>,
    /// Total response bytes ever moved into the outbox.
    bytes_queued: u64,
    /// Total response bytes ever accepted by the socket.
    bytes_sent: u64,
    next_seq: u64,
    /// Set when the connection must close once the outbox drains: a
    /// `Connection: close` response, a parse error's 4xx, shutdown.
    pub close_after_flush: bool,
    /// The peer's read half returned EOF (full close or `shutdown(SHUT_WR)`
    /// half close). Responses still in flight are flushed before reaping.
    pub peer_eof: bool,
    /// When the connection last sat at a request boundary — connect time,
    /// reset when the first byte of a new request arrives. The idle reaper
    /// measures from here, so the *whole* request must arrive within the
    /// read timeout: a slow-loris dripping one header byte per tick cannot
    /// keep resetting the clock.
    pub last_activity: Instant,
}

impl Conn {
    /// Wraps an accepted (already non-blocking) socket.
    pub fn new(stream: TcpStream, limits: crate::http::HttpLimits, now: Instant) -> Conn {
        Conn {
            stream,
            parser: RequestParser::new(limits),
            inbuf: Vec::new(),
            outbox: Vec::new(),
            outpos: 0,
            pipeline: VecDeque::new(),
            pending_writes: VecDeque::new(),
            bytes_queued: 0,
            bytes_sent: 0,
            next_seq: 0,
            close_after_flush: false,
            peer_eof: false,
            last_activity: now,
        }
    }

    /// Reads whatever the socket has ready (up to `cap` bytes this call —
    /// the reactor's per-wake fairness bound) into the input buffer.
    /// Returns `Ok(true)` if any byte or an EOF arrived. Level-triggered
    /// polling re-delivers readability for bytes left beyond `cap`.
    pub fn read_some(&mut self, cap: usize, now: Instant) -> std::io::Result<bool> {
        let mut scratch = [0u8; 16 * 1024];
        let mut progressed = false;
        let mut taken = 0usize;
        while taken < cap && !self.peer_eof {
            let want = scratch.len().min(cap - taken);
            match self.stream.read(&mut scratch[..want]) {
                Ok(0) => {
                    self.peer_eof = true;
                    progressed = true;
                }
                Ok(n) => {
                    // Only the FIRST byte of a request restarts the idle
                    // clock; later drips do not (slow-loris defense).
                    if self.parser.is_idle() && self.inbuf.is_empty() {
                        self.last_activity = now;
                    }
                    self.inbuf.extend_from_slice(&scratch[..n]);
                    taken += n;
                    progressed = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(progressed)
    }

    /// Advances the parser over the buffered input. `Ok(None)` means more
    /// bytes are needed (or parsing is paused); `Ok(Some)` is one complete
    /// request, with any pipelined remainder still buffered for the next
    /// call. On `Err` the buffered input is poisoned — the caller answers
    /// a best-effort 4xx and closes.
    pub fn parse_next(&mut self) -> Result<Option<Request>, ParseError> {
        if self.inbuf.is_empty() || self.parser.failed() {
            return Ok(None);
        }
        let (consumed, request) = self.parser.feed(&self.inbuf)?;
        self.inbuf.drain(..consumed);
        Ok(request)
    }

    /// True while buffered input may still contain a parseable request.
    pub fn has_buffered_input(&self) -> bool {
        !self.inbuf.is_empty()
    }

    /// Drops buffered input (after a parse error — framing is unreliable).
    pub fn poison_input(&mut self) {
        self.inbuf.clear();
    }

    /// Registers a dispatched request in the pipeline and returns its
    /// sequence number.
    pub fn begin_request(
        &mut self,
        keep_alive: bool,
        route: &'static str,
        trace: u64,
        root_span: u64,
        now: Instant,
        now_ns: u64,
    ) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pipeline.push_back(InFlight {
            seq,
            keep_alive,
            route,
            trace,
            root_span,
            dispatched: now,
            dispatched_ns: now_ns,
            status: 0,
            response: None,
            effective_keep_alive: keep_alive,
        });
        seq
    }

    /// Enqueues an already-encoded response that has no pipeline slot (a
    /// parse error's 4xx, the slow-loris 408). It must still respect
    /// response order, so it rides the pipeline as a pre-completed entry.
    pub fn push_synthetic_response(&mut self, bytes: Vec<u8>, status: u16, now: Instant) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pipeline.push_back(InFlight {
            seq,
            keep_alive: false,
            route: "error",
            trace: 0,
            root_span: 0,
            dispatched: now,
            dispatched_ns: nilm_obs::trace::now_ns(),
            status,
            response: Some(bytes),
            effective_keep_alive: false,
        });
    }

    /// Fills the pipeline slot `seq` with its encoded response. Returns
    /// the slot's metadata if it was still waiting — `None` means the
    /// completion was stale (already answered by the deadline path, or
    /// the slot was discarded) and must be dropped.
    pub fn complete(
        &mut self,
        seq: u64,
        bytes: Vec<u8>,
        effective_keep_alive: bool,
        status: u16,
    ) -> Option<(&'static str, Instant)> {
        let slot = self.pipeline.iter_mut().find(|f| f.seq == seq)?;
        if slot.response.is_some() {
            return None;
        }
        slot.response = Some(bytes);
        slot.effective_keep_alive = effective_keep_alive;
        slot.status = status;
        Some((slot.route, slot.dispatched))
    }

    /// Moves consecutively-ready responses from the pipeline front into
    /// the outbox (strict request order). A non-keep-alive response marks
    /// the connection close-after-flush and discards everything pipelined
    /// behind it — exactly what the thread-per-connection handler did by
    /// never reading past a `Connection: close` request.
    pub fn promote(&mut self) {
        while let Some(front) = self.pipeline.front() {
            if front.response.is_none() || self.close_after_flush {
                break;
            }
            let front = self.pipeline.pop_front().expect("front exists");
            let bytes = front.response.as_deref().unwrap_or_default();
            self.outbox.extend_from_slice(bytes);
            self.bytes_queued += bytes.len() as u64;
            self.pending_writes.push_back(PendingWrite {
                end_at: self.bytes_queued,
                route: front.route,
                status: front.status,
                trace: front.trace,
                root_span: front.root_span,
                dispatched: front.dispatched,
                dispatched_ns: front.dispatched_ns,
                promoted: Instant::now(),
                promoted_ns: nilm_obs::trace::now_ns(),
                bytes: bytes.len(),
            });
            if !front.effective_keep_alive {
                self.close_after_flush = true;
                self.pipeline.clear();
                self.inbuf.clear();
            }
        }
    }

    /// Drains the responses whose last byte has been accepted by the
    /// socket since the previous call. The reactor records each as one
    /// completed `write` stage.
    pub fn take_completed_writes(&mut self) -> Vec<PendingWrite> {
        let mut done = Vec::new();
        while let Some(front) = self.pending_writes.front() {
            if front.end_at > self.bytes_sent {
                break;
            }
            done.push(self.pending_writes.pop_front().expect("front exists"));
        }
        done
    }

    /// Writes as much of the outbox as the socket accepts. `force_short`
    /// caps the write at one byte and parks the rest — the deterministic
    /// handle for the `conn.short_write` fault point, so tests can drive
    /// the partial-write path without fighting kernel buffer sizes.
    pub fn write_some(&mut self, force_short: bool) -> WriteProgress {
        while self.outpos < self.outbox.len() {
            let end = if force_short { self.outpos + 1 } else { self.outbox.len() };
            match self.stream.write(&self.outbox[self.outpos..end]) {
                Ok(0) => return WriteProgress::PeerGone,
                Ok(n) => {
                    self.outpos += n;
                    self.bytes_sent += n as u64;
                    if force_short && self.outpos < self.outbox.len() {
                        // One byte went out; park the rest for the next
                        // writable event, as a genuinely full socket would.
                        return WriteProgress::Partial;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    return WriteProgress::Partial;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return WriteProgress::PeerGone,
            }
        }
        self.outbox.clear();
        self.outpos = 0;
        WriteProgress::Flushed
    }

    /// True when every queued response byte has hit the socket.
    pub fn outbox_empty(&self) -> bool {
        self.outpos >= self.outbox.len()
    }

    /// True when the connection wants read readiness: it can still accept
    /// request bytes and has pipeline room (`max_pipeline` is the
    /// backpressure bound — a full pipeline drops read interest until
    /// responses drain).
    pub fn wants_read(&self, max_pipeline: usize) -> bool {
        !self.peer_eof
            && !self.close_after_flush
            && !self.parser.failed()
            && self.pipeline.len() < max_pipeline
    }

    /// True when unflushed response bytes are parked in the outbox.
    pub fn wants_write(&self) -> bool {
        !self.outbox_empty()
    }

    /// True when nothing is pending in either direction — the state in
    /// which the idle reaper (or shutdown) may close the connection.
    pub fn is_quiescent(&self) -> bool {
        self.pipeline.is_empty() && self.outbox_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{encode_response_with, HttpLimits};
    use std::net::TcpListener;
    use std::time::Duration;

    fn pair() -> (Conn, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        (Conn::new(server, HttpLimits::default(), Instant::now()), client)
    }

    fn drain_client(client: &mut TcpStream, want: usize) -> Vec<u8> {
        client.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut out = vec![0u8; want];
        client.read_exact(&mut out).unwrap();
        out
    }

    #[test]
    fn out_of_order_completions_are_written_in_request_order() {
        let (mut conn, mut client) = pair();
        let now = Instant::now();
        let a = conn.begin_request(true, "other", 0, 0, now, 0);
        let b = conn.begin_request(true, "other", 0, 0, now, 0);
        // Complete the *second* request first: nothing may flush yet.
        assert!(conn.complete(b, b"B".to_vec(), true, 200).is_some());
        conn.promote();
        assert!(conn.outbox_empty(), "response B must wait behind unanswered A");
        assert!(conn.complete(a, b"A".to_vec(), true, 200).is_some());
        conn.promote();
        assert_eq!(conn.write_some(false), WriteProgress::Flushed);
        assert_eq!(drain_client(&mut client, 2), b"AB");
    }

    #[test]
    fn stale_completions_are_dropped() {
        let (mut conn, _client) = pair();
        let now = Instant::now();
        let a = conn.begin_request(true, "other", 0, 0, now, 0);
        assert!(conn.complete(a, b"first".to_vec(), true, 200).is_some());
        assert!(
            conn.complete(a, b"late duplicate".to_vec(), true, 200).is_none(),
            "a second completion for the same seq must be ignored"
        );
        assert!(conn.complete(999, b"unknown".to_vec(), true, 200).is_none());
    }

    #[test]
    fn forced_short_writes_resume_where_they_stopped() {
        let (mut conn, mut client) = pair();
        let now = Instant::now();
        let seq = conn.begin_request(true, "other", 0, 0, now, 0);
        let body = encode_response_with(200, "OK", "application/json", b"{\"ok\":true}", true, &[]);
        let total = body.len();
        conn.complete(seq, body, true, 200);
        conn.promote();
        // Drip the response one byte per "writable event".
        let mut rounds = 0;
        while conn.write_some(true) == WriteProgress::Partial {
            rounds += 1;
            assert!(rounds < 10_000, "short writes must make progress");
        }
        assert!(rounds >= total - 1, "every byte but the last took its own write");
        assert_eq!(drain_client(&mut client, total).len(), total);
    }

    #[test]
    fn completed_writes_resolve_only_when_the_last_byte_leaves() {
        let (mut conn, mut client) = pair();
        let now = Instant::now();
        let seq = conn.begin_request(true, "localize", 42, 7, now, 123);
        conn.complete(seq, b"hello".to_vec(), true, 200);
        conn.promote();
        assert!(conn.take_completed_writes().is_empty(), "nothing written yet");
        // Drip one byte per "writable event": the pending write must not
        // resolve until the final byte is accepted.
        let mut rounds = 0;
        while conn.write_some(true) == WriteProgress::Partial {
            assert!(conn.take_completed_writes().is_empty(), "write is still partial");
            rounds += 1;
            assert!(rounds < 100, "short writes must make progress");
        }
        let done = conn.take_completed_writes();
        assert_eq!(done.len(), 1);
        let w = &done[0];
        assert_eq!((w.route, w.status, w.trace, w.root_span, w.bytes), ("localize", 200, 42, 7, 5));
        assert_eq!(drain_client(&mut client, 5), b"hello");
    }

    #[test]
    fn close_response_discards_pipelined_leftovers() {
        let (mut conn, mut client) = pair();
        let now = Instant::now();
        let a = conn.begin_request(false, "other", 0, 0, now, 0);
        let _b = conn.begin_request(true, "other", 0, 0, now, 0);
        conn.complete(a, b"bye".to_vec(), false, 200);
        conn.promote();
        assert!(conn.close_after_flush);
        assert!(conn.pipeline.is_empty(), "requests behind a close response are discarded");
        assert!(!conn.wants_read(64));
        assert_eq!(conn.write_some(false), WriteProgress::Flushed);
        assert_eq!(drain_client(&mut client, 3), b"bye");
    }

    #[test]
    fn backpressure_drops_read_interest_at_the_pipeline_bound() {
        let (mut conn, _client) = pair();
        let now = Instant::now();
        assert!(conn.wants_read(2));
        conn.begin_request(true, "other", 0, 0, now, 0);
        assert!(conn.wants_read(2));
        let a = conn.begin_request(true, "other", 0, 0, now, 0);
        assert!(!conn.wants_read(2), "a full pipeline must stop reading");
        conn.complete(a, b"x".to_vec(), true, 200);
        // Still full until the front drains too — order, not count alone.
        assert!(!conn.wants_read(2));
    }
}
