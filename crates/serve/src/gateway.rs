//! The gateway server: accept loop, per-connection handlers, and the
//! micro-batching scheduler thread.
//!
//! One thread owns the [`ModelRegistry`] — the **batcher**. Connection
//! handlers never touch models; they parse + validate requests, enqueue
//! jobs on the bounded [`JobQueue`], and block on a per-job response
//! channel. The batcher pops the first waiting job, drains whatever else
//! queued up behind it (the concurrent backlog), groups jobs by requested
//! key set, and serves each group as **one**
//! [`camal::fleet::serve_fleet`] pass with every job's households merged —
//! so windows from different requests share GEMM batches. Because window
//! scoring is row-independent (eval-mode BatchNorm, per-row GEMM tiles),
//! coalescing never changes a response: each one is bit-identical to a
//! direct [`camal::stream::serve`] call, which the concurrency tests pin.
//!
//! Overload: a full queue answers `503` immediately (load shedding), so
//! handler threads never pile up behind a slow batcher unbounded.
//! Shutdown: [`Gateway::shutdown`] (or `POST /admin/shutdown`) stops the
//! accept loop, lets in-flight connections finish their current request,
//! drains the queue, and joins every thread.
//!
//! Failure is a first-class input, not an afterthought. The batcher runs
//! under a supervisor (`supervise_batcher`): a panic anywhere in a pass
//! is caught, the in-flight jobs' reply channels drop (their handlers
//! answer `503` + `Retry-After` instead of hanging or `500`ing), and a
//! fresh batcher generation is respawned with the registry rebuilt from
//! the startup `RegistrySpec` — file-backed checkpoints re-register
//! their paths, pinned models are restored from byte snapshots taken at
//! warm time. Handlers never block forever: the localize handler waits on
//! the reply channel with `recv_timeout` bounded by
//! [`GatewayConfig::deadline`] (overridable per request via the
//! `X-Camal-Deadline-Ms` header), so even a wedged pass turns into a
//! timely `503` + `Retry-After`. Registry load failures and quarantines
//! surface as `503` + `Retry-After` too — `500` is reserved for genuine
//! programming errors.

use crate::http::{read_request, write_json, write_json_with, HttpLimits, Request};
use crate::metrics::Metrics;
use crate::protocol::{error_body, localize_response, parse_localize, Detail, HouseholdRow};
use crate::queue::{JobQueue, PushError};
use camal::fleet::{serve_fleet, FleetConfig, FleetError};
use camal::registry::{ModelKey, ModelRegistry, QuarantinePolicy, RegistryError};
use camal::stream::HouseholdSeries;
use camal::CamalModel;
use nilm_json::JsonValue;
use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of a [`Gateway`].
#[derive(Clone, Debug)]
pub struct GatewayConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Bounded queue capacity; a full queue sheds load with `503`.
    pub queue_capacity: usize,
    /// Maximum requests coalesced into one batcher pass.
    pub max_coalesce: usize,
    /// Extra wait after the first job of a pass, letting concurrent
    /// requests land in the same pass. Zero relies on natural backlog.
    pub linger: Duration,
    /// Windows per GEMM batch inside a fleet pass.
    pub batch_windows: usize,
    /// Maximum concurrent connection handler threads; connections beyond
    /// it are answered `503` and closed immediately.
    pub max_connections: usize,
    /// Socket read timeout; an idle keep-alive connection is closed after
    /// this long.
    pub read_timeout: Duration,
    /// HTTP parsing limits.
    pub limits: HttpLimits,
    /// Apply Table I duration priors on stitched timelines.
    pub apply_priors: bool,
    /// How long a handler waits for the batcher's reply before answering
    /// `503` + `Retry-After` on its own. Overridable per request with the
    /// `X-Camal-Deadline-Ms` header. This is the anti-wedge bound: no
    /// localize request ever outlives it, whatever the batcher is doing.
    pub deadline: Duration,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            addr: "127.0.0.1:0".into(),
            queue_capacity: 256,
            max_coalesce: 64,
            linger: Duration::ZERO,
            batch_windows: 64,
            max_connections: 1024,
            read_timeout: Duration::from_secs(5),
            limits: HttpLimits::default(),
            apply_priors: true,
            deadline: Duration::from_secs(30),
        }
    }
}

/// What the serving side knows about one registered model, snapshotted at
/// startup for lock-free request validation in handler threads.
#[derive(Clone, Debug)]
pub struct ModelMeta {
    /// Sampling step of the model's dataset template.
    pub step_s: u32,
    /// Training window length.
    pub window: usize,
    /// Per-member backbone descriptions, e.g. `resnet(k5/div8)` — a mixed
    /// zoo shows heterogeneous entries here.
    pub backbones: Vec<String>,
    /// Per-member trainable-parameter counts, aligned with `backbones`.
    pub param_counts: Vec<usize>,
}

/// A computed HTTP response: status line plus body, with an optional
/// `Retry-After` value (seconds) that `503`s carry so clients can back
/// off deliberately instead of guessing.
#[derive(Clone, Debug)]
struct Reply {
    status: u16,
    reason: &'static str,
    body: String,
    retry_after: Option<u64>,
}

impl Reply {
    /// A reply with no extra headers.
    fn new(status: u16, reason: &'static str, body: String) -> Reply {
        Reply { status, reason, body, retry_after: None }
    }

    /// A `503` carrying `Retry-After: {retry_after_s}`.
    fn unavailable(message: &str, retry_after_s: u64) -> Reply {
        Reply {
            status: 503,
            reason: "Service Unavailable",
            body: error_body(message),
            retry_after: Some(retry_after_s.max(1)),
        }
    }
}

/// How to recreate one registry entry after a batcher panic.
enum RebuildEntry {
    /// File-backed checkpoint: re-register the path, reload lazily.
    File(PathBuf),
    /// Pinned in-memory model: restore from a byte snapshot taken at warm
    /// time (pinned models have no backing file to reload from).
    Pinned(Vec<u8>),
}

/// Everything needed to rebuild the batcher's [`ModelRegistry`] from
/// scratch, captured once at [`Gateway::start`]. The supervisor replays it
/// after a panic so a fresh generation serves the same model set with the
/// same budget and quarantine policy.
struct RegistrySpec {
    entries: Vec<(ModelKey, RebuildEntry)>,
    max_loaded: usize,
    quarantine: QuarantinePolicy,
}

impl RegistrySpec {
    /// Captures the rebuild recipe from a warmed registry.
    fn capture(registry: &mut ModelRegistry) -> RegistrySpec {
        let mut entries = Vec::new();
        for row in registry.manifest() {
            let rebuild = match row.path {
                Some(path) => RebuildEntry::File(path),
                None => {
                    let model = registry.get_mut(row.key).expect("pinned model is always resident");
                    RebuildEntry::Pinned(model.to_bytes())
                }
            };
            entries.push((row.key, rebuild));
        }
        RegistrySpec {
            entries,
            max_loaded: registry.max_loaded(),
            quarantine: registry.quarantine_policy(),
        }
    }

    /// Builds a fresh registry from the recipe.
    fn build(&self) -> Result<ModelRegistry, String> {
        let mut registry = ModelRegistry::new(self.max_loaded);
        registry.set_quarantine_policy(self.quarantine);
        for (key, entry) in &self.entries {
            match entry {
                RebuildEntry::File(path) => registry.register_file(*key, path.clone()),
                RebuildEntry::Pinned(bytes) => {
                    let model = CamalModel::from_bytes(bytes)
                        .map_err(|e| format!("cannot restore pinned model {key}: {e}"))?;
                    registry.insert(*key, model);
                }
            }
        }
        Ok(registry)
    }
}

struct Job {
    /// Requested keys, deduplicated, in request order (response order).
    keys: Vec<ModelKey>,
    /// Sorted copy of `keys` — the coalescing identity: jobs wanting the
    /// same model set share one fleet pass.
    group: Vec<ModelKey>,
    households: Vec<HouseholdSeries>,
    detail: Detail,
    reply: mpsc::Sender<Reply>,
}

struct Shared {
    cfg: GatewayConfig,
    addr: SocketAddr,
    models: BTreeMap<ModelKey, ModelMeta>,
    queue: JobQueue<Job>,
    metrics: Metrics,
    shutdown: AtomicBool,
}

impl Shared {
    /// Flags shutdown and pokes the accept loop awake with a self-connect.
    fn request_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running gateway. Dropping it without [`Gateway::shutdown`] leaves the
/// server threads running for the rest of the process.
pub struct Gateway {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Gateway {
    /// Binds, warms every registered model (lazy checkpoints load now, so
    /// corrupt files fail fast instead of per-request), and spawns the
    /// accept loop and the batcher thread. The registry moves into the
    /// batcher — it is the only thread that touches models afterwards.
    pub fn start(mut registry: ModelRegistry, cfg: GatewayConfig) -> std::io::Result<Gateway> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let mut models = BTreeMap::new();
        for key in registry.keys() {
            let model = registry
                .get_mut(key)
                .map_err(|e| std::io::Error::other(format!("cannot warm model {key}: {e}")))?;
            let window = model.window();
            if window == 0 {
                return Err(std::io::Error::other(format!(
                    "model {key} does not record its training window"
                )));
            }
            let step_s = nilm_data::templates::template(key.dataset).step_s;
            let backbones = model.describe_members();
            let param_counts = model.member_param_counts();
            models.insert(key, ModelMeta { step_s, window, backbones, param_counts });
        }
        if models.is_empty() {
            return Err(std::io::Error::other("gateway needs at least one registered model"));
        }
        // Capture the rebuild recipe while every model is warm, so the
        // supervisor can respawn the batcher after a panic without help.
        let spec = RegistrySpec::capture(&mut registry);
        let shared = Arc::new(Shared {
            queue: JobQueue::new(cfg.queue_capacity),
            metrics: Metrics::new(),
            shutdown: AtomicBool::new(false),
            cfg,
            addr,
            models,
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let batcher = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("gateway-batcher".into())
                .spawn(move || supervise_batcher(&shared, registry, &spec))
                .expect("spawn batcher thread")
        };
        let accept = {
            let shared = shared.clone();
            let conns = conns.clone();
            std::thread::Builder::new()
                .name("gateway-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &conns))
                .expect("spawn accept thread")
        };
        Ok(Gateway { shared, accept: Some(accept), batcher: Some(batcher), conns })
    }

    /// The bound socket address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// True once shutdown has been requested (locally or over HTTP).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown and joins every server thread: the accept loop
    /// first (no new connections), then the connection handlers (each
    /// finishes its in-flight request), then the batcher (drains the
    /// queue). Bounded by the read timeout per idle connection.
    pub fn shutdown(mut self) {
        self.shared.request_shutdown();
        self.join_all();
    }

    /// Blocks until someone requests shutdown (e.g. `POST
    /// /admin/shutdown`), then joins every thread like
    /// [`Gateway::shutdown`].
    pub fn wait(mut self) {
        self.join_all();
    }

    fn join_all(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // After the accept loop exits no new handler can appear; join the
        // existing ones (they stop pushing jobs), then the batcher can see
        // a conclusively empty queue.
        loop {
            let handle = self.conns.lock().expect("conns lock").pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let mut stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept errors (e.g. EMFILE under fd pressure)
                // return immediately; back off instead of busy-spinning a
                // core until the condition clears.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // The wake-up self-connect (or a late client) during shutdown.
            return;
        }
        {
            // Reap finished handlers and bound the live count: one thread
            // per connection must not grow without limit under a flood.
            let mut conns = conns.lock().expect("conns lock");
            if conns.len() >= shared.cfg.max_connections {
                conns.retain(|h| !h.is_finished());
            }
            if conns.len() >= shared.cfg.max_connections {
                drop(conns);
                shared.metrics.shed();
                let _ = write_json_with(
                    &mut stream,
                    503,
                    "Service Unavailable",
                    &error_body("connection limit reached, retry later"),
                    false,
                    &[("Retry-After", "1".into())],
                );
                continue;
            }
            let shared = shared.clone();
            match std::thread::Builder::new()
                .name("gateway-conn".into())
                .spawn(move || handle_connection(stream, &shared))
            {
                Ok(handle) => conns.push(handle),
                // Thread exhaustion must degrade (drop this connection),
                // not panic the accept loop and wedge the server.
                Err(_) => continue,
            }
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(&stream);
    loop {
        let request = match read_request(&mut reader, &shared.cfg.limits) {
            Ok(r) => r,
            Err(e) => {
                // Parse errors get a best-effort 4xx before closing; dead
                // or timed-out sockets are just dropped. Either way the
                // connection ends here — framing is unreliable after an
                // error.
                if let Some((status, reason)) = e.status() {
                    shared.metrics.response(status);
                    let _ = write_json(
                        &mut (&stream),
                        status,
                        reason,
                        &error_body(&e.to_string()),
                        false,
                    );
                }
                return;
            }
        };
        let reply = route(&request, shared);
        // Re-read the flag after routing: /admin/shutdown flips it inside
        // `route`, and its own response must already announce `close`.
        let keep_alive = request.keep_alive() && !shared.shutdown.load(Ordering::SeqCst);
        shared.metrics.response(reply.status);
        let mut extra: Vec<(&str, String)> = Vec::new();
        if let Some(secs) = reply.retry_after {
            extra.push(("Retry-After", secs.to_string()));
        }
        if write_json_with(
            &mut (&stream),
            reply.status,
            reply.reason,
            &reply.body,
            keep_alive,
            &extra,
        )
        .is_err()
        {
            return;
        }
        if !keep_alive {
            return;
        }
    }
}

/// Dispatches one request.
fn route(request: &Request, shared: &Arc<Shared>) -> Reply {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            shared.metrics.request("healthz");
            let doc = JsonValue::object([
                ("status", JsonValue::String("ok".into())),
                ("models", JsonValue::Number(shared.models.len() as f64)),
                ("queue_depth", JsonValue::Number(shared.queue.depth() as f64)),
                ("shutting_down", JsonValue::Bool(shared.shutdown.load(Ordering::SeqCst))),
            ]);
            Reply::new(200, "OK", doc.to_compact())
        }
        ("GET", "/metrics") => {
            shared.metrics.request("metrics");
            Reply::new(200, "OK", shared.metrics.to_json(shared.queue.depth()).to_pretty())
        }
        ("GET", "/v1/models") => {
            shared.metrics.request("models");
            let rows: Vec<JsonValue> = shared
                .models
                .iter()
                .map(|(key, meta)| {
                    let members: Vec<JsonValue> = meta
                        .backbones
                        .iter()
                        .zip(&meta.param_counts)
                        .map(|(backbone, &params)| {
                            JsonValue::object([
                                ("backbone", JsonValue::String(backbone.clone())),
                                ("params", JsonValue::Number(params as f64)),
                            ])
                        })
                        .collect();
                    JsonValue::object([
                        ("key", JsonValue::String(key.label())),
                        ("step_s", JsonValue::Number(meta.step_s as f64)),
                        ("window", JsonValue::Number(meta.window as f64)),
                        ("members", JsonValue::Array(members)),
                    ])
                })
                .collect();
            Reply::new(
                200,
                "OK",
                JsonValue::object([("models", JsonValue::Array(rows))]).to_compact(),
            )
        }
        ("POST", "/v1/localize") => {
            shared.metrics.request("localize");
            handle_localize(request, shared)
        }
        ("POST", "/admin/shutdown") => {
            shared.metrics.request("shutdown");
            shared.request_shutdown();
            Reply::new(200, "OK", JsonValue::object([("ok", JsonValue::Bool(true))]).to_compact())
        }
        (_, "/healthz" | "/metrics" | "/v1/models" | "/v1/localize" | "/admin/shutdown") => {
            shared.metrics.request("other");
            Reply::new(405, "Method Not Allowed", error_body("method not allowed for this path"))
        }
        _ => {
            shared.metrics.request("other");
            Reply::new(404, "Not Found", error_body("no such route"))
        }
    }
}

/// Validates a localize request against the model snapshot, enqueues it,
/// and waits for the batcher's reply — bounded by the request deadline
/// (`X-Camal-Deadline-Ms` header, falling back to
/// [`GatewayConfig::deadline`]), never forever.
fn handle_localize(request: &Request, shared: &Arc<Shared>) -> Reply {
    let start = Instant::now();
    let deadline = request
        .header("x-camal-deadline-ms")
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(shared.cfg.deadline)
        .max(Duration::from_millis(1));
    let parsed = match parse_localize(&request.body) {
        Ok(p) => p,
        Err(e) => return Reply::new(400, "Bad Request", error_body(&e)),
    };
    // Validate against the startup snapshot so handlers never touch the
    // registry: every key must be registered, and one pass needs a single
    // resolution and window across its models.
    let mut step_s = 0u32;
    let mut window = 0usize;
    for key in &parsed.appliances {
        let Some(meta) = shared.models.get(key) else {
            return Reply::new(
                404,
                "Not Found",
                error_body(&format!("model {key} is not registered")),
            );
        };
        if step_s == 0 {
            (step_s, window) = (meta.step_s, meta.window);
        } else if meta.step_s != step_s || meta.window != window {
            return Reply::new(
                400,
                "Bad Request",
                error_body(&format!(
                    "model {key} runs at step {} s / window {} and cannot share a pass with \
                     step {step_s} s / window {window}; request them separately",
                    meta.step_s, meta.window
                )),
            );
        }
    }
    if shared.shutdown.load(Ordering::SeqCst) {
        return Reply::unavailable("gateway is shutting down", 1);
    }
    let mut group = parsed.appliances.clone();
    group.sort();
    let (tx, rx) = mpsc::channel();
    let job = Job {
        keys: parsed.appliances,
        group,
        households: parsed.households,
        detail: parsed.detail,
        reply: tx,
    };
    match shared.queue.push(job) {
        Ok(()) => {}
        Err(PushError::Full) => {
            shared.metrics.shed();
            return Reply::unavailable("queue full, retry later", 1);
        }
        // The batcher already exited; a job pushed now would never be
        // served, so answer here instead of blocking on `rx` forever.
        Err(PushError::Closed) => {
            return Reply::unavailable("gateway is shutting down", 1);
        }
    }
    shared.metrics.queue_depth(shared.queue.depth());
    match rx.recv_timeout(deadline) {
        Ok(reply) => {
            shared.metrics.latency_ms(start.elapsed().as_secs_f64() * 1e3);
            reply
        }
        // The batcher is wedged or overloaded past this request's
        // deadline. Answer now — if the pass finishes later, its send to
        // the dropped receiver fails harmlessly.
        Err(mpsc::RecvTimeoutError::Timeout) => {
            shared.metrics.deadline_timeout();
            Reply::unavailable(
                &format!(
                    "deadline of {} ms expired before the batcher replied, retry later",
                    deadline.as_millis()
                ),
                1,
            )
        }
        // The batcher panicked with our job in flight; the supervisor is
        // respawning it. Retrying shortly will hit the fresh generation.
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            Reply::unavailable("batcher restarting after a fault, retry shortly", 1)
        }
    }
}

/// Runs the batcher under a panic supervisor. A clean exit (shutdown) ends
/// the thread; a panic rolls the dead generation's registry counters into
/// the metrics base, rebuilds the registry from the startup spec, and
/// spawns the next generation. In-flight jobs of the dead generation are
/// not replayed — their reply senders dropped during the unwind, so their
/// handlers answer `503` + `Retry-After` immediately; jobs still sitting
/// in the queue carry over untouched and the next generation serves them.
fn supervise_batcher(shared: &Arc<Shared>, registry: ModelRegistry, spec: &RegistrySpec) {
    let mut registry = registry;
    loop {
        let outcome = catch_unwind(AssertUnwindSafe(|| batcher_loop(shared, &mut registry)));
        if outcome.is_ok() {
            // batcher_loop only returns on shutdown, after closing the
            // queue and answering every drained job.
            return;
        }
        shared.metrics.batcher_restart();
        // The panicked generation's counters are still valid (plain
        // integers); fold them into the base so /metrics stays monotonic.
        shared.metrics.roll_registry(registry.stats());
        let mut delay = Duration::from_millis(10);
        registry = loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                for job in shared.queue.close() {
                    let _ = job.reply.send(Reply::unavailable("gateway is shutting down", 1));
                }
                return;
            }
            match spec.build() {
                Ok(r) => break r,
                // A failed rebuild (snapshot bytes refuse to parse — should
                // be impossible) retries with backoff rather than abandoning
                // the queue; handlers stay bounded by their deadlines.
                Err(_) => {
                    std::thread::sleep(delay);
                    delay = (delay * 2).min(Duration::from_secs(1));
                }
            }
        };
    }
}

/// The micro-batching scheduler. Owns the registry for its generation's
/// lifetime (the supervisor rebuilds it across panics).
fn batcher_loop(shared: &Arc<Shared>, registry: &mut ModelRegistry) {
    loop {
        let Some(first) = shared.queue.pop_wait(Duration::from_millis(50)) else {
            if shared.shutdown.load(Ordering::SeqCst) && shared.queue.depth() == 0 {
                // Close the queue atomically: a handler that read the
                // shutdown flag as false and is pushing right now either
                // lands before `close` (we answer its job below) or after
                // (its push fails with `Closed`) — never stranded waiting
                // on a batcher that is gone.
                for job in shared.queue.close() {
                    let _ = job.reply.send(Reply::unavailable("gateway is shutting down", 1));
                }
                return;
            }
            continue;
        };
        if !shared.cfg.linger.is_zero() {
            std::thread::sleep(shared.cfg.linger);
        }
        let mut jobs = vec![first];
        jobs.extend(shared.queue.drain(shared.cfg.max_coalesce.saturating_sub(1)));
        // Deliberately after the drain: the injected panic hits with jobs
        // in flight, which is exactly the case supervision must recover.
        nilm_fault::maybe_panic("batcher.panic");

        // Group by requested key set; each group becomes one fleet pass.
        let mut groups: BTreeMap<Vec<ModelKey>, Vec<Job>> = BTreeMap::new();
        for job in jobs {
            groups.entry(job.group.clone()).or_default().push(job);
        }
        for (keys, jobs) in groups {
            serve_group(shared, registry, &keys, jobs);
        }
        shared.metrics.set_registry_current(registry.stats());
    }
}

/// Serves one group of jobs that requested the same model set: merges all
/// their households into one fleet pass and routes each job its slice.
fn serve_group(
    shared: &Arc<Shared>,
    registry: &mut ModelRegistry,
    keys: &[ModelKey],
    jobs: Vec<Job>,
) {
    let meta = &shared.models[&keys[0]];
    let cfg = FleetConfig {
        step_s: meta.step_s,
        max_ffill_s: 3 * meta.step_s,
        batch: shared.cfg.batch_windows,
        threads: 1,
        apply_priors: shared.cfg.apply_priors,
    };
    let mut jobs = jobs;
    let mut merged: Vec<HouseholdSeries> = Vec::new();
    let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(jobs.len());
    for job in &mut jobs {
        // Move, don't clone: the series buffers are not needed in the job
        // after merging, and copying them would double peak memory on the
        // batcher hot path for long feeds.
        let households = std::mem::take(&mut job.households);
        ranges.push((merged.len(), households.len()));
        merged.extend(households);
    }
    // Emulates a pass stuck on slow storage or a runaway computation:
    // sleeps past every waiting handler's deadline, so the requests are
    // answered `503` + `Retry-After` by the deadline path, not by luck.
    if nilm_fault::fires("gateway.slow_pass") {
        std::thread::sleep(shared.cfg.deadline.saturating_mul(2));
    }
    match serve_fleet(registry, keys, &merged, &cfg) {
        Ok(result) => {
            shared.metrics.batch(
                jobs.len(),
                result.summary.batches,
                result.summary.feed_windows_scored,
                result.summary.inferences,
            );
            shared
                .metrics
                .shard_recovery(result.summary.shard_retries, result.summary.households_degraded);
            for (job, (start, len)) in jobs.iter().zip(&ranges) {
                let rows: Vec<HouseholdRow> = (*start..start + len)
                    .map(|hi| {
                        let hh = &result.households[hi];
                        HouseholdRow {
                            id: &hh.id,
                            degraded: hh.degraded.as_deref(),
                            timelines: job
                                .keys
                                .iter()
                                .map(|&k| {
                                    result
                                        .timeline(hi, k)
                                        .expect("fleet pass covers every requested key")
                                })
                                .collect(),
                        }
                    })
                    .collect();
                let body = localize_response(&job.keys, &rows, job.detail).to_compact();
                let _ = job.reply.send(Reply::new(200, "OK", body));
            }
        }
        Err(e) => {
            // Registry trouble is recoverable operator territory — answer
            // `503` + `Retry-After` (quarantine windows know exactly how
            // long). `500` stays reserved for genuine programming errors.
            let reply = match &e {
                FleetError::Registry(RegistryError::Quarantined { retry_after, .. }) => {
                    Reply::unavailable(&format!("fleet pass failed: {e}"), retry_after.as_secs())
                }
                FleetError::Registry(RegistryError::Load { .. }) => {
                    Reply::unavailable(&format!("fleet pass failed: {e}"), 1)
                }
                _ => Reply::new(
                    500,
                    "Internal Server Error",
                    error_body(&format!("fleet pass failed: {e}")),
                ),
            };
            for job in &jobs {
                let _ = job.reply.send(reply.clone());
            }
        }
    }
}
