//! The gateway server: the epoll reactor front end, the decode worker
//! pool, and the micro-batching scheduler thread.
//!
//! Connections are owned by one event-loop thread (the **reactor**, see
//! the private `reactor` module): readiness-driven incremental parsing, pipelined
//! in-order responses, non-blocking writes, per-connection backpressure,
//! and per-request deadlines all live there. Decoded requests go to a
//! small **worker pool** that JSON-parses + validates them; localize jobs
//! land on the bounded [`JobQueue`].
//!
//! One thread owns the [`ModelRegistry`] — the **batcher**. It pops the
//! first waiting job, drains whatever else queued up behind it (the
//! concurrent backlog), groups jobs by requested key set, and serves each
//! group as **one** [`camal::fleet::serve_fleet`] pass with every job's
//! households merged — so windows from different requests share GEMM
//! batches. Because window scoring is row-independent (eval-mode
//! BatchNorm, per-row GEMM tiles), coalescing never changes a response:
//! each one is bit-identical to a direct [`camal::stream::serve`] call,
//! which the concurrency tests pin.
//!
//! Overload: a full queue answers `503` immediately (load shedding), a
//! full per-connection pipeline drops read interest (backpressure), and a
//! connection flood past `max_connections` sheds with `503` at accept.
//! Shutdown: [`Gateway::shutdown`] (or `POST /admin/shutdown`) closes the
//! listener first, lets live connections drain their in-flight requests
//! (bounded by their deadlines), then stops the workers and lets the
//! batcher close the queue — accept → connections → batcher, in order.
//!
//! Failure is a first-class input, not an afterthought. The batcher runs
//! under a supervisor (`supervise_batcher`): a panic anywhere in a pass
//! is caught, the in-flight jobs' `ReplyHandle`s drop — which answers
//! their connections `503` + `Retry-After` instead of hanging or
//! `500`ing — and a fresh batcher generation is respawned with the
//! registry rebuilt from the startup `RegistrySpec`: file-backed
//! checkpoints re-register their paths, pinned models are restored from
//! byte snapshots taken at warm time. The reactor arms a deadline per
//! request ([`GatewayConfig::deadline`], overridable via the
//! `X-Camal-Deadline-Ms` header), so even a wedged worker or batcher pass
//! turns into a timely `503` + `Retry-After`. The reactor itself is
//! supervised too: an event-loop panic closes that generation's sockets
//! cleanly and respawns the loop. Registry load failures and quarantines
//! surface as `503` + `Retry-After` — `500` is reserved for genuine
//! programming errors.

use crate::http::{HttpLimits, Request};
use crate::metrics::Metrics;
use crate::protocol::{error_body, localize_response, parse_localize, Detail, HouseholdRow};
use crate::queue::{JobQueue, PushError};
use crate::reactor::ReplyHandle;
use crate::sys::Waker;
use camal::fleet::{serve_fleet, FleetConfig, FleetError};
use camal::registry::{ModelKey, ModelRegistry, QuarantinePolicy, RegistryError};
use camal::stream::HouseholdSeries;
use camal::CamalModel;
use nilm_json::JsonValue;
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of a [`Gateway`].
#[derive(Clone, Debug)]
pub struct GatewayConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Bounded queue capacity; a full queue sheds load with `503`.
    pub queue_capacity: usize,
    /// Maximum requests coalesced into one batcher pass.
    pub max_coalesce: usize,
    /// Extra wait after the first job of a pass, letting concurrent
    /// requests land in the same pass. Zero relies on natural backlog.
    pub linger: Duration,
    /// Windows per GEMM batch inside a fleet pass.
    pub batch_windows: usize,
    /// Maximum concurrent connection handler threads; connections beyond
    /// it are answered `503` and closed immediately.
    pub max_connections: usize,
    /// Socket read timeout; an idle keep-alive connection is closed after
    /// this long.
    pub read_timeout: Duration,
    /// HTTP parsing limits.
    pub limits: HttpLimits,
    /// Apply Table I duration priors on stitched timelines.
    pub apply_priors: bool,
    /// How long the reactor waits for a request's reply before answering
    /// `503` + `Retry-After` on its own. Overridable per request with the
    /// `X-Camal-Deadline-Ms` header. This is the anti-wedge bound: no
    /// request ever outlives it, whatever the workers or batcher are
    /// doing.
    pub deadline: Duration,
    /// Size of the decode/validate worker pool between the reactor and
    /// the batcher. `0` (the default) sizes it automatically: the
    /// `NILM_REACTOR_WORKERS` environment variable if set, else one
    /// worker per available core.
    pub reactor_workers: usize,
    /// Per-connection in-flight pipeline bound. A connection with this
    /// many unanswered requests stops being read (backpressure) until
    /// responses drain.
    pub max_pipeline: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            addr: "127.0.0.1:0".into(),
            queue_capacity: 256,
            max_coalesce: 64,
            linger: Duration::ZERO,
            batch_windows: 64,
            max_connections: 1024,
            read_timeout: Duration::from_secs(5),
            limits: HttpLimits::default(),
            apply_priors: true,
            deadline: Duration::from_secs(30),
            reactor_workers: 0,
            max_pipeline: 32,
        }
    }
}

/// What the serving side knows about one registered model, snapshotted at
/// startup for lock-free request validation in handler threads.
#[derive(Clone, Debug)]
pub struct ModelMeta {
    /// Sampling step of the model's dataset template.
    pub step_s: u32,
    /// Training window length.
    pub window: usize,
    /// Per-member backbone descriptions, e.g. `resnet(k5/div8)` — a mixed
    /// zoo shows heterogeneous entries here.
    pub backbones: Vec<String>,
    /// Per-member trainable-parameter counts, aligned with `backbones`.
    pub param_counts: Vec<usize>,
}

/// A computed HTTP response: status line plus body, with an optional
/// `Retry-After` value (seconds) that `503`s carry so clients can back
/// off deliberately instead of guessing. The reactor turns it into wire
/// bytes with [`crate::http::encode_response_with`].
#[derive(Clone, Debug)]
pub(crate) struct Reply {
    pub(crate) status: u16,
    pub(crate) reason: &'static str,
    pub(crate) body: String,
    pub(crate) retry_after: Option<u64>,
    pub(crate) content_type: &'static str,
}

impl Reply {
    /// A JSON reply with no extra headers.
    pub(crate) fn new(status: u16, reason: &'static str, body: String) -> Reply {
        Reply { status, reason, body, retry_after: None, content_type: "application/json" }
    }

    /// A `200` with a non-JSON body (the Prometheus exposition).
    pub(crate) fn plain_text(body: String, content_type: &'static str) -> Reply {
        Reply { status: 200, reason: "OK", body, retry_after: None, content_type }
    }

    /// A `503` carrying `Retry-After: {retry_after_s}`.
    pub(crate) fn unavailable(message: &str, retry_after_s: u64) -> Reply {
        Reply {
            status: 503,
            reason: "Service Unavailable",
            body: error_body(message),
            retry_after: Some(retry_after_s.max(1)),
            content_type: "application/json",
        }
    }
}

/// How to recreate one registry entry after a batcher panic.
enum RebuildEntry {
    /// File-backed checkpoint: re-register the path, reload lazily.
    File(PathBuf),
    /// Pinned in-memory model: restore from a byte snapshot taken at warm
    /// time (pinned models have no backing file to reload from).
    Pinned(Vec<u8>),
}

/// Everything needed to rebuild the batcher's [`ModelRegistry`] from
/// scratch, captured once at [`Gateway::start`]. The supervisor replays it
/// after a panic so a fresh generation serves the same model set with the
/// same budget and quarantine policy.
struct RegistrySpec {
    entries: Vec<(ModelKey, RebuildEntry)>,
    max_loaded: usize,
    quarantine: QuarantinePolicy,
}

impl RegistrySpec {
    /// Captures the rebuild recipe from a warmed registry.
    fn capture(registry: &mut ModelRegistry) -> RegistrySpec {
        let mut entries = Vec::new();
        for row in registry.manifest() {
            let rebuild = match row.path {
                Some(path) => RebuildEntry::File(path),
                None => {
                    let model = registry.get_mut(row.key).expect("pinned model is always resident");
                    RebuildEntry::Pinned(model.to_bytes())
                }
            };
            entries.push((row.key, rebuild));
        }
        RegistrySpec {
            entries,
            max_loaded: registry.max_loaded(),
            quarantine: registry.quarantine_policy(),
        }
    }

    /// Builds a fresh registry from the recipe.
    fn build(&self) -> Result<ModelRegistry, String> {
        let mut registry = ModelRegistry::new(self.max_loaded);
        registry.set_quarantine_policy(self.quarantine);
        for (key, entry) in &self.entries {
            match entry {
                RebuildEntry::File(path) => registry.register_file(*key, path.clone()),
                RebuildEntry::Pinned(bytes) => {
                    let model = CamalModel::from_bytes(bytes)
                        .map_err(|e| format!("cannot restore pinned model {key}: {e}"))?;
                    registry.insert(*key, model);
                }
            }
        }
        Ok(registry)
    }
}

pub(crate) struct Job {
    /// Requested keys, deduplicated, in request order (response order).
    keys: Vec<ModelKey>,
    /// Sorted copy of `keys` — the coalescing identity: jobs wanting the
    /// same model set share one fleet pass.
    group: Vec<ModelKey>,
    households: Vec<HouseholdSeries>,
    detail: Detail,
    /// The request's `(trace_id, root_span_id)`: batcher stage spans
    /// (queue-wait, coalesce, fleet stages) parent to the root span.
    trace: (u64, u64),
    /// When the job entered the queue — the queue-wait stage starts here.
    enqueued: Instant,
    /// `enqueued` on the trace clock.
    enqueued_ns: u64,
    /// Exactly-once reply channel back to the reactor; dropping it
    /// unanswered (a batcher panic's unwind) answers the connection
    /// `503` + `Retry-After` automatically.
    pub(crate) reply: ReplyHandle,
}

pub(crate) struct Shared {
    pub(crate) cfg: GatewayConfig,
    pub(crate) addr: SocketAddr,
    pub(crate) models: BTreeMap<ModelKey, ModelMeta>,
    pub(crate) queue: JobQueue<Job>,
    pub(crate) metrics: Metrics,
    pub(crate) shutdown: AtomicBool,
    /// Flipped true once every model is warm and the serving threads are
    /// up — the `/readyz` warm gate.
    pub(crate) ready: AtomicBool,
    /// True while a batcher generation is inside its serving loop; false
    /// between a panic and the respawned generation's first pass, and
    /// permanently false after shutdown. `/readyz` reports 503 when the
    /// batcher is down.
    pub(crate) batcher_alive: AtomicBool,
    /// Interrupts the reactor's `epoll_wait`: completions, shutdown. The
    /// pipe lives here so it outlives reactor generations (the supervisor
    /// re-registers it after a respawn).
    pub(crate) waker: Waker,
}

impl Shared {
    /// Flags shutdown and pokes the reactor awake.
    pub(crate) fn request_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.waker.handle().wake();
    }
}

/// A running gateway. Dropping it without [`Gateway::shutdown`] leaves the
/// server threads running for the rest of the process.
pub struct Gateway {
    shared: Arc<Shared>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
}

impl Gateway {
    /// Binds, warms every registered model (lazy checkpoints load now, so
    /// corrupt files fail fast instead of per-request), and spawns the
    /// reactor, its worker pool, and the batcher thread. The registry
    /// moves into the batcher — it is the only thread that touches models
    /// afterwards.
    pub fn start(mut registry: ModelRegistry, cfg: GatewayConfig) -> std::io::Result<Gateway> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let mut models = BTreeMap::new();
        for key in registry.keys() {
            let model = registry
                .get_mut(key)
                .map_err(|e| std::io::Error::other(format!("cannot warm model {key}: {e}")))?;
            let window = model.window();
            if window == 0 {
                return Err(std::io::Error::other(format!(
                    "model {key} does not record its training window"
                )));
            }
            let step_s = nilm_data::templates::template(key.dataset).step_s;
            let backbones = model.describe_members();
            let param_counts = model.member_param_counts();
            models.insert(key, ModelMeta { step_s, window, backbones, param_counts });
        }
        if models.is_empty() {
            return Err(std::io::Error::other("gateway needs at least one registered model"));
        }
        // Capture the rebuild recipe while every model is warm, so the
        // supervisor can respawn the batcher after a panic without help.
        let spec = RegistrySpec::capture(&mut registry);
        let shared = Arc::new(Shared {
            queue: JobQueue::new(cfg.queue_capacity),
            metrics: Metrics::new(),
            shutdown: AtomicBool::new(false),
            ready: AtomicBool::new(false),
            batcher_alive: AtomicBool::new(false),
            waker: Waker::new()?,
            cfg,
            addr,
            models,
        });

        let batcher = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("gateway-batcher".into())
                .spawn(move || supervise_batcher(&shared, registry, &spec))
                .expect("spawn batcher thread")
        };
        let handles = crate::reactor::spawn(shared.clone(), listener)?;
        // Models are warm (loaded above) and every serving thread is up.
        shared.ready.store(true, Ordering::SeqCst);
        Ok(Gateway {
            shared,
            reactor: Some(handles.reactor),
            workers: handles.workers,
            batcher: Some(batcher),
        })
    }

    /// The bound socket address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// True once shutdown has been requested (locally or over HTTP).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown and joins every server thread: the reactor first
    /// (it closes the listener, drains live connections bounded by their
    /// deadlines, then exits), then the worker pool (its channel closed
    /// when the reactor dropped it), then the batcher (drains the queue).
    pub fn shutdown(mut self) {
        self.shared.request_shutdown();
        self.join_all();
    }

    /// Blocks until someone requests shutdown (e.g. `POST
    /// /admin/shutdown`), then joins every thread like
    /// [`Gateway::shutdown`].
    pub fn wait(mut self) {
        self.join_all();
    }

    fn join_all(&mut self) {
        // Ordered teardown: reactor (accept + connections) → workers →
        // batcher. The reactor exits only once every connection drained,
        // dropping the work channel; the idle workers then see it closed
        // and exit, after which the batcher can conclude the queue is
        // conclusively empty and close it.
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
    }
}

/// Metrics route label for one `(method, path)` pair; the query string is
/// ignored. The reactor stamps this on every request at parse time so the
/// per-route latency histogram and the slow-request log agree with the
/// dispatch below.
pub(crate) fn route_label(method: &str, path: &str) -> &'static str {
    let path = path.split('?').next().unwrap_or(path);
    match (method, path) {
        ("GET", "/healthz") => "healthz",
        ("GET", "/readyz") => "readyz",
        ("GET", "/metrics") => "metrics",
        ("GET", "/v1/models") => "models",
        ("GET", "/debug/trace") => "debug_trace",
        ("POST", "/v1/localize") => "localize",
        ("POST", "/admin/shutdown") => "shutdown",
        _ => "other",
    }
}

/// The value of query parameter `key` in `query` (no percent-decoding —
/// the gateway's parameters are plain hex IDs and format names).
fn query_param<'q>(query: &'q str, key: &str) -> Option<&'q str> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        (k == key).then_some(v)
    })
}

/// Dispatches one request: computes the reply (or enqueues a batcher job
/// that will) and answers through `reply`. Runs on a worker thread.
pub(crate) fn route(request: &Request, shared: &Arc<Shared>, reply: ReplyHandle) {
    let (path, query) = match request.path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (request.path.as_str(), ""),
    };
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => {
            shared.metrics.request("healthz");
            let doc = JsonValue::object([
                ("status", JsonValue::String("ok".into())),
                ("models", JsonValue::Number(shared.models.len() as f64)),
                ("queue_depth", JsonValue::Number(shared.queue.depth() as f64)),
                ("shutting_down", JsonValue::Bool(shared.shutdown.load(Ordering::SeqCst))),
            ]);
            reply.send(Reply::new(200, "OK", doc.to_compact()));
        }
        ("GET", "/readyz") => {
            shared.metrics.request("readyz");
            reply.send(readyz_reply(shared));
        }
        ("GET", "/metrics") => {
            shared.metrics.request("metrics");
            if query_param(query, "format") == Some("prometheus") {
                reply.send(Reply::plain_text(
                    shared.metrics.to_prometheus(shared.queue.depth()),
                    "text/plain; version=0.0.4",
                ));
            } else {
                reply.send(Reply::new(
                    200,
                    "OK",
                    shared.metrics.to_json(shared.queue.depth()).to_pretty(),
                ));
            }
        }
        ("GET", "/debug/trace") => {
            shared.metrics.request("debug_trace");
            reply.send(debug_trace_reply(query));
        }
        ("GET", "/v1/models") => {
            shared.metrics.request("models");
            let rows: Vec<JsonValue> = shared
                .models
                .iter()
                .map(|(key, meta)| {
                    let members: Vec<JsonValue> = meta
                        .backbones
                        .iter()
                        .zip(&meta.param_counts)
                        .map(|(backbone, &params)| {
                            JsonValue::object([
                                ("backbone", JsonValue::String(backbone.clone())),
                                ("params", JsonValue::Number(params as f64)),
                            ])
                        })
                        .collect();
                    JsonValue::object([
                        ("key", JsonValue::String(key.label())),
                        ("step_s", JsonValue::Number(meta.step_s as f64)),
                        ("window", JsonValue::Number(meta.window as f64)),
                        ("members", JsonValue::Array(members)),
                    ])
                })
                .collect();
            reply.send(Reply::new(
                200,
                "OK",
                JsonValue::object([("models", JsonValue::Array(rows))]).to_compact(),
            ));
        }
        ("POST", "/v1/localize") => {
            shared.metrics.request("localize");
            handle_localize(request, shared, reply);
        }
        ("POST", "/admin/shutdown") => {
            shared.metrics.request("shutdown");
            shared.request_shutdown();
            reply.send(Reply::new(
                200,
                "OK",
                JsonValue::object([("ok", JsonValue::Bool(true))]).to_compact(),
            ));
        }
        (
            _,
            "/healthz" | "/readyz" | "/metrics" | "/v1/models" | "/v1/localize" | "/admin/shutdown"
            | "/debug/trace",
        ) => {
            shared.metrics.request("other");
            reply.send(Reply::new(
                405,
                "Method Not Allowed",
                error_body("method not allowed for this path"),
            ));
        }
        _ => {
            shared.metrics.request("other");
            reply.send(Reply::new(404, "Not Found", error_body("no such route")));
        }
    }
}

/// Computes the `/readyz` answer: `200` when the gateway can serve a
/// localize request right now, else `503` with a JSON reason. Liveness
/// (`/healthz`) stays `200` in states where readiness correctly drops —
/// draining on shutdown, batcher respawning, queue saturated.
fn readyz_reply(shared: &Arc<Shared>) -> Reply {
    let depth = shared.queue.depth();
    let reason = if shared.shutdown.load(Ordering::SeqCst) {
        Some("shutting down")
    } else if !shared.ready.load(Ordering::SeqCst) {
        Some("models not warm yet")
    } else if !shared.batcher_alive.load(Ordering::SeqCst) {
        Some("batcher is restarting")
    } else if depth >= shared.cfg.queue_capacity {
        Some("queue saturated")
    } else {
        None
    };
    let doc = JsonValue::object([
        ("ready", JsonValue::Bool(reason.is_none())),
        (
            "reason",
            match reason {
                Some(r) => JsonValue::String(r.into()),
                None => JsonValue::Null,
            },
        ),
        ("queue_depth", JsonValue::Number(depth as f64)),
        ("queue_capacity", JsonValue::Number(shared.cfg.queue_capacity as f64)),
    ]);
    match reason {
        None => Reply::new(200, "OK", doc.to_compact()),
        Some(_) => Reply {
            status: 503,
            reason: "Service Unavailable",
            body: doc.to_compact(),
            retry_after: Some(1),
            content_type: "application/json",
        },
    }
}

/// Computes the `GET /debug/trace?id=<hex>` answer: the recorded spans of
/// one trace as a JSON timeline, sorted by start time.
fn debug_trace_reply(query: &str) -> Reply {
    let Some(id) = query_param(query, "id") else {
        return Reply::new(400, "Bad Request", error_body("missing query parameter id=<trace-id>"));
    };
    let Some(trace) = nilm_obs::trace::TraceId::parse(id) else {
        return Reply::new(400, "Bad Request", error_body("id must be 1-16 hex digits, nonzero"));
    };
    let mut spans = nilm_obs::trace::trace_spans(trace);
    if spans.is_empty() {
        let hint = if nilm_obs::trace::enabled() {
            "unknown trace id, or its spans were evicted from the ring"
        } else {
            "tracing is off (set NILM_TRACE=1 or --trace); no spans are recorded"
        };
        return Reply::new(404, "Not Found", error_body(hint));
    }
    spans.sort_by_key(|s| (s.start_ns, s.span));
    let rows: Vec<JsonValue> = spans
        .iter()
        .map(|s| {
            JsonValue::object([
                ("span", JsonValue::Number(s.span as f64)),
                ("parent", JsonValue::Number(s.parent as f64)),
                ("name", JsonValue::String(s.name.into())),
                ("detail", JsonValue::String(s.detail.to_string())),
                ("start_us", JsonValue::Number(s.start_ns as f64 / 1e3)),
                ("dur_us", JsonValue::Number(s.dur_ns as f64 / 1e3)),
            ])
        })
        .collect();
    let doc = JsonValue::object([
        ("trace", JsonValue::String(trace.to_hex())),
        ("spans", JsonValue::Array(rows)),
    ]);
    Reply::new(200, "OK", doc.to_pretty())
}

/// Validates a localize request against the model snapshot and enqueues it
/// for the batcher, which answers through the job's [`ReplyHandle`]. The
/// reactor armed this request's deadline at dispatch, so nothing here (or
/// downstream) can strand the connection.
fn handle_localize(request: &Request, shared: &Arc<Shared>, reply: ReplyHandle) {
    let parsed = match parse_localize(&request.body) {
        Ok(p) => p,
        Err(e) => return reply.send(Reply::new(400, "Bad Request", error_body(&e))),
    };
    // Validate against the startup snapshot so workers never touch the
    // registry: every key must be registered, and one pass needs a single
    // resolution and window across its models.
    let mut step_s = 0u32;
    let mut window = 0usize;
    for key in &parsed.appliances {
        let Some(meta) = shared.models.get(key) else {
            return reply.send(Reply::new(
                404,
                "Not Found",
                error_body(&format!("model {key} is not registered")),
            ));
        };
        if step_s == 0 {
            (step_s, window) = (meta.step_s, meta.window);
        } else if meta.step_s != step_s || meta.window != window {
            return reply.send(Reply::new(
                400,
                "Bad Request",
                error_body(&format!(
                    "model {key} runs at step {} s / window {} and cannot share a pass with \
                     step {step_s} s / window {window}; request them separately",
                    meta.step_s, meta.window
                )),
            ));
        }
    }
    if shared.shutdown.load(Ordering::SeqCst) {
        return reply.send(Reply::unavailable("gateway is shutting down", 1));
    }
    let mut group = parsed.appliances.clone();
    group.sort();
    let job = Job {
        keys: parsed.appliances,
        group,
        households: parsed.households,
        detail: parsed.detail,
        trace: reply.trace,
        enqueued: Instant::now(),
        enqueued_ns: nilm_obs::trace::now_ns(),
        reply,
    };
    match shared.queue.push(job) {
        Ok(()) => {
            shared.metrics.queue_depth(shared.queue.depth());
        }
        Err((job, PushError::Full)) => {
            shared.metrics.shed();
            job.reply.send(Reply::unavailable("queue full, retry later", 1));
        }
        // The batcher already exited; a job pushed now would never be
        // served, so answer immediately.
        Err((job, PushError::Closed)) => {
            job.reply.send(Reply::unavailable("gateway is shutting down", 1));
        }
    }
}

/// Runs the batcher under a panic supervisor. A clean exit (shutdown) ends
/// the thread; a panic rolls the dead generation's registry counters into
/// the metrics base, rebuilds the registry from the startup spec, and
/// spawns the next generation. In-flight jobs of the dead generation are
/// not replayed — their reply senders dropped during the unwind, so their
/// handlers answer `503` + `Retry-After` immediately; jobs still sitting
/// in the queue carry over untouched and the next generation serves them.
fn supervise_batcher(shared: &Arc<Shared>, registry: ModelRegistry, spec: &RegistrySpec) {
    let mut registry = registry;
    loop {
        shared.batcher_alive.store(true, Ordering::SeqCst);
        let outcome = catch_unwind(AssertUnwindSafe(|| batcher_loop(shared, &mut registry)));
        shared.batcher_alive.store(false, Ordering::SeqCst);
        if outcome.is_ok() {
            // batcher_loop only returns on shutdown, after closing the
            // queue and answering every drained job.
            return;
        }
        shared.metrics.batcher_restart();
        // The panicked generation's counters are still valid (plain
        // integers); fold them into the base so /metrics stays monotonic.
        shared.metrics.roll_registry(registry.stats());
        let mut delay = Duration::from_millis(10);
        registry = loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                for job in shared.queue.close() {
                    job.reply.send(Reply::unavailable("gateway is shutting down", 1));
                }
                return;
            }
            match spec.build() {
                Ok(r) => break r,
                // A failed rebuild (snapshot bytes refuse to parse — should
                // be impossible) retries with backoff rather than abandoning
                // the queue; handlers stay bounded by their deadlines.
                Err(_) => {
                    std::thread::sleep(delay);
                    delay = (delay * 2).min(Duration::from_secs(1));
                }
            }
        };
    }
}

/// The micro-batching scheduler. Owns the registry for its generation's
/// lifetime (the supervisor rebuilds it across panics).
fn batcher_loop(shared: &Arc<Shared>, registry: &mut ModelRegistry) {
    loop {
        let Some(first) = shared.queue.pop_wait(Duration::from_millis(50)) else {
            if shared.shutdown.load(Ordering::SeqCst) && shared.queue.depth() == 0 {
                // Close the queue atomically: a handler that read the
                // shutdown flag as false and is pushing right now either
                // lands before `close` (we answer its job below) or after
                // (its push fails with `Closed`) — never stranded waiting
                // on a batcher that is gone.
                for job in shared.queue.close() {
                    job.reply.send(Reply::unavailable("gateway is shutting down", 1));
                }
                return;
            }
            continue;
        };
        if !shared.cfg.linger.is_zero() {
            std::thread::sleep(shared.cfg.linger);
        }
        let mut jobs = vec![first];
        jobs.extend(shared.queue.drain(shared.cfg.max_coalesce.saturating_sub(1)));
        // Deliberately after the drain: the injected panic hits with jobs
        // in flight, which is exactly the case supervision must recover.
        nilm_fault::maybe_panic("batcher.panic");

        // Group by requested key set; each group becomes one fleet pass.
        let mut groups: BTreeMap<Vec<ModelKey>, Vec<Job>> = BTreeMap::new();
        for job in jobs {
            groups.entry(job.group.clone()).or_default().push(job);
        }
        for (keys, jobs) in groups {
            serve_group(shared, registry, &keys, jobs);
        }
        shared.metrics.set_registry_current(registry.stats());
    }
}

/// Serves one group of jobs that requested the same model set: merges all
/// their households into one fleet pass and routes each job its slice.
fn serve_group(
    shared: &Arc<Shared>,
    registry: &mut ModelRegistry,
    keys: &[ModelKey],
    jobs: Vec<Job>,
) {
    let meta = &shared.models[&keys[0]];
    let cfg = FleetConfig {
        step_s: meta.step_s,
        max_ffill_s: 3 * meta.step_s,
        batch: shared.cfg.batch_windows,
        threads: 1,
        apply_priors: shared.cfg.apply_priors,
    };
    let mut jobs = jobs;
    // Every job's queue-wait stage ends here, where the batcher takes
    // ownership of the group; the coalesce stage (merging households into
    // one pass) starts.
    let coalesce_start = Instant::now();
    let coalesce_start_ns = nilm_obs::trace::now_ns();
    let tracing = nilm_obs::trace::enabled();
    for job in &jobs {
        shared.metrics.stage_ms(
            "queue_wait",
            coalesce_start.duration_since(job.enqueued).as_secs_f64() * 1e3,
        );
        if tracing && job.trace.1 != 0 {
            nilm_obs::trace::record_span(
                nilm_obs::trace::TraceId(job.trace.0),
                job.trace.1,
                "queue_wait",
                String::new(),
                job.enqueued_ns,
                coalesce_start_ns.saturating_sub(job.enqueued_ns).max(1),
            );
        }
    }
    let mut merged: Vec<HouseholdSeries> = Vec::new();
    let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(jobs.len());
    for job in &mut jobs {
        // Move, don't clone: the series buffers are not needed in the job
        // after merging, and copying them would double peak memory on the
        // batcher hot path for long feeds.
        let households = std::mem::take(&mut job.households);
        ranges.push((merged.len(), households.len()));
        merged.extend(households);
    }
    let coalesce_ms = coalesce_start.elapsed().as_secs_f64() * 1e3;
    shared.metrics.stage_ms("coalesce", coalesce_ms);
    if tracing {
        for job in &jobs {
            if job.trace.1 != 0 {
                nilm_obs::trace::record_span(
                    nilm_obs::trace::TraceId(job.trace.0),
                    job.trace.1,
                    "coalesce",
                    format!("jobs={} households={}", jobs.len(), merged.len()),
                    coalesce_start_ns,
                    ((coalesce_ms * 1e6) as u64).max(1),
                );
            }
        }
    }
    // Emulates a pass stuck on slow storage or a runaway computation:
    // sleeps past every waiting handler's deadline, so the requests are
    // answered `503` + `Retry-After` by the deadline path, not by luck.
    if nilm_fault::fires("gateway.slow_pass") {
        std::thread::sleep(shared.cfg.deadline.saturating_mul(2));
    }
    // The fleet pass runs with every job's trace in context: the stage
    // spans recorded inside `serve_fleet` (preprocess, infer + kernel
    // children, stitch) are duplicated per coalesced request.
    let ctx: Vec<nilm_obs::trace::CtxEntry> = if tracing {
        jobs.iter().filter(|j| j.trace.1 != 0).map(|j| j.trace).collect()
    } else {
        Vec::new()
    };
    let _ctx = nilm_obs::trace::set_context(&ctx);
    match serve_fleet(registry, keys, &merged, &cfg) {
        Ok(result) => {
            shared.metrics.batch(
                jobs.len(),
                result.summary.batches,
                result.summary.feed_windows_scored,
                result.summary.inferences,
            );
            shared
                .metrics
                .shard_recovery(result.summary.shard_retries, result.summary.households_degraded);
            shared.metrics.stage_ms("preprocess", result.summary.preprocess_s * 1e3);
            shared.metrics.stage_ms("infer", result.summary.infer_s * 1e3);
            shared.metrics.stage_ms("stitch", result.summary.stitch_s * 1e3);
            for (job, (start, len)) in jobs.into_iter().zip(ranges) {
                let rows: Vec<HouseholdRow> = (start..start + len)
                    .map(|hi| {
                        let hh = &result.households[hi];
                        HouseholdRow {
                            id: &hh.id,
                            degraded: hh.degraded.as_deref(),
                            timelines: job
                                .keys
                                .iter()
                                .map(|&k| {
                                    result
                                        .timeline(hi, k)
                                        .expect("fleet pass covers every requested key")
                                })
                                .collect(),
                        }
                    })
                    .collect();
                let body = localize_response(&job.keys, &rows, job.detail).to_compact();
                job.reply.send(Reply::new(200, "OK", body));
            }
        }
        Err(e) => {
            // Registry trouble is recoverable operator territory — answer
            // `503` + `Retry-After` (quarantine windows know exactly how
            // long). `500` stays reserved for genuine programming errors.
            let reply = match &e {
                FleetError::Registry(RegistryError::Quarantined { retry_after, .. }) => {
                    Reply::unavailable(&format!("fleet pass failed: {e}"), retry_after.as_secs())
                }
                FleetError::Registry(RegistryError::Load { .. }) => {
                    Reply::unavailable(&format!("fleet pass failed: {e}"), 1)
                }
                _ => Reply::new(
                    500,
                    "Internal Server Error",
                    error_body(&format!("fleet pass failed: {e}")),
                ),
            };
            for job in jobs {
                job.reply.send(reply.clone());
            }
        }
    }
}
