//! The gateway server: accept loop, per-connection handlers, and the
//! micro-batching scheduler thread.
//!
//! One thread owns the [`ModelRegistry`] — the **batcher**. Connection
//! handlers never touch models; they parse + validate requests, enqueue
//! jobs on the bounded [`JobQueue`], and block on a per-job response
//! channel. The batcher pops the first waiting job, drains whatever else
//! queued up behind it (the concurrent backlog), groups jobs by requested
//! key set, and serves each group as **one**
//! [`camal::fleet::serve_fleet`] pass with every job's households merged —
//! so windows from different requests share GEMM batches. Because window
//! scoring is row-independent (eval-mode BatchNorm, per-row GEMM tiles),
//! coalescing never changes a response: each one is bit-identical to a
//! direct [`camal::stream::serve`] call, which the concurrency tests pin.
//!
//! Overload: a full queue answers `503` immediately (load shedding), so
//! handler threads never pile up behind a slow batcher unbounded.
//! Shutdown: [`Gateway::shutdown`] (or `POST /admin/shutdown`) stops the
//! accept loop, lets in-flight connections finish their current request,
//! drains the queue, and joins every thread.

use crate::http::{read_request, write_json, HttpLimits, Request};
use crate::metrics::Metrics;
use crate::protocol::{error_body, localize_response, parse_localize, Detail, HouseholdRow};
use crate::queue::{JobQueue, PushError};
use camal::fleet::{serve_fleet, FleetConfig};
use camal::registry::{ModelKey, ModelRegistry};
use camal::stream::HouseholdSeries;
use nilm_json::JsonValue;
use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of a [`Gateway`].
#[derive(Clone, Debug)]
pub struct GatewayConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Bounded queue capacity; a full queue sheds load with `503`.
    pub queue_capacity: usize,
    /// Maximum requests coalesced into one batcher pass.
    pub max_coalesce: usize,
    /// Extra wait after the first job of a pass, letting concurrent
    /// requests land in the same pass. Zero relies on natural backlog.
    pub linger: Duration,
    /// Windows per GEMM batch inside a fleet pass.
    pub batch_windows: usize,
    /// Maximum concurrent connection handler threads; connections beyond
    /// it are answered `503` and closed immediately.
    pub max_connections: usize,
    /// Socket read timeout; an idle keep-alive connection is closed after
    /// this long.
    pub read_timeout: Duration,
    /// HTTP parsing limits.
    pub limits: HttpLimits,
    /// Apply Table I duration priors on stitched timelines.
    pub apply_priors: bool,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            addr: "127.0.0.1:0".into(),
            queue_capacity: 256,
            max_coalesce: 64,
            linger: Duration::ZERO,
            batch_windows: 64,
            max_connections: 1024,
            read_timeout: Duration::from_secs(5),
            limits: HttpLimits::default(),
            apply_priors: true,
        }
    }
}

/// What the serving side knows about one registered model, snapshotted at
/// startup for lock-free request validation in handler threads.
#[derive(Clone, Copy, Debug)]
pub struct ModelMeta {
    /// Sampling step of the model's dataset template.
    pub step_s: u32,
    /// Training window length.
    pub window: usize,
}

/// A response computed by the batcher: the HTTP status triple plus body.
type JobReply = (u16, &'static str, String);

struct Job {
    /// Requested keys, deduplicated, in request order (response order).
    keys: Vec<ModelKey>,
    /// Sorted copy of `keys` — the coalescing identity: jobs wanting the
    /// same model set share one fleet pass.
    group: Vec<ModelKey>,
    households: Vec<HouseholdSeries>,
    detail: Detail,
    reply: mpsc::Sender<JobReply>,
}

struct Shared {
    cfg: GatewayConfig,
    addr: SocketAddr,
    models: BTreeMap<ModelKey, ModelMeta>,
    queue: JobQueue<Job>,
    metrics: Metrics,
    shutdown: AtomicBool,
}

impl Shared {
    /// Flags shutdown and pokes the accept loop awake with a self-connect.
    fn request_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running gateway. Dropping it without [`Gateway::shutdown`] leaves the
/// server threads running for the rest of the process.
pub struct Gateway {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Gateway {
    /// Binds, warms every registered model (lazy checkpoints load now, so
    /// corrupt files fail fast instead of per-request), and spawns the
    /// accept loop and the batcher thread. The registry moves into the
    /// batcher — it is the only thread that touches models afterwards.
    pub fn start(mut registry: ModelRegistry, cfg: GatewayConfig) -> std::io::Result<Gateway> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let mut models = BTreeMap::new();
        for key in registry.keys() {
            let model = registry
                .get_mut(key)
                .map_err(|e| std::io::Error::other(format!("cannot warm model {key}: {e}")))?;
            let window = model.window();
            if window == 0 {
                return Err(std::io::Error::other(format!(
                    "model {key} does not record its training window"
                )));
            }
            let step_s = nilm_data::templates::template(key.dataset).step_s;
            models.insert(key, ModelMeta { step_s, window });
        }
        if models.is_empty() {
            return Err(std::io::Error::other("gateway needs at least one registered model"));
        }
        let shared = Arc::new(Shared {
            queue: JobQueue::new(cfg.queue_capacity),
            metrics: Metrics::new(),
            shutdown: AtomicBool::new(false),
            cfg,
            addr,
            models,
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let batcher = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("gateway-batcher".into())
                .spawn(move || batcher_loop(&shared, &mut registry))
                .expect("spawn batcher thread")
        };
        let accept = {
            let shared = shared.clone();
            let conns = conns.clone();
            std::thread::Builder::new()
                .name("gateway-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &conns))
                .expect("spawn accept thread")
        };
        Ok(Gateway { shared, accept: Some(accept), batcher: Some(batcher), conns })
    }

    /// The bound socket address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// True once shutdown has been requested (locally or over HTTP).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown and joins every server thread: the accept loop
    /// first (no new connections), then the connection handlers (each
    /// finishes its in-flight request), then the batcher (drains the
    /// queue). Bounded by the read timeout per idle connection.
    pub fn shutdown(mut self) {
        self.shared.request_shutdown();
        self.join_all();
    }

    /// Blocks until someone requests shutdown (e.g. `POST
    /// /admin/shutdown`), then joins every thread like
    /// [`Gateway::shutdown`].
    pub fn wait(mut self) {
        self.join_all();
    }

    fn join_all(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // After the accept loop exits no new handler can appear; join the
        // existing ones (they stop pushing jobs), then the batcher can see
        // a conclusively empty queue.
        loop {
            let handle = self.conns.lock().expect("conns lock").pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let mut stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept errors (e.g. EMFILE under fd pressure)
                // return immediately; back off instead of busy-spinning a
                // core until the condition clears.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // The wake-up self-connect (or a late client) during shutdown.
            return;
        }
        {
            // Reap finished handlers and bound the live count: one thread
            // per connection must not grow without limit under a flood.
            let mut conns = conns.lock().expect("conns lock");
            if conns.len() >= shared.cfg.max_connections {
                conns.retain(|h| !h.is_finished());
            }
            if conns.len() >= shared.cfg.max_connections {
                drop(conns);
                shared.metrics.shed();
                let _ = write_json(
                    &mut stream,
                    503,
                    "Service Unavailable",
                    &error_body("connection limit reached, retry later"),
                    false,
                );
                continue;
            }
            let shared = shared.clone();
            match std::thread::Builder::new()
                .name("gateway-conn".into())
                .spawn(move || handle_connection(stream, &shared))
            {
                Ok(handle) => conns.push(handle),
                // Thread exhaustion must degrade (drop this connection),
                // not panic the accept loop and wedge the server.
                Err(_) => continue,
            }
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(&stream);
    loop {
        let request = match read_request(&mut reader, &shared.cfg.limits) {
            Ok(r) => r,
            Err(e) => {
                // Parse errors get a best-effort 4xx before closing; dead
                // or timed-out sockets are just dropped. Either way the
                // connection ends here — framing is unreliable after an
                // error.
                if let Some((status, reason)) = e.status() {
                    shared.metrics.response(status);
                    let _ = write_json(
                        &mut (&stream),
                        status,
                        reason,
                        &error_body(&e.to_string()),
                        false,
                    );
                }
                return;
            }
        };
        let (status, reason, body) = route(&request, shared);
        // Re-read the flag after routing: /admin/shutdown flips it inside
        // `route`, and its own response must already announce `close`.
        let keep_alive = request.keep_alive() && !shared.shutdown.load(Ordering::SeqCst);
        shared.metrics.response(status);
        if write_json(&mut (&stream), status, reason, &body, keep_alive).is_err() {
            return;
        }
        if !keep_alive {
            return;
        }
    }
}

/// Dispatches one request; returns `(status, reason, body)`.
fn route(request: &Request, shared: &Arc<Shared>) -> (u16, &'static str, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            shared.metrics.request("healthz");
            let doc = JsonValue::object([
                ("status", JsonValue::String("ok".into())),
                ("models", JsonValue::Number(shared.models.len() as f64)),
                ("queue_depth", JsonValue::Number(shared.queue.depth() as f64)),
                ("shutting_down", JsonValue::Bool(shared.shutdown.load(Ordering::SeqCst))),
            ]);
            (200, "OK", doc.to_compact())
        }
        ("GET", "/metrics") => {
            shared.metrics.request("metrics");
            (200, "OK", shared.metrics.to_json(shared.queue.depth()).to_pretty())
        }
        ("GET", "/v1/models") => {
            shared.metrics.request("models");
            let rows: Vec<JsonValue> = shared
                .models
                .iter()
                .map(|(key, meta)| {
                    JsonValue::object([
                        ("key", JsonValue::String(key.label())),
                        ("step_s", JsonValue::Number(meta.step_s as f64)),
                        ("window", JsonValue::Number(meta.window as f64)),
                    ])
                })
                .collect();
            (200, "OK", JsonValue::object([("models", JsonValue::Array(rows))]).to_compact())
        }
        ("POST", "/v1/localize") => {
            shared.metrics.request("localize");
            handle_localize(request, shared)
        }
        ("POST", "/admin/shutdown") => {
            shared.metrics.request("shutdown");
            shared.request_shutdown();
            (200, "OK", JsonValue::object([("ok", JsonValue::Bool(true))]).to_compact())
        }
        (_, "/healthz" | "/metrics" | "/v1/models" | "/v1/localize" | "/admin/shutdown") => {
            shared.metrics.request("other");
            (405, "Method Not Allowed", error_body("method not allowed for this path"))
        }
        _ => {
            shared.metrics.request("other");
            (404, "Not Found", error_body("no such route"))
        }
    }
}

/// Validates a localize request against the model snapshot, enqueues it,
/// and blocks on the batcher's reply.
fn handle_localize(request: &Request, shared: &Arc<Shared>) -> (u16, &'static str, String) {
    let start = Instant::now();
    let parsed = match parse_localize(&request.body) {
        Ok(p) => p,
        Err(e) => return (400, "Bad Request", error_body(&e)),
    };
    // Validate against the startup snapshot so handlers never touch the
    // registry: every key must be registered, and one pass needs a single
    // resolution and window across its models.
    let mut step_s = 0u32;
    let mut window = 0usize;
    for key in &parsed.appliances {
        let Some(meta) = shared.models.get(key) else {
            return (404, "Not Found", error_body(&format!("model {key} is not registered")));
        };
        if step_s == 0 {
            (step_s, window) = (meta.step_s, meta.window);
        } else if meta.step_s != step_s || meta.window != window {
            return (
                400,
                "Bad Request",
                error_body(&format!(
                    "model {key} runs at step {} s / window {} and cannot share a pass with \
                     step {step_s} s / window {window}; request them separately",
                    meta.step_s, meta.window
                )),
            );
        }
    }
    if shared.shutdown.load(Ordering::SeqCst) {
        return (503, "Service Unavailable", error_body("gateway is shutting down"));
    }
    let mut group = parsed.appliances.clone();
    group.sort();
    let (tx, rx) = mpsc::channel();
    let job = Job {
        keys: parsed.appliances,
        group,
        households: parsed.households,
        detail: parsed.detail,
        reply: tx,
    };
    match shared.queue.push(job) {
        Ok(()) => {}
        Err(PushError::Full) => {
            shared.metrics.shed();
            return (503, "Service Unavailable", error_body("queue full, retry later"));
        }
        // The batcher already exited; a job pushed now would never be
        // served, so answer here instead of blocking on `rx` forever.
        Err(PushError::Closed) => {
            return (503, "Service Unavailable", error_body("gateway is shutting down"));
        }
    }
    shared.metrics.queue_depth(shared.queue.depth());
    match rx.recv() {
        Ok((status, reason, body)) => {
            shared.metrics.latency_ms(start.elapsed().as_secs_f64() * 1e3);
            (status, reason, body)
        }
        // The batcher died (panicked) with our job in flight.
        Err(_) => (500, "Internal Server Error", error_body("batcher failed")),
    }
}

/// The micro-batching scheduler. Owns the registry for the gateway's
/// lifetime.
fn batcher_loop(shared: &Arc<Shared>, registry: &mut ModelRegistry) {
    loop {
        let Some(first) = shared.queue.pop_wait(Duration::from_millis(50)) else {
            if shared.shutdown.load(Ordering::SeqCst) && shared.queue.depth() == 0 {
                // Close the queue atomically: a handler that read the
                // shutdown flag as false and is pushing right now either
                // lands before `close` (we answer its job below) or after
                // (its push fails with `Closed`) — never stranded waiting
                // on a batcher that is gone.
                for job in shared.queue.close() {
                    let _ = job.reply.send((
                        503,
                        "Service Unavailable",
                        error_body("gateway is shutting down"),
                    ));
                }
                return;
            }
            continue;
        };
        if !shared.cfg.linger.is_zero() {
            std::thread::sleep(shared.cfg.linger);
        }
        let mut jobs = vec![first];
        jobs.extend(shared.queue.drain(shared.cfg.max_coalesce.saturating_sub(1)));

        // Group by requested key set; each group becomes one fleet pass.
        let mut groups: BTreeMap<Vec<ModelKey>, Vec<Job>> = BTreeMap::new();
        for job in jobs {
            groups.entry(job.group.clone()).or_default().push(job);
        }
        for (keys, jobs) in groups {
            serve_group(shared, registry, &keys, jobs);
        }
    }
}

/// Serves one group of jobs that requested the same model set: merges all
/// their households into one fleet pass and routes each job its slice.
fn serve_group(
    shared: &Arc<Shared>,
    registry: &mut ModelRegistry,
    keys: &[ModelKey],
    jobs: Vec<Job>,
) {
    let meta = shared.models[&keys[0]];
    let cfg = FleetConfig {
        step_s: meta.step_s,
        max_ffill_s: 3 * meta.step_s,
        batch: shared.cfg.batch_windows,
        threads: 1,
        apply_priors: shared.cfg.apply_priors,
    };
    let mut jobs = jobs;
    let mut merged: Vec<HouseholdSeries> = Vec::new();
    let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(jobs.len());
    for job in &mut jobs {
        // Move, don't clone: the series buffers are not needed in the job
        // after merging, and copying them would double peak memory on the
        // batcher hot path for long feeds.
        let households = std::mem::take(&mut job.households);
        ranges.push((merged.len(), households.len()));
        merged.extend(households);
    }
    match serve_fleet(registry, keys, &merged, &cfg) {
        Ok(result) => {
            shared.metrics.batch(
                jobs.len(),
                result.summary.batches,
                result.summary.feed_windows_scored,
                result.summary.inferences,
            );
            for (job, (start, len)) in jobs.iter().zip(&ranges) {
                let rows: Vec<HouseholdRow> = (*start..start + len)
                    .map(|hi| {
                        let hh = &result.households[hi];
                        HouseholdRow {
                            id: &hh.id,
                            timelines: job
                                .keys
                                .iter()
                                .map(|&k| {
                                    result
                                        .timeline(hi, k)
                                        .expect("fleet pass covers every requested key")
                                })
                                .collect(),
                        }
                    })
                    .collect();
                let body = localize_response(&job.keys, &rows, job.detail).to_compact();
                let _ = job.reply.send((200, "OK", body));
            }
        }
        Err(e) => {
            let body = error_body(&format!("fleet pass failed: {e}"));
            for job in &jobs {
                let _ = job.reply.send((500, "Internal Server Error", body.clone()));
            }
        }
    }
}
