//! Minimal HTTP/1.1 layer: an **incremental** request parser plus response
//! framing helpers.
//!
//! Implements exactly the slice of RFC 9112 the gateway needs: request-line
//! parsing, header parsing with hard limits, `Content-Length` bodies,
//! keep-alive negotiation and status-line responses. Chunked
//! transfer-encoding is **not** supported (a request declaring it gets
//! `411 Length Required`); the gateway's clients always send sized bodies.
//!
//! The core is [`RequestParser`], a push-style state machine that consumes
//! arbitrary byte chunks — a reactor feeds it whatever `read(2)` returned —
//! and yields complete [`Request`]s. Parsing is **chunking-invariant**:
//! any split of a byte stream into chunks (1-byte drips, split CRLFs, split
//! bodies) parses to the same requests, and a malformed stream fails with
//! the same error at the same byte offset, as the whole-buffer parse. The
//! blocking [`read_request`] used by tests and simple clients is a thin
//! loop over the same parser, so there is exactly one parse implementation.
//!
//! Every malformed input maps to an error value (never a panic), and every
//! read is bounded by the caller-supplied limits plus the socket read
//! timeout or reactor idle deadline, so a hostile peer cannot hang the
//! server.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Hard limits applied while parsing one request.
#[derive(Clone, Copy, Debug)]
pub struct HttpLimits {
    /// Maximum request-line length in bytes.
    pub max_request_line: usize,
    /// Maximum single header line length in bytes.
    pub max_header_line: usize,
    /// Maximum number of header lines.
    pub max_headers: usize,
    /// Maximum `Content-Length` accepted.
    pub max_body: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_request_line: 8 * 1024,
            max_header_line: 8 * 1024,
            max_headers: 64,
            max_body: 64 * 1024 * 1024,
        }
    }
}

/// One parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Request method, upper-case as received (`GET`, `POST`, ...).
    pub method: String,
    /// Request target (path + optional query), as received.
    pub path: String,
    /// True for `HTTP/1.0` requests (close-by-default framing).
    pub http10: bool,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after this request.
    /// HTTP/1.1 defaults to keep-alive unless `Connection: close` is sent;
    /// HTTP/1.0 defaults to close unless `Connection: keep-alive` is sent.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => !self.http10,
        }
    }
}

/// Why a request could not be parsed. Each variant maps to the 4xx status
/// the server should answer with before closing the connection.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection cleanly before sending any byte of a
    /// new request — the normal end of a keep-alive session, not an error
    /// to report.
    Closed,
    /// The connection died or timed out mid-request.
    Io(std::io::Error),
    /// The request line or a header is malformed → `400`.
    Malformed(String),
    /// The request line exceeds the limit → `414`.
    UriTooLong,
    /// A header line or the header count exceeds the limit → `431`.
    HeadersTooLarge,
    /// `Content-Length` exceeds the limit → `413`.
    BodyTooLarge,
    /// A `Transfer-Encoding` this server does not implement → `411`
    /// (clients must send sized bodies).
    LengthRequired,
}

impl HttpError {
    /// The HTTP status code this parse error should be answered with
    /// (`Closed`/`Io` have none: the connection is just dropped).
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::Closed | HttpError::Io(_) => None,
            HttpError::Malformed(_) => Some((400, "Bad Request")),
            HttpError::UriTooLong => Some((414, "URI Too Long")),
            HttpError::HeadersTooLarge => Some((431, "Request Header Fields Too Large")),
            HttpError::BodyTooLarge => Some((413, "Content Too Large")),
            HttpError::LengthRequired => Some((411, "Length Required")),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::UriTooLong => write!(f, "request line too long"),
            HttpError::HeadersTooLarge => write!(f, "headers too large"),
            HttpError::BodyTooLarge => write!(f, "body too large"),
            HttpError::LengthRequired => write!(f, "missing content-length"),
        }
    }
}

impl std::error::Error for HttpError {}

/// A parse failure with the byte offset (into the connection's request
/// stream, counting every byte the parser consumed) at which it was
/// detected. Detection offsets are **chunking-invariant**: feeding the same
/// byte stream in any chunk split fails at the same offset.
#[derive(Debug)]
pub struct ParseError {
    /// What went wrong (one of the 4xx-mapped variants; the incremental
    /// parser never produces `Closed` or `Io`).
    pub error: HttpError,
    /// Total bytes consumed by the parser when the error was detected.
    pub offset: u64,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (at byte {})", self.error, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Internal states of [`RequestParser`].
#[derive(Debug)]
enum ParseState {
    /// Accumulating the request line (leading empty lines are skipped).
    Line,
    /// Accumulating header lines of a partially parsed request.
    Headers { method: String, path: String, http10: bool, headers: Vec<(String, String)> },
    /// Copying `remaining` body bytes into the request.
    Body { request: Request, remaining: usize },
    /// A previous feed failed; the connection's framing is unreliable.
    Failed,
}

/// Push-style incremental HTTP/1.1 request parser.
///
/// Feed it arbitrary byte chunks as they arrive; it consumes input up to at
/// most one complete request per call (so pipelined requests stay framed —
/// the caller re-feeds the remainder) and returns the parsed [`Request`]
/// when its last body byte lands. The request line and headers are scanned
/// byte-at-a-time, which makes limit violations and malformed-input errors
/// fire at a deterministic byte offset regardless of how the stream was
/// chunked; bodies are copied in bulk.
///
/// After an error the parser stays [`RequestParser::failed`] — byte framing
/// after a malformed request is unreliable, so the connection must be
/// closed (after a best-effort 4xx).
#[derive(Debug)]
pub struct RequestParser {
    limits: HttpLimits,
    state: ParseState,
    /// Raw bytes of the line being accumulated (terminator included while
    /// counting, stripped at completion).
    line: Vec<u8>,
    /// Total bytes consumed over the parser's lifetime (across requests).
    consumed: u64,
}

impl RequestParser {
    /// A fresh parser enforcing `limits`.
    pub fn new(limits: HttpLimits) -> RequestParser {
        RequestParser { limits, state: ParseState::Line, line: Vec::new(), consumed: 0 }
    }

    /// True when the parser sits at a request boundary with no partial
    /// input buffered — the state in which a peer close is the clean end
    /// of a keep-alive connection rather than a truncation.
    pub fn is_idle(&self) -> bool {
        matches!(self.state, ParseState::Line) && self.line.is_empty()
    }

    /// True once a feed has failed; the connection must be closed.
    pub fn failed(&self) -> bool {
        matches!(self.state, ParseState::Failed)
    }

    /// Total bytes consumed so far (across all requests on the stream).
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// The error a peer EOF at the current parse position maps to:
    /// truncated line/headers are `Malformed` (answered `400`), a truncated
    /// body is an I/O-level truncation (connection just dropped), and EOF
    /// at a request boundary is the clean `Closed`.
    pub fn eof_error(&self) -> HttpError {
        match &self.state {
            ParseState::Line if self.line.is_empty() => HttpError::Closed,
            ParseState::Line => HttpError::Malformed("eof inside line".into()),
            ParseState::Headers { .. } => {
                if self.line.is_empty() {
                    HttpError::Malformed("eof inside headers".into())
                } else {
                    HttpError::Malformed("eof inside line".into())
                }
            }
            ParseState::Body { .. } => HttpError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "eof inside body",
            )),
            ParseState::Failed => HttpError::Malformed("parser already failed".into()),
        }
    }

    fn fail(&mut self, error: HttpError) -> ParseError {
        self.state = ParseState::Failed;
        ParseError { error, offset: self.consumed }
    }

    /// Consumes bytes from `input`. Returns how many bytes were consumed
    /// plus the completed request, if its final byte was reached. Consuming
    /// stops right after a completed request — re-feed the remainder to
    /// parse the next pipelined request. On error the consumed count is
    /// whatever was eaten up to the offending byte and the parser is dead.
    pub fn feed(&mut self, input: &[u8]) -> Result<(usize, Option<Request>), ParseError> {
        let mut i = 0usize;
        while i < input.len() {
            match &mut self.state {
                ParseState::Failed => {
                    return Err(ParseError {
                        error: HttpError::Malformed("parser already failed".into()),
                        offset: self.consumed,
                    })
                }
                ParseState::Body { request, remaining } => {
                    let take = (*remaining).min(input.len() - i);
                    request.body.extend_from_slice(&input[i..i + take]);
                    *remaining -= take;
                    i += take;
                    self.consumed += take as u64;
                    if *remaining == 0 {
                        let request = std::mem::take(request);
                        self.state = ParseState::Line;
                        return Ok((i, Some(request)));
                    }
                    // Body exhausted the chunk.
                    return Ok((i, None));
                }
                _ => {
                    // Request line or header section: accumulate one byte.
                    let byte = input[i];
                    i += 1;
                    self.consumed += 1;
                    let max = match self.state {
                        ParseState::Line => self.limits.max_request_line,
                        _ => self.limits.max_header_line,
                    };
                    // Mirrors the historical blocking reader's bound: raw
                    // line bytes (terminator included) may not exceed
                    // `max + 2` (room for CRLF).
                    if self.line.len() + 1 > max + 2 {
                        let over = match self.state {
                            ParseState::Line => HttpError::UriTooLong,
                            _ => HttpError::HeadersTooLarge,
                        };
                        return Err(self.fail(over));
                    }
                    if byte != b'\n' {
                        self.line.push(byte);
                        continue;
                    }
                    while self.line.last() == Some(&b'\r') {
                        self.line.pop();
                    }
                    let line = match String::from_utf8(std::mem::take(&mut self.line)) {
                        Ok(l) => l,
                        Err(_) => {
                            return Err(
                                self.fail(HttpError::Malformed("non-UTF-8 header bytes".into()))
                            )
                        }
                    };
                    match self.on_line(line) {
                        Ok(Some(request)) => return Ok((i, Some(request))),
                        Ok(None) => {}
                        Err(e) => return Err(self.fail(e)),
                    }
                }
            }
        }
        Ok((i, None))
    }

    /// Handles one completed (terminator-stripped) line. `Ok(Some)` is a
    /// finished body-less request.
    fn on_line(&mut self, line: String) -> Result<Option<Request>, HttpError> {
        match &mut self.state {
            ParseState::Line => {
                if line.is_empty() {
                    // RFC 9112 allows (skipped) empty lines before the
                    // request line.
                    return Ok(None);
                }
                let (method, path, http10) = parse_request_line(&line)?;
                self.state = ParseState::Headers { method, path, http10, headers: Vec::new() };
                Ok(None)
            }
            ParseState::Headers { method, path, http10, headers } => {
                if !line.is_empty() {
                    if headers.len() >= self.limits.max_headers {
                        return Err(HttpError::HeadersTooLarge);
                    }
                    let (name, value) = line.split_once(':').ok_or_else(|| {
                        HttpError::Malformed(format!("header without ':' ({line:?})"))
                    })?;
                    if name.is_empty() || name.contains(' ') {
                        return Err(HttpError::Malformed("invalid header name".into()));
                    }
                    headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
                    return Ok(None);
                }
                // Blank line: headers complete. Validate framing.
                let request = Request {
                    method: std::mem::take(method),
                    path: std::mem::take(path),
                    http10: *http10,
                    headers: std::mem::take(headers),
                    body: Vec::new(),
                };
                if request
                    .header("transfer-encoding")
                    .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
                {
                    return Err(HttpError::LengthRequired);
                }
                // RFC 9112 §6.3: duplicate Content-Length headers are a
                // framing desync (request-smuggling vector on keep-alive
                // connections) and must be rejected.
                if request.headers.iter().filter(|(k, _)| k == "content-length").count() > 1 {
                    return Err(HttpError::Malformed("duplicate content-length headers".into()));
                }
                let content_length =
                    match request.header("content-length") {
                        Some(v) => Some(v.trim().parse::<usize>().map_err(|_| {
                            HttpError::Malformed(format!("bad content-length {v:?}"))
                        })?),
                        None => None,
                    };
                match content_length {
                    Some(n) if n > self.limits.max_body => Err(HttpError::BodyTooLarge),
                    Some(n) if n > 0 => {
                        let mut request = request;
                        request.body.reserve_exact(n.min(1 << 20));
                        self.state = ParseState::Body { request, remaining: n };
                        Ok(None)
                    }
                    // RFC 9112: no (or zero) Content-Length and no
                    // Transfer-Encoding means no body — legal even for
                    // POST (`curl -X POST` sends exactly this).
                    _ => {
                        self.state = ParseState::Line;
                        Ok(Some(request))
                    }
                }
            }
            _ => unreachable!("on_line is only called from line-accumulating states"),
        }
    }
}

impl Default for Request {
    fn default() -> Request {
        Request {
            method: String::new(),
            path: String::new(),
            http10: false,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }
}

/// Splits and validates `METHOD TARGET HTTP/1.x`.
fn parse_request_line(line: &str) -> Result<(String, String, bool), HttpError> {
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let method = parts.next().ok_or_else(|| HttpError::Malformed("empty request line".into()))?;
    let path = parts.next().ok_or_else(|| HttpError::Malformed("missing request target".into()))?;
    let version =
        parts.next().ok_or_else(|| HttpError::Malformed("missing HTTP version".into()))?;
    if parts.next().is_some() {
        return Err(HttpError::Malformed("extra tokens in request line".into()));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed(format!("unsupported version {version:?}")));
    }
    if !method.bytes().all(|b| b.is_ascii_alphabetic()) {
        return Err(HttpError::Malformed("invalid method".into()));
    }
    Ok((method.to_string(), path.to_string(), version == "HTTP/1.0"))
}

/// Reads and parses one request from a blocking stream — a loop over
/// [`RequestParser`], so blocking and reactor parsing share one
/// implementation. `Err(HttpError::Closed)` is the clean end of a
/// keep-alive connection.
pub fn read_request(
    reader: &mut BufReader<&TcpStream>,
    limits: &HttpLimits,
) -> Result<Request, HttpError> {
    let mut parser = RequestParser::new(*limits);
    loop {
        let buf = match reader.fill_buf() {
            Ok(b) => b,
            Err(e) => return Err(HttpError::Io(e)),
        };
        if buf.is_empty() {
            return Err(parser.eof_error());
        }
        let (n, request) = match parser.feed(buf) {
            Ok(out) => out,
            Err(e) => return Err(e.error),
        };
        reader.consume(n);
        if let Some(request) = request {
            return Ok(request);
        }
    }
}

/// Serializes one response (status line, headers, body) into a byte
/// buffer. This is the single framing implementation: the blocking
/// [`write_response_with`] and the reactor's outbox both emit these exact
/// bytes, which keeps reactor responses byte-identical to the historical
/// thread-per-connection handler.
pub fn encode_response_with(
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    extra_headers: &[(&str, String)],
) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(body);
    out
}

/// Writes one response with a sized body and extra headers (e.g.
/// `Retry-After` on a 503). `keep_alive` controls the `Connection` header;
/// the caller decides based on the request and the server's shutdown state.
pub fn write_response_with(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    extra_headers: &[(&str, String)],
) -> std::io::Result<()> {
    let bytes = encode_response_with(status, reason, content_type, body, keep_alive, extra_headers);
    stream.write_all(&bytes)?;
    stream.flush()
}

/// Writes one response with a sized body and no extra headers.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    write_response_with(stream, status, reason, content_type, body, keep_alive, &[])
}

/// Writes a JSON response (`application/json`).
pub fn write_json(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    write_response(stream, status, reason, "application/json", body.as_bytes(), keep_alive)
}

/// Writes a JSON response with extra headers.
pub fn write_json_with(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    body: &str,
    keep_alive: bool,
    extra_headers: &[(&str, String)],
) -> std::io::Result<()> {
    write_response_with(
        stream,
        status,
        reason,
        "application/json",
        body.as_bytes(),
        keep_alive,
        extra_headers,
    )
}

/// One parsed HTTP response (client side, for the load generator and
/// tests).
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// Headers with lower-cased names.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl Response {
    /// First value of header `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, if it is.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// Reads one CRLF- (or bare-LF-) terminated line of at most `max` bytes.
/// Returns `Ok(None)` on clean EOF before the first byte. (Client-side
/// helper for [`read_response`]; the server side parses through
/// [`RequestParser`].)
fn read_line(
    reader: &mut BufReader<impl Read>,
    max: usize,
    over_limit: HttpError,
) -> Result<Option<String>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = match reader.fill_buf() {
            Ok(b) => b,
            Err(e) => return Err(HttpError::Io(e)),
        };
        if buf.is_empty() {
            // EOF.
            if line.is_empty() {
                return Ok(None);
            }
            return Err(HttpError::Malformed("eof inside line".into()));
        }
        let nl = buf.iter().position(|&b| b == b'\n');
        let take = nl.map(|i| i + 1).unwrap_or(buf.len());
        if line.len() + take > max + 2 {
            return Err(over_limit);
        }
        line.extend_from_slice(&buf[..take]);
        reader.consume(take);
        if nl.is_some() {
            while line.last() == Some(&b'\n') || line.last() == Some(&b'\r') {
                line.pop();
            }
            return Ok(Some(
                String::from_utf8(line)
                    .map_err(|_| HttpError::Malformed("non-UTF-8 header bytes".into()))?,
            ));
        }
    }
}

/// Reads one response from the stream (client side). Requires a
/// `Content-Length` header, which this server always sends.
pub fn read_response(reader: &mut BufReader<&TcpStream>) -> Result<Response, HttpError> {
    let limits = HttpLimits::default();
    let line = read_line(reader, limits.max_request_line, HttpError::UriTooLong)?
        .ok_or(HttpError::Closed)?;
    let mut parts = line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("bad status line {line:?}")));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::Malformed(format!("bad status line {line:?}")))?;
    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, limits.max_header_line, HttpError::HeadersTooLarge)?
            .ok_or_else(|| HttpError::Malformed("eof inside headers".into()))?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let n: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .ok_or_else(|| HttpError::Malformed("response without content-length".into()))?;
    let mut body = vec![0u8; n];
    reader.read_exact(&mut body).map_err(HttpError::Io)?;
    Ok(Response { status, headers, body })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Feeds `input` to `read_request` through a real socket pair.
    fn parse_bytes(input: &[u8]) -> Result<Request, HttpError> {
        parse_bytes_with(input, &HttpLimits::default())
    }

    fn parse_bytes_with(input: &[u8], limits: &HttpLimits) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let input = input.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&input).unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        stream.set_read_timeout(Some(std::time::Duration::from_secs(2))).unwrap();
        let mut reader = BufReader::new(&stream);
        let out = read_request(&mut reader, limits);
        writer.join().unwrap();
        out
    }

    #[test]
    fn parses_a_simple_get() {
        let r = parse_bytes(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!((r.method.as_str(), r.path.as_str()), ("GET", "/healthz"));
        assert_eq!(r.header("host"), Some("x"));
        assert!(r.keep_alive());
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_a_sized_post_body() {
        let r =
            parse_bytes(b"POST /v1/localize HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(r.body, b"abcd");
    }

    #[test]
    fn connection_close_disables_keep_alive() {
        let r = parse_bytes(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!r.keep_alive());
    }

    #[test]
    fn http10_defaults_to_close_unless_keep_alive_requested() {
        let r = parse_bytes(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(r.http10);
        assert!(!r.keep_alive(), "HTTP/1.0 framing is close-by-default");
        let r = parse_bytes(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(r.keep_alive(), "explicit keep-alive opts back in");
    }

    #[test]
    fn clean_eof_is_closed_not_malformed() {
        assert!(matches!(parse_bytes(b""), Err(HttpError::Closed)));
    }

    #[test]
    fn malformed_request_lines_are_rejected() {
        for bad in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET /x\r\n\r\n",
            b"GET /x HTTP/2.0\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"G@T /x HTTP/1.1\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"GET /x HTTP/1.1\r\nno-colon-header\r\n\r\n",
            // Duplicate Content-Length = framing desync (smuggling vector).
            b"POST /x HTTP/1.1\r\nContent-Length: 0\r\nContent-Length: 30\r\n\r\n",
        ] {
            assert!(
                matches!(parse_bytes(bad), Err(HttpError::Malformed(_))),
                "{:?} not rejected as malformed",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn post_without_length_has_empty_body_but_chunked_is_rejected() {
        // RFC 9112: absent Content-Length/Transfer-Encoding = no body,
        // which is exactly what `curl -X POST` sends.
        let r = parse_bytes(b"POST /admin/shutdown HTTP/1.1\r\n\r\n").unwrap();
        assert!(r.body.is_empty());
        assert!(matches!(
            parse_bytes(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::LengthRequired)
        ));
    }

    #[test]
    fn limits_map_to_the_right_errors() {
        let limits =
            HttpLimits { max_request_line: 32, max_header_line: 32, max_headers: 2, max_body: 8 };
        let long_path = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(100));
        assert!(matches!(
            parse_bytes_with(long_path.as_bytes(), &limits),
            Err(HttpError::UriTooLong)
        ));
        let long_header = format!("GET / HTTP/1.1\r\nx: {}\r\n\r\n", "v".repeat(100));
        assert!(matches!(
            parse_bytes_with(long_header.as_bytes(), &limits),
            Err(HttpError::HeadersTooLarge)
        ));
        let many_headers = b"GET / HTTP/1.1\r\na: 1\r\nb: 2\r\nc: 3\r\n\r\n";
        assert!(matches!(parse_bytes_with(many_headers, &limits), Err(HttpError::HeadersTooLarge)));
        let big_body = b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789";
        assert!(matches!(parse_bytes_with(big_body, &limits), Err(HttpError::BodyTooLarge)));
    }

    #[test]
    fn truncated_body_is_an_io_error_not_a_hang() {
        // Declares 10 bytes, sends 3, then closes: read_exact must fail.
        let out = parse_bytes(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc");
        assert!(matches!(out, Err(HttpError::Io(_))), "{out:?}");
    }

    #[test]
    fn response_round_trips_through_a_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            write_json(&mut stream, 200, "OK", "{\"ok\":true}", true).unwrap();
        });
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(&stream);
        let resp = read_response(&mut reader).unwrap();
        server.join().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("content-type"), Some("application/json"));
        assert_eq!(resp.body_str(), Some("{\"ok\":true}"));
    }
}
