//! The bounded job queue between connection handlers and the batcher.
//!
//! Handlers [`push`](JobQueue::push) accepted localize jobs; the batcher
//! [`pop_wait`](JobQueue::pop_wait)s for the first job of a pass and then
//! [`drain`](JobQueue::drain)s whatever else queued up meanwhile — that
//! backlog is exactly what gets coalesced into one shared fleet pass. A
//! full queue rejects the push (the handler answers `503`), which bounds
//! both memory and tail latency under overload.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

struct State<T> {
    jobs: VecDeque<T>,
    /// Set by [`JobQueue::close`]; pushes are rejected afterwards.
    closed: bool,
}

/// A bounded MPSC queue with blocking pop. `T` is the job type; the
/// gateway instantiates it with its internal job struct.
pub struct JobQueue<T> {
    inner: Mutex<State<T>>,
    nonempty: Condvar,
    capacity: usize,
}

/// Why a [`JobQueue::push`] was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity (load shed).
    Full,
    /// The consumer has shut down; no job pushed now would ever be served.
    Closed,
}

impl<T> JobQueue<T> {
    /// A queue holding at most `capacity` jobs.
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(State {
                jobs: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
            }),
            nonempty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues a job, or rejects it when the queue is full (load shed) or
    /// closed (the consumer is gone). A rejected job is handed back to the
    /// caller — jobs carry reply handles that must answer the *right* 503,
    /// not a generic drop-path fallback. The `queue.full` fault point
    /// injects artificial capacity rejections for overload testing.
    pub fn push(&self, job: T) -> Result<(), (T, PushError)> {
        let mut q = self.inner.lock().expect("queue lock");
        if q.closed {
            return Err((job, PushError::Closed));
        }
        if q.jobs.len() >= self.capacity || nilm_fault::fires("queue.full") {
            return Err((job, PushError::Full));
        }
        q.jobs.push_back(job);
        drop(q);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Blocks up to `timeout` for a job. `None` on timeout — the batcher
    /// uses that to re-check the shutdown flag.
    pub fn pop_wait(&self, timeout: Duration) -> Option<T> {
        let mut q = self.inner.lock().expect("queue lock");
        if q.jobs.is_empty() {
            let (guard, _) = self
                .nonempty
                .wait_timeout_while(q, timeout, |q| q.jobs.is_empty())
                .expect("queue lock");
            q = guard;
        }
        q.jobs.pop_front()
    }

    /// Takes up to `max` more jobs without blocking — the micro-batch
    /// backlog that coalesces with the job already popped.
    pub fn drain(&self, max: usize) -> Vec<T> {
        let mut q = self.inner.lock().expect("queue lock");
        let n = q.jobs.len().min(max);
        q.jobs.drain(..n).collect()
    }

    /// Marks the queue closed and returns every job still enqueued, in one
    /// atomic step. The consumer calls this when it exits so (a) any job
    /// that raced in just before closing is handed back for a reply rather
    /// than stranded, and (b) later pushes fail with [`PushError::Closed`]
    /// instead of waiting forever on a consumer that is gone.
    pub fn close(&self) -> Vec<T> {
        let mut q = self.inner.lock().expect("queue lock");
        q.closed = true;
        q.jobs.drain(..).collect()
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock").jobs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_drain_and_shed() {
        let q: JobQueue<u32> = JobQueue::new(3);
        assert_eq!(q.push(1), Ok(()));
        assert_eq!(q.push(2), Ok(()));
        assert_eq!(q.push(3), Ok(()));
        assert_eq!(q.push(4), Err((4, PushError::Full)), "capacity 3 must shed the 4th");
        assert_eq!(q.depth(), 3);
        assert_eq!(q.pop_wait(Duration::from_millis(1)), Some(1));
        assert_eq!(q.drain(10), vec![2, 3]);
        assert_eq!(q.pop_wait(Duration::from_millis(1)), None, "empty queue times out");
    }

    #[test]
    fn close_hands_back_stragglers_and_rejects_later_pushes() {
        let q: JobQueue<u32> = JobQueue::new(8);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.close(), vec![1, 2], "closing drains racing jobs atomically");
        assert_eq!(q.push(3), Err((3, PushError::Closed)));
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn pop_wait_wakes_on_cross_thread_push() {
        let q: Arc<JobQueue<u32>> = Arc::new(JobQueue::new(8));
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.pop_wait(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        q.push(7).unwrap();
        assert_eq!(t.join().unwrap(), Some(7));
    }
}
