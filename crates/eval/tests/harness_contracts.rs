//! Contract tests for the experiment harness: CSVs parse back, scales are
//! consistent, and the cost model matches the paper's quoted ratios.

use nilm_data::appliance::ApplianceKind;
use nilm_data::templates::{template, DatasetId};
use nilm_eval::cost::*;
use nilm_eval::output::Table;
use nilm_eval::runner::{all_cases, case_avg_power, Case, Scale};

#[test]
fn every_case_has_a_table1_average_power() {
    for case in all_cases() {
        let p = case_avg_power(&case);
        let expected = template(case.dataset).case(case.appliance).unwrap().avg_power_w;
        assert_eq!(p, expected, "{}", case.label());
    }
}

#[test]
fn case_labels_are_unique() {
    let labels: std::collections::BTreeSet<String> = all_cases().iter().map(Case::label).collect();
    assert_eq!(labels.len(), all_cases().len());
}

#[test]
fn scale_presets_define_distinct_regimes() {
    for (a, b) in [(Scale::smoke(), Scale::quick()), (Scale::quick(), Scale::full())] {
        assert!(a.window <= b.window);
        assert!(a.epochs <= b.epochs);
        assert!(a.kernels.len() <= b.kernels.len());
    }
    // The full preset is the paper shape.
    let f = Scale::full();
    assert_eq!(f.window, 510);
    assert_eq!(f.n_ensemble, 5);
}

#[test]
fn dataset_overrides_shrink_but_keep_minimums() {
    let s = Scale::smoke();
    for id in [DatasetId::UkDale, DatasetId::Refit, DatasetId::Ideal, DatasetId::EdfEv] {
        let t = template(id);
        let o = s.dataset_override(id);
        let sub = o.submetered_houses.unwrap();
        assert!(sub <= t.submetered_houses);
        assert!(sub >= 4.min(t.submetered_houses), "{id:?} shrunk below minimum");
    }
    // UKDALE keeps all 5 houses (pinned split).
    assert_eq!(Scale::smoke().dataset_override(DatasetId::UkDale).submetered_houses, Some(5));
}

#[test]
fn csv_roundtrip_preserves_cells() {
    let mut t = Table::new("roundtrip", &["a", "b"]);
    t.push_row(vec!["x,y".into(), "1.25".into()]);
    let csv = t.to_csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines[0], "# roundtrip");
    assert_eq!(lines[1], "a,b");
    assert_eq!(lines[2], "\"x,y\",1.25");
}

#[test]
fn cost_model_reproduces_paper_ratios() {
    let c = LabelingCosts::default();
    // Paper: strong labeling costs > 2 orders of magnitude more.
    assert!(strong_cost_usd(&c, 1.0) / weak_cost_usd(&c) >= 100.0);
    assert!(strong_gco2(&c) / weak_gco2(&c) >= 100.0);
    // Storage ratio ~6x at 1M households / 5 appliances / 1-min sampling.
    let s = StorageModel::default();
    let ratio = strong_storage_tb_per_year(&s, 1_000_000, 5, 60)
        / weak_storage_tb_per_year(&s, 1_000_000, 5, 60);
    assert!((5.5..6.5).contains(&ratio), "ratio {ratio}");
}

#[test]
fn storage_scales_linearly_in_households() {
    let s = StorageModel::default();
    let one = strong_storage_tb_per_year(&s, 1_000_000, 5, 60);
    let two = strong_storage_tb_per_year(&s, 2_000_000, 5, 60);
    assert!((two / one - 2.0).abs() < 1e-9);
}

#[test]
fn coarser_sampling_reduces_storage() {
    let s = StorageModel::default();
    let fine = strong_storage_tb_per_year(&s, 1_000_000, 5, 60);
    let coarse = strong_storage_tb_per_year(&s, 1_000_000, 5, 1800);
    assert!(coarse < fine / 20.0);
}

#[test]
fn smoke_cases_cover_every_dataset_once() {
    let cases = nilm_eval::runner::smoke_cases();
    let datasets: std::collections::BTreeSet<&str> =
        cases.iter().map(|c| c.dataset.name()).collect();
    assert_eq!(datasets.len(), cases.len());
    assert!(cases.iter().any(|c| c.appliance == ApplianceKind::ElectricVehicle));
}
