//! Result tables: aligned ASCII printing and CSV export into `results/`.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// A simple rectangular result table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table title (used as the CSV comment header).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows; each must match `headers` in length.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders an aligned ASCII table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(line, "| {cell:w$} ", w = w);
            }
            line.push('|');
            line
        };
        let header = fmt_row(&self.headers, &widths);
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{}", "-".repeat(header.len()));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Prints the table to stdout (locked, buffered).
    pub fn print(&self) {
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        let _ = lock.write_all(self.render().as_bytes());
    }

    /// CSV serialization (quoting cells containing commas).
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(|h| quote(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Writes the CSV into `dir/<name>.csv`, creating the directory.
    pub fn save_csv(&self, dir: &Path, name: &str) -> std::io::Result<std::path::PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float with 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["x".into(), "1.5".into()]);
        t.push_row(vec!["longer".into(), "2".into()]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let r = sample().render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("| longer | 2   |"));
    }

    #[test]
    fn csv_roundtrip_quotes() {
        let mut t = Table::new("t", &["x"]);
        t.push_row(vec!["a,b".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn save_csv_writes_file() {
        let dir = std::env::temp_dir().join("nilm_eval_test_output");
        let path = sample().save_csv(&dir, "demo").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("# demo"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(f1(12.34), "12.3");
    }
}
