//! Shared experiment scaffolding: scale presets (smoke / quick / full),
//! dataset construction, the list of evaluation cases, and uniform
//! train-and-evaluate entry points for CamAL and every baseline.

use camal::{CamalConfig, CamalModel, CaseReport};
use nilm_data::appliance::ApplianceKind;
use nilm_data::pipeline::{prepare_case, CaseData, SplitConfig};
use nilm_data::templates::{generate_dataset, template, Dataset, DatasetId, ScaleOverride};
use nilm_data::windows::WindowSet;
use nilm_models::baselines::BaselineKind;
use nilm_models::{
    predict_proba_frames, proba_to_status, train_strong, train_weak_mil, TrainConfig, TrainStats,
};
use std::time::Instant;

/// Experiment scale preset. Experiments keep the paper's *shape* at every
/// scale; `full` approaches the paper's sizes, `smoke` finishes in seconds.
#[derive(Clone, Debug)]
pub struct Scale {
    /// Preset name (smoke/quick/full).
    pub name: &'static str,
    /// Window length w (the paper uses 510).
    pub window: usize,
    /// Channel-width divisor applied to every model (1 = paper widths).
    pub width_div: usize,
    /// Training epochs.
    pub epochs: usize,
    /// CamAL trials per kernel (Algorithm 1).
    pub trials: usize,
    /// CamAL kernel grid.
    pub kernels: Vec<usize>,
    /// CamAL ensemble size n.
    pub n_ensemble: usize,
    /// Divisor on template house counts.
    pub houses_div: usize,
    /// Divisor on template days-per-house.
    pub days_div: usize,
    /// Worker threads for ensemble training.
    pub threads: usize,
    /// Base seed.
    pub seed: u64,
}

impl Scale {
    /// Seconds-scale preset used by tests and Criterion benches.
    pub fn smoke() -> Self {
        Scale {
            name: "smoke",
            window: 128,
            width_div: 16,
            epochs: 3,
            trials: 1,
            kernels: vec![5, 9],
            n_ensemble: 2,
            houses_div: 4,
            days_div: 4,
            threads: 4,
            seed: 0xE0,
        }
    }

    /// Single-candidate, single-epoch preset (window 128, batch 16): the
    /// fixture shared by the Criterion benches (`nilm_bench::bench_scale`)
    /// and the `bench_conv_gemm` perf harness.
    pub fn bench() -> Self {
        Scale {
            name: "bench",
            epochs: 1,
            trials: 1,
            kernels: vec![5],
            n_ensemble: 1,
            threads: 2,
            ..Scale::smoke()
        }
    }

    /// Minutes-scale preset: the default for the experiment binaries.
    pub fn quick() -> Self {
        Scale {
            name: "quick",
            window: 256,
            width_div: 8,
            epochs: 6,
            trials: 2,
            kernels: vec![5, 9, 15],
            n_ensemble: 3,
            houses_div: 2,
            days_div: 2,
            threads: 8,
            seed: 0xE1,
        }
    }

    /// Paper-shaped preset (window 510, kernel grid {5,7,9,15,25}, n=5).
    pub fn full() -> Self {
        Scale {
            name: "full",
            window: 510,
            width_div: 4,
            epochs: 10,
            trials: 3,
            kernels: vec![5, 7, 9, 15, 25],
            n_ensemble: 5,
            houses_div: 1,
            days_div: 1,
            threads: 8,
            seed: 0xE2,
        }
    }

    /// Parses `--smoke` / `--quick` / `--full` from CLI args (default quick).
    pub fn from_args(args: &[String]) -> Self {
        if args.iter().any(|a| a == "--smoke") {
            Scale::smoke()
        } else if args.iter().any(|a| a == "--full") {
            Scale::full()
        } else {
            Scale::quick()
        }
    }

    /// The CamAL configuration induced by this scale.
    pub fn camal_config(&self) -> CamalConfig {
        CamalConfig {
            n_ensemble: self.n_ensemble,
            kernels: self.kernels.clone(),
            trials: self.trials,
            width_div: self.width_div,
            train: self.train_config(),
            seed: self.seed,
            ..CamalConfig::default()
        }
    }

    /// The heterogeneous variant of [`Scale::camal_config`]: the ResNet
    /// kernel grid plus one TransApp candidate sized to this scale's width
    /// divisor, so Algorithm 1 sweeps a mixed backbone zoo. The serving
    /// demos train their zoos with this. The ensemble is sized to the full
    /// candidate pool (one trial each) so the selected ensemble provably
    /// mixes both families — a zoo demo where the attention member always
    /// lost selection would never exercise heterogeneous serving.
    pub fn mixed_camal_config(&self) -> CamalConfig {
        let ta = nilm_models::TransAppConfig::scaled(self.width_div);
        let base = self.camal_config();
        let n_ensemble = base.kernels.len() + 1;
        CamalConfig {
            candidates: vec![nilm_models::BackboneSpec::TransApp {
                d_model: ta.d_model,
                heads: ta.heads,
                d_ff: ta.d_ff,
                layers: ta.layers,
                downsample: ta.downsample,
            }],
            n_ensemble,
            trials: 1,
            ..base
        }
    }

    /// The baseline training configuration induced by this scale.
    pub fn train_config(&self) -> TrainConfig {
        TrainConfig { epochs: self.epochs, batch_size: 16, lr: 1e-3, clip: 5.0, seed: self.seed }
    }

    /// The dataset override induced by this scale.
    pub fn dataset_override(&self, id: DatasetId) -> ScaleOverride {
        let t = template(id);
        // UKDALE keeps its 5 houses at every scale because the paper pins
        // the house-level split (1,3,4 train / 2 val / 5 test).
        let floor = if id == DatasetId::UkDale { 5 } else { 4 };
        let sub = if t.submetered_houses == 0 {
            0
        } else {
            (t.submetered_houses / self.houses_div).clamp(floor, t.submetered_houses)
        };
        ScaleOverride {
            submetered_houses: Some(sub),
            possession_only_houses: Some(t.possession_only_houses / self.houses_div),
            days_per_house: Some((t.days_per_house / self.days_div).max(2)),
        }
    }
}

/// One (dataset, appliance) evaluation case — the 11 cases of Table III.
#[derive(Clone, Copy, Debug)]
pub struct Case {
    /// Source dataset.
    pub dataset: DatasetId,
    /// Target appliance.
    pub appliance: ApplianceKind,
}

impl Case {
    /// `dataset:appliance` label used in tables and `--only` filters.
    pub fn label(&self) -> String {
        format!("{}:{}", self.dataset.name(), self.appliance.name())
    }
}

/// The 11 labeled evaluation cases of the paper (Table III rows).
pub fn all_cases() -> Vec<Case> {
    use ApplianceKind::*;
    use DatasetId::*;
    vec![
        Case { dataset: Refit, appliance: Dishwasher },
        Case { dataset: Refit, appliance: Kettle },
        Case { dataset: Refit, appliance: Microwave },
        Case { dataset: Refit, appliance: WashingMachine },
        Case { dataset: UkDale, appliance: Dishwasher },
        Case { dataset: UkDale, appliance: Kettle },
        Case { dataset: UkDale, appliance: Microwave },
        Case { dataset: Ideal, appliance: Dishwasher },
        Case { dataset: Ideal, appliance: Shower },
        Case { dataset: Ideal, appliance: WashingMachine },
        Case { dataset: EdfEv, appliance: ElectricVehicle },
    ]
}

/// A small representative subset (one case per dataset) for smoke runs.
pub fn smoke_cases() -> Vec<Case> {
    use ApplianceKind::*;
    use DatasetId::*;
    vec![
        Case { dataset: Refit, appliance: Kettle },
        Case { dataset: UkDale, appliance: Dishwasher },
        Case { dataset: Ideal, appliance: Shower },
        Case { dataset: EdfEv, appliance: ElectricVehicle },
    ]
}

/// Generates the dataset for a case at the given scale.
pub fn build_dataset(id: DatasetId, scale: &Scale) -> Dataset {
    generate_dataset(&template(id), scale.dataset_override(id), scale.seed ^ id.name().len() as u64)
}

/// Prepares the train/val/test windows for a case.
pub fn build_case_data(case: &Case, scale: &Scale) -> (Dataset, CaseData) {
    let ds = build_dataset(case.dataset, scale);
    let cd = prepare_case(&ds, case.appliance, scale.window, &SplitConfig::default());
    (ds, cd)
}

/// Result of training and evaluating one method on one case.
#[derive(Clone, Debug)]
pub struct MethodRun {
    /// Method display name.
    pub method: String,
    /// Evaluation on the test windows.
    pub report: CaseReport,
    /// Number of labels the training consumed (weak: 1/window; strong:
    /// window length/window).
    pub labels_used: usize,
    /// Wall-clock training seconds.
    pub train_secs: f64,
    /// Mean seconds per epoch (baselines) or per-candidate total (CamAL).
    pub secs_per_epoch: f64,
}

/// Trains CamAL on a case and evaluates it on the test windows.
pub fn run_camal(
    case: &Case,
    data: &CaseData,
    scale: &Scale,
    cfg_override: Option<CamalConfig>,
) -> MethodRun {
    let cfg = cfg_override.unwrap_or_else(|| scale.camal_config());
    let avg_power = case_avg_power(case);
    let mut model = CamalModel::train(&cfg, &data.train, &data.val, scale.threads);
    let report = model.evaluate(&data.test, avg_power, 16);
    MethodRun {
        method: "CamAL".to_string(),
        report,
        labels_used: data.train.label_count(false),
        train_secs: model.train_stats.total_secs,
        secs_per_epoch: model.train_stats.candidate_secs_total
            / (model.train_stats.candidates.max(1) * cfg.train.epochs.max(1)) as f64,
    }
}

/// Average running power P_a for a case (Table I).
pub fn case_avg_power(case: &Case) -> f32 {
    template(case.dataset).case(case.appliance).map(|c| c.avg_power_w).unwrap_or(1000.0)
}

/// Trains one baseline on a case and evaluates it on the test windows.
/// Strongly supervised baselines use per-timestep BCE; CRNN-Weak uses MIL.
pub fn run_baseline(kind: BaselineKind, case: &Case, data: &CaseData, scale: &Scale) -> MethodRun {
    let mut rng = nilm_tensor::init::rng(scale.seed ^ kind.name().len() as u64);
    let mut model = kind.build(&mut rng, scale.width_div);
    let cfg = scale.train_config();
    let start = Instant::now();
    let stats: TrainStats = if kind.is_weakly_supervised() {
        train_weak_mil(model.as_mut(), &data.train, &cfg)
    } else {
        train_strong(model.as_mut(), &data.train, &cfg)
    };
    let train_secs = start.elapsed().as_secs_f64();
    let report = evaluate_frame_model(model.as_mut(), &data.test, case_avg_power(case));
    MethodRun {
        method: kind.name().to_string(),
        report,
        labels_used: data.train.label_count(!kind.is_weakly_supervised()),
        train_secs,
        secs_per_epoch: stats.secs_per_epoch(),
    }
}

/// Evaluates any frame-logit model on a ground-truth window set: threshold
/// at 0.5, detection = any ON timestep, then score like CamAL.
pub fn evaluate_frame_model(
    model: &mut dyn nilm_tensor::layer::Layer,
    test: &WindowSet,
    avg_power_w: f32,
) -> CaseReport {
    let probas = predict_proba_frames(model, test, 16);
    let status: Vec<Vec<u8>> = probas.iter().map(|p| proba_to_status(p)).collect();
    let detected: Vec<bool> = status.iter().map(|s| s.iter().any(|&b| b == 1)).collect();
    camal::report_from_status(test, &status, &detected, avg_power_w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_presets_are_ordered() {
        let s = Scale::smoke();
        let f = Scale::full();
        assert!(s.window < f.window);
        assert!(s.epochs < f.epochs);
        assert_eq!(f.window, 510);
        assert_eq!(f.kernels, vec![5, 7, 9, 15, 25]);
        assert_eq!(f.n_ensemble, 5);
    }

    #[test]
    fn from_args_picks_preset() {
        assert_eq!(Scale::from_args(&["--smoke".into()]).name, "smoke");
        assert_eq!(Scale::from_args(&["--full".into()]).name, "full");
        assert_eq!(Scale::from_args(&[]).name, "quick");
    }

    #[test]
    fn eleven_cases_match_table3() {
        assert_eq!(all_cases().len(), 11);
        let labels: Vec<String> = all_cases().iter().map(|c| c.label()).collect();
        assert!(labels.contains(&"ideal:shower".to_string()));
        assert!(labels.contains(&"edf_ev:ev".to_string()));
    }

    #[test]
    fn build_case_data_produces_windows() {
        let scale = Scale::smoke();
        let case = Case { dataset: DatasetId::Refit, appliance: ApplianceKind::Kettle };
        let (_, cd) = build_case_data(&case, &scale);
        assert!(!cd.train.is_empty());
        assert!(!cd.test.is_empty());
        assert_eq!(cd.train.window_len(), scale.window);
    }

    #[test]
    fn camal_smoke_run_produces_report() {
        let scale = Scale::smoke();
        let case = Case { dataset: DatasetId::Refit, appliance: ApplianceKind::Kettle };
        let (_, cd) = build_case_data(&case, &scale);
        let run = run_camal(&case, &cd, &scale, None);
        assert!(run.report.localization.f1.is_finite());
        assert!(run.labels_used > 0);
        assert!(run.train_secs > 0.0);
    }

    #[test]
    fn baseline_smoke_run_produces_report() {
        let scale = Scale::smoke();
        let case = Case { dataset: DatasetId::Refit, appliance: ApplianceKind::Kettle };
        let (_, cd) = build_case_data(&case, &scale);
        let run = run_baseline(BaselineKind::TpNilm, &case, &cd, &scale);
        assert!(run.report.localization.f1.is_finite());
        // Strong supervision consumes window-length × windows labels.
        assert_eq!(run.labels_used, cd.train.len() * scale.window);
    }
}
