//! Perf harness for the im2col + GEMM compute backend.
//!
//! Times the hot path of the reproduction — detector forward/backward, full
//! CamAL inference, and one ensemble-training epoch — under the naive
//! (shifted-axpy) and GEMM convolution backends at [`Scale::bench`]
//! geometry (batch 16, window 128), and writes the results to
//! `BENCH_conv_gemm.json` so later PRs have a trajectory to regress
//! against.
//!
//! ```text
//! cargo run --release -p nilm_eval --bin bench_conv_gemm            # paper-width ResNet
//! cargo run --release -p nilm_eval --bin bench_conv_gemm -- --smoke # CI-sized, seconds
//! cargo run --release -p nilm_eval --bin bench_conv_gemm -- --out results
//! ```
//!
//! The emitted file is re-read and checked with [`nilm_eval::json`] before
//! the process exits, so a malformed artifact fails loudly (CI runs the
//! smoke mode for exactly this guarantee).

use camal::CamalModel;
use nilm_eval::json::{validate, JsonValue};
use nilm_eval::runner::Scale;
use nilm_models::resnet::{ResNet, ResNetConfig};
use nilm_tensor::conv::{set_conv_backend, ConvBackend};
use nilm_tensor::init::{randn_tensor, rng};
use nilm_tensor::layer::{Layer, Mode};
use nilm_tensor::loss::cross_entropy;
use std::path::PathBuf;
use std::time::Instant;

/// Batch size of every measurement (matches the training batch size).
const BATCH: usize = 16;

struct Timings {
    naive_ms: f64,
    gemm_ms: f64,
}

impl Timings {
    fn speedup(&self) -> f64 {
        if self.gemm_ms > 0.0 {
            self.naive_ms / self.gemm_ms
        } else {
            f64::INFINITY
        }
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("naive_ms", JsonValue::Number(self.naive_ms)),
            ("gemm_ms", JsonValue::Number(self.gemm_ms)),
            ("speedup", JsonValue::Number(self.speedup())),
        ])
    }
}

/// Median wall-clock milliseconds of `reps` runs of `f` under `backend`.
fn time_backend(backend: ConvBackend, reps: usize, mut f: impl FnMut()) -> f64 {
    set_conv_backend(backend);
    f(); // warm-up: page in buffers, settle the branch predictors
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn measure(reps: usize, mut f: impl FnMut()) -> Timings {
    let naive_ms = time_backend(ConvBackend::Naive, reps, &mut f);
    let gemm_ms = time_backend(ConvBackend::Gemm, reps, &mut f);
    set_conv_backend(ConvBackend::Auto);
    Timings { naive_ms, gemm_ms }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_dir: PathBuf = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let scale = Scale::bench();
    let window = scale.window;
    // Smoke mode keeps CI at seconds scale with a width-reduced net; the
    // default run times the paper-width ResNet the claims are about.
    let (resnet_cfg, reps) =
        if smoke { (ResNetConfig::scaled(5, 8), 3) } else { (ResNetConfig::paper(5), 9) };

    println!(
        "bench_conv_gemm: mode={} window={window} batch={BATCH} resnet_channels={:?}",
        if smoke { "smoke" } else { "full" },
        resnet_cfg.channels
    );

    // --- detector forward / backward ------------------------------------
    let mut r = rng(0xBE);
    let mut net = ResNet::new(&mut r, resnet_cfg);
    let x = randn_tensor(&mut r, &[BATCH, 1, window], 1.0);
    let labels: Vec<usize> = (0..BATCH).map(|i| i % 2).collect();

    let forward = measure(reps, || {
        let _ = net.forward(&x, Mode::Train);
    });
    println!(
        "resnet_forward      naive {:8.2} ms | gemm {:8.2} ms | speedup {:4.2}x",
        forward.naive_ms,
        forward.gemm_ms,
        forward.speedup()
    );

    let (_, grad) = cross_entropy(&net.forward(&x, Mode::Train), &labels);
    let backward = measure(reps, || {
        net.zero_grad();
        let _ = net.backward(&grad);
    });
    println!(
        "resnet_backward     naive {:8.2} ms | gemm {:8.2} ms | speedup {:4.2}x",
        backward.naive_ms,
        backward.gemm_ms,
        backward.speedup()
    );

    // --- full CamAL inference and one ensemble-training epoch -----------
    let cfg = scale.camal_config();
    let case = nilm_eval::runner::build_case_data(&nilm_eval::runner::smoke_cases()[0], &scale).1;
    set_conv_backend(ConvBackend::Gemm);
    let mut model = CamalModel::train(&cfg, &case.train, &case.val, scale.threads);
    let inference = measure(reps, || {
        let _ = model.localize_set(&case.test, BATCH);
    });
    println!(
        "camal_inference     naive {:8.2} ms | gemm {:8.2} ms | speedup {:4.2}x ({} windows)",
        inference.naive_ms,
        inference.gemm_ms,
        inference.speedup(),
        case.test.len()
    );

    let train_reps = if smoke { 1 } else { 2 };
    let train_epoch = measure(train_reps, || {
        let _ = CamalModel::train(&cfg, &case.train, &case.val, scale.threads);
    });
    println!(
        "ensemble_train_epoch naive {:7.2} ms | gemm {:8.2} ms | speedup {:4.2}x ({} windows)",
        train_epoch.naive_ms,
        train_epoch.gemm_ms,
        train_epoch.speedup(),
        case.train.len()
    );

    // --- artifact --------------------------------------------------------
    let doc = JsonValue::object([
        ("schema", JsonValue::String("bench_conv_gemm/v1".into())),
        (
            "baseline_note",
            JsonValue::String(
                "naive_ms runs the shifted-axpy reference backend inside the post-PR \
                 build, so it already benefits from this PR's shared layer work \
                 (FMA accumulation, vectorized BatchNorm reductions, allocation \
                 trims, target-cpu codegen); the untouched pre-PR tree measures \
                 ~1.2-1.3x slower than naive_ms on the same machine (reproduce: \
                 git worktree add /tmp/prepr <seed>; time ResNet::paper(5) forward \
                 on [16,1,128]). The recorded `threads` field shows how many \
                 workers the parallel fan-outs had; on a single-core machine \
                 the GEMM numbers are sequential-path only."
                    .into(),
            ),
        ),
        ("mode", JsonValue::String(if smoke { "smoke" } else { "full" }.into())),
        ("window", JsonValue::Number(window as f64)),
        ("batch", JsonValue::Number(BATCH as f64)),
        ("threads", JsonValue::Number(rayon::current_num_threads() as f64)),
        (
            "resnet_channels",
            JsonValue::Array(
                resnet_cfg.channels.iter().map(|&c| JsonValue::Number(c as f64)).collect(),
            ),
        ),
        (
            "sections",
            JsonValue::object([
                ("resnet_forward", forward.to_json()),
                ("resnet_backward", backward.to_json()),
                ("camal_inference", inference.to_json()),
                ("ensemble_train_epoch", train_epoch.to_json()),
            ]),
        ),
    ]);
    let text = doc.to_pretty();
    validate(&text).expect("harness emitted invalid JSON");
    std::fs::create_dir_all(&out_dir).expect("cannot create output directory");
    let path = out_dir.join("BENCH_conv_gemm.json");
    std::fs::write(&path, &text).expect("cannot write benchmark artifact");
    let reread = std::fs::read_to_string(&path).expect("cannot re-read benchmark artifact");
    validate(&reread).expect("benchmark artifact on disk is invalid JSON");
    println!("wrote {} (validated)", path.display());
}
