//! Perf harness for the convolution compute backends.
//!
//! Times the hot path of the reproduction — detector forward/backward, full
//! CamAL inference, and one ensemble-training epoch — under the naive
//! (shifted-axpy), GEMM (portable microkernel), SIMD (explicit AVX2/NEON
//! microkernels + skinny fast path) and Auto (shape-keyed autotuner)
//! backends at [`Scale::bench`] geometry (batch 16, window 128), and writes
//! the results to `BENCH_conv_gemm.json` so later PRs have a trajectory to
//! regress against.
//!
//! ```text
//! cargo run --release -p nilm_eval --bin bench_conv_gemm            # paper-width ResNet
//! cargo run --release -p nilm_eval --bin bench_conv_gemm -- --smoke # CI-sized, seconds
//! cargo run --release -p nilm_eval --bin bench_conv_gemm -- --out results
//! ```
//!
//! Besides aggregate speedups, the artifact carries the autotuner's
//! **per-shape winner table** (which backend won each lowered-GEMM shape at
//! the measured thread count), so a future regression is attributable to a
//! specific layer shape rather than a mystery aggregate.
//!
//! The emitted file is re-read and checked with [`nilm_eval::json`] before
//! the process exits, so a malformed artifact fails loudly (CI runs the
//! smoke mode for exactly this guarantee).

use camal::CamalModel;
use nilm_eval::json::{validate, JsonValue};
use nilm_eval::runner::Scale;
use nilm_models::resnet::{ResNet, ResNetConfig};
use nilm_tensor::conv::{set_conv_backend, ConvBackend};
use nilm_tensor::dispatch;
use nilm_tensor::init::{randn_tensor, rng};
use nilm_tensor::layer::{Layer, Mode};
use nilm_tensor::loss::cross_entropy;
use std::path::PathBuf;
use std::time::Instant;

/// Batch size of every measurement (matches the training batch size).
const BATCH: usize = 16;

struct Timings {
    naive_ms: f64,
    gemm_ms: f64,
    simd_ms: f64,
    auto_ms: f64,
}

impl Timings {
    fn speedup_over_naive(&self, ms: f64) -> f64 {
        if ms > 0.0 {
            self.naive_ms / ms
        } else {
            f64::INFINITY
        }
    }

    /// Naive over the best dispatched backend — the number a serving stack
    /// actually gets, since Auto races all bit-identical candidates.
    fn speedup(&self) -> f64 {
        self.speedup_over_naive(self.gemm_ms.min(self.simd_ms).min(self.auto_ms))
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("naive_ms", JsonValue::Number(self.naive_ms)),
            ("gemm_ms", JsonValue::Number(self.gemm_ms)),
            ("simd_ms", JsonValue::Number(self.simd_ms)),
            ("auto_ms", JsonValue::Number(self.auto_ms)),
            ("speedup_gemm", JsonValue::Number(self.speedup_over_naive(self.gemm_ms))),
            ("speedup_simd", JsonValue::Number(self.speedup_over_naive(self.simd_ms))),
            ("speedup_auto", JsonValue::Number(self.speedup_over_naive(self.auto_ms))),
            ("speedup", JsonValue::Number(self.speedup())),
        ])
    }
}

/// Median wall-clock milliseconds of `reps` runs of `f` under `backend`.
fn time_backend(backend: ConvBackend, reps: usize, mut f: impl FnMut()) -> f64 {
    set_conv_backend(backend);
    f(); // warm-up: page in buffers, settle caches (and, for Auto, tune)
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn measure(reps: usize, mut f: impl FnMut()) -> Timings {
    let naive_ms = time_backend(ConvBackend::Naive, reps, &mut f);
    let gemm_ms = time_backend(ConvBackend::Gemm, reps, &mut f);
    let simd_ms = time_backend(ConvBackend::Simd, reps, &mut f);
    let auto_ms = time_backend(ConvBackend::Auto, reps, &mut f);
    set_conv_backend(ConvBackend::Auto);
    Timings { naive_ms, gemm_ms, simd_ms, auto_ms }
}

fn print_timings(label: &str, t: &Timings, suffix: &str) {
    println!(
        "{label:<20} naive {:8.2} ms | gemm {:8.2} ms ({:4.2}x) | simd {:8.2} ms ({:4.2}x) | \
         auto {:8.2} ms ({:4.2}x){suffix}",
        t.naive_ms,
        t.gemm_ms,
        t.speedup_over_naive(t.gemm_ms),
        t.simd_ms,
        t.speedup_over_naive(t.simd_ms),
        t.auto_ms,
        t.speedup_over_naive(t.auto_ms),
    );
}

/// The autotuner's tuned decisions as a JSON array (one row per shape key).
fn winner_table() -> JsonValue {
    JsonValue::Array(
        dispatch::tuned_entries()
            .into_iter()
            .map(|(key, winner)| {
                JsonValue::object([
                    ("op", JsonValue::String(key.op.into())),
                    ("m", JsonValue::Number(key.m as f64)),
                    ("n", JsonValue::Number(key.n as f64)),
                    ("k", JsonValue::Number(key.k as f64)),
                    ("threads", JsonValue::Number(key.threads as f64)),
                    ("winner", JsonValue::String(winner.as_str().into())),
                ])
            })
            .collect(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_dir: PathBuf = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let scale = Scale::bench();
    let window = scale.window;
    // Smoke mode keeps CI at seconds scale with a width-reduced net; the
    // default run times the paper-width ResNet the claims are about.
    let (resnet_cfg, reps) =
        if smoke { (ResNetConfig::scaled(5, 8), 3) } else { (ResNetConfig::paper(5), 9) };

    println!(
        "bench_conv_gemm: mode={} window={window} batch={BATCH} resnet_channels={:?} \
         simd_available={} simd_exact={}",
        if smoke { "smoke" } else { "full" },
        resnet_cfg.channels,
        nilm_tensor::simd::simd_available(),
        nilm_tensor::simd::simd_exact(),
    );

    // --- detector forward / backward ------------------------------------
    let mut r = rng(0xBE);
    let mut net = ResNet::new(&mut r, resnet_cfg);
    let x = randn_tensor(&mut r, &[BATCH, 1, window], 1.0);
    let labels: Vec<usize> = (0..BATCH).map(|i| i % 2).collect();

    let forward = measure(reps, || {
        let _ = net.forward(&x, Mode::Train);
    });
    print_timings("resnet_forward", &forward, "");

    let (_, grad) = cross_entropy(&net.forward(&x, Mode::Train), &labels);
    let backward = measure(reps, || {
        net.zero_grad();
        let _ = net.backward(&grad);
    });
    print_timings("resnet_backward", &backward, "");

    // --- full CamAL inference and one ensemble-training epoch -----------
    let cfg = scale.camal_config();
    let case = nilm_eval::runner::build_case_data(&nilm_eval::runner::smoke_cases()[0], &scale).1;
    set_conv_backend(ConvBackend::Gemm);
    let mut model = CamalModel::train(&cfg, &case.train, &case.val, scale.threads);
    let inference = measure(reps.max(5), || {
        let _ = model.localize_set(&case.test, BATCH);
    });
    print_timings("camal_inference", &inference, &format!(" ({} windows)", case.test.len()));

    let train_reps = if smoke { 1 } else { 2 };
    let train_epoch = measure(train_reps, || {
        let _ = CamalModel::train(&cfg, &case.train, &case.val, scale.threads);
    });
    print_timings(
        "ensemble_train_epoch",
        &train_epoch,
        &format!(" ({} windows)", case.train.len()),
    );

    // --- artifact --------------------------------------------------------
    let doc = JsonValue::object([
        ("schema", JsonValue::String("bench_conv_gemm/v2".into())),
        (
            "baseline_note",
            JsonValue::String(
                "naive_ms runs the shifted-axpy reference backend inside the current \
                 build, so it already benefits from shared layer work (FMA \
                 accumulation, vectorized BatchNorm reductions, allocation trims, \
                 target-cpu codegen). gemm_ms is im2col + the portable packed \
                 microkernel; simd_ms is the same lowering through the explicit \
                 AVX2/NEON microkernels and the skinny-GEMM fast path; auto_ms is \
                 the shape-keyed autotuner picking per layer shape (tuning happens \
                 in the warm-up run and is cached). Each section's `speedup` is \
                 naive over the best dispatched backend. `winner_table` records \
                 the autotuner's per-shape decisions at the recorded `threads` \
                 count; re-record after kernel changes (see REPRODUCING.md)."
                    .into(),
            ),
        ),
        ("mode", JsonValue::String(if smoke { "smoke" } else { "full" }.into())),
        ("window", JsonValue::Number(window as f64)),
        ("batch", JsonValue::Number(BATCH as f64)),
        ("threads", JsonValue::Number(rayon::current_num_threads() as f64)),
        ("simd_available", JsonValue::Bool(nilm_tensor::simd::simd_available())),
        ("simd_exact", JsonValue::Bool(nilm_tensor::simd::simd_exact())),
        (
            "resnet_channels",
            JsonValue::Array(
                resnet_cfg.channels.iter().map(|&c| JsonValue::Number(c as f64)).collect(),
            ),
        ),
        (
            "sections",
            JsonValue::object([
                ("resnet_forward", forward.to_json()),
                ("resnet_backward", backward.to_json()),
                ("camal_inference", inference.to_json()),
                ("ensemble_train_epoch", train_epoch.to_json()),
            ]),
        ),
        ("winner_table", winner_table()),
    ]);
    let text = doc.to_pretty();
    validate(&text).expect("harness emitted invalid JSON");
    std::fs::create_dir_all(&out_dir).expect("cannot create output directory");
    let path = out_dir.join("BENCH_conv_gemm.json");
    std::fs::write(&path, &text).expect("cannot write benchmark artifact");
    let reread = std::fs::read_to_string(&path).expect("cannot re-read benchmark artifact");
    validate(&reread).expect("benchmark artifact on disk is invalid JSON");
    println!("wrote {} (validated)", path.display());
}
