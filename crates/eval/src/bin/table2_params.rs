//! Regenerates Table II: theoretical complexity and trainable parameters.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let table = nilm_eval::experiments::table2::run(0);
    nilm_eval::emit(&table, &args, "table2_params");
}
