//! Regenerates Fig. 10: strongly supervised baselines trained on CamAL soft
//! labels (RQ5).

use nilm_eval::runner::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    println!("Fig. 10 soft-label augmentation (scale: {})", scale.name);
    let table = nilm_eval::experiments::fig10::run(&scale);
    nilm_eval::emit(&table, &args, "fig10_soft_labels");
}
