//! `camal_serve` — the checkpoint + streaming-inference service demo:
//! train once on weak labels, persist the ensemble, reload it in a fresh
//! model and localize appliances over arbitrary-length simulated household
//! series, emitting a validated per-household JSON summary.
//!
//! ```text
//! camal_serve demo  [--smoke|--quick|--full] [--houses N] [--days N]
//!                   [--input-step-s S] [--ckpt PATH] [--out DIR]
//! camal_serve train [--smoke|--quick|--full] [--ckpt PATH] [--out DIR]
//! camal_serve serve [--houses N] [--days N] [--input-step-s S]
//!                   --ckpt PATH [--out DIR]
//! ```
//!
//! `train` fits CamAL on the Refit kettle case and writes a checkpoint.
//! `serve` loads a checkpoint and runs the streaming pipeline over freshly
//! simulated households (default: 3 households, 30 days, 30 s readings —
//! i.e. month-long series at twice the model resolution). `demo` does both,
//! verifying in between that the reloaded model is bit-identical to the
//! trained one and that stitched streaming statuses equal the windowed
//! batch API's output pre-prior.
//!
//! The heavy lifting lives in [`nilm_eval::serving`], shared with the
//! multi-appliance `camal_fleet` binary and `run_all`'s serving gates.

use camal::CamalModel;
use nilm_eval::runner::Scale;
use nilm_eval::serving;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("demo");
    let scale = Scale::from_args(&args);
    let ckpt = serving::serve_ckpt_path(&args);
    match mode {
        "train" => {
            serving::train_model(&scale, &ckpt);
        }
        "serve" => {
            let mut model = CamalModel::load(&ckpt)
                .unwrap_or_else(|e| panic!("cannot load {}: {e}", ckpt.display()));
            println!(
                "loaded checkpoint {} ({} members, backbones {:?})",
                ckpt.display(),
                model.ensemble_size(),
                model.describe_members()
            );
            let doc = serving::serve_households(&mut model, &scale, &args, &ckpt, false);
            serving::write_summary(&doc, &args, "camal_serve");
        }
        "demo" => serving::serve_demo(&scale, &args),
        other => {
            eprintln!("unknown mode {other:?}; use train, serve or demo");
            std::process::exit(2);
        }
    }
}
