//! `camal_serve` — the checkpoint + streaming-inference service demo:
//! train once on weak labels, persist the ensemble, reload it in a fresh
//! model and localize appliances over arbitrary-length simulated household
//! series, emitting a validated per-household JSON summary.
//!
//! ```text
//! camal_serve demo  [--smoke|--quick|--full] [--houses N] [--days N]
//!                   [--input-step-s S] [--ckpt PATH] [--out DIR]
//! camal_serve train [--smoke|--quick|--full] [--ckpt PATH] [--out DIR]
//! camal_serve serve [--houses N] [--days N] [--input-step-s S]
//!                   --ckpt PATH [--out DIR]
//! ```
//!
//! `train` fits CamAL on the Refit kettle case and writes a checkpoint.
//! `serve` loads a checkpoint and runs the streaming pipeline over freshly
//! simulated households (default: 3 households, 30 days, 30 s readings —
//! i.e. month-long series at twice the model resolution). `demo` does both,
//! verifying in between that the reloaded model is bit-identical to the
//! trained one and that stitched streaming statuses equal the windowed
//! batch API's output pre-prior.

use camal::stream::{serve, HouseholdSeries, StreamConfig};
use camal::CamalModel;
use nilm_data::appliance::ApplianceKind;
use nilm_data::generator::{generate_house, SimConfig};
use nilm_data::preprocess::{forward_fill, resample, slice_windows};
use nilm_data::series::TimeSeries;
use nilm_data::templates::{refit, DatasetId};
use nilm_data::windows::WindowSet;
use nilm_eval::json::JsonValue;
use nilm_eval::runner::{build_case_data, case_avg_power, Case, Scale};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

const APPLIANCE: ApplianceKind = ApplianceKind::Kettle;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn arg_usize(args: &[String], flag: &str, default: usize) -> usize {
    arg_value(args, flag).map(|v| v.parse().expect("numeric flag")).unwrap_or(default)
}

fn ckpt_path(args: &[String]) -> PathBuf {
    arg_value(args, "--ckpt")
        .map(PathBuf::from)
        .unwrap_or_else(|| nilm_eval::results_dir(args).join("camal_kettle.ckpt"))
}

/// Repeats every sample so a 60 s simulator series becomes e.g. a 30 s
/// feed — the shape a higher-frequency meter would deliver. The streaming
/// preprocessing immediately resamples it back down to the model step.
fn upsample_repeat(s: &TimeSeries, target_step_s: u32) -> TimeSeries {
    assert!(target_step_s > 0 && s.step_s % target_step_s == 0, "target must divide source step");
    let ratio = (s.step_s / target_step_s) as usize;
    let mut out = Vec::with_capacity(s.len() * ratio);
    for &v in &s.values {
        out.extend(std::iter::repeat_n(v, ratio));
    }
    TimeSeries::new(out, target_step_s)
}

/// Simulates `n` households (all owning the target appliance) as
/// month-scale series at `input_step_s`.
fn simulated_households(
    n: usize,
    days: usize,
    input_step_s: u32,
    seed: u64,
) -> Vec<HouseholdSeries> {
    let owned: BTreeSet<ApplianceKind> =
        [APPLIANCE, ApplianceKind::Dishwasher].into_iter().collect();
    let sim = SimConfig { days, ..SimConfig::default() };
    (0..n)
        .map(|i| HouseholdSeries {
            id: format!("house-{i}"),
            series: upsample_repeat(&generate_house(i, &owned, &sim, seed).aggregate, input_step_s),
        })
        .collect()
}

fn train_model(scale: &Scale, path: &Path) -> CamalModel {
    let case = Case { dataset: DatasetId::Refit, appliance: APPLIANCE };
    println!("training CamAL ({}) on {} ...", scale.name, case.label());
    let (_, data) = build_case_data(&case, scale);
    let mut model = CamalModel::train(&scale.camal_config(), &data.train, &data.val, scale.threads);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create checkpoint directory");
    }
    model.save(path).expect("write checkpoint");
    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    println!(
        "saved checkpoint {} ({} members, kernels {:?}, {} bytes)",
        path.display(),
        model.ensemble_size(),
        model.kernels(),
        bytes
    );
    model
}

/// Asserts that a freshly loaded model reproduces the in-memory model
/// bit-for-bit on a probe batch.
fn verify_reload(trained: &mut CamalModel, loaded: &mut CamalModel, scale: &Scale) {
    let probe_house = generate_house(
        900,
        &[APPLIANCE].into_iter().collect(),
        &SimConfig { days: 2, missing_rate: 0.0, ..SimConfig::default() },
        0xBEEF,
    );
    let tmpl = refit();
    let agg = forward_fill(&resample(&probe_house.aggregate, tmpl.step_s), tmpl.max_ffill_s);
    let set = WindowSet::new(slice_windows(&agg, None, 500.0, scale.window, 0, false));
    assert!(!set.is_empty(), "probe produced no windows");
    let idx: Vec<usize> = (0..set.len().min(8)).collect();
    let x = set.batch_inputs(&idx);
    let a = trained.localize_batch(&x);
    let b = loaded.localize_batch(&x);
    let bits = |v: &[Vec<f32>]| -> Vec<Vec<u32>> {
        v.iter().map(|r| r.iter().map(|s| s.to_bits()).collect()).collect()
    };
    assert_eq!(a.status, b.status, "reloaded statuses differ");
    assert_eq!(bits(&a.scores), bits(&b.scores), "reloaded scores differ");
    assert_eq!(
        trained.detect_proba(&x).iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
        loaded.detect_proba(&x).iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
        "reloaded detection probabilities differ"
    );
    println!("reload check: localize_batch is bit-identical after save -> load");
}

/// Asserts the stitched streaming output equals the windowed batch API on
/// the first household (pre-prior). Demo-mode only: the production `serve`
/// path must not pay for re-scoring a household.
fn verify_stream_equivalence(
    model: &mut CamalModel,
    household: &HouseholdSeries,
    timeline: &camal::stream::HouseholdTimeline,
    cfg: &StreamConfig,
) {
    let w = cfg.window;
    // Slice through the *training* pipeline's own window slicer; the
    // timeline's `scored_starts` says which windows streaming actually ran.
    let agg = forward_fill(&resample(&household.series, cfg.step_s), cfg.max_ffill_s);
    let set = WindowSet::new(slice_windows(&agg, None, 500.0, w, 0, false));
    assert_eq!(
        set.len(),
        timeline.scored_starts.len(),
        "streaming scored a different window set than slice_windows produces"
    );
    let loc = model.localize_set(&set, 16);
    for (si, &start) in timeline.scored_starts.iter().enumerate() {
        assert_eq!(
            &timeline.raw_status[start..start + w],
            &loc.status[si][..],
            "stream/batch divergence in window starting at sample {start}"
        );
    }
    println!(
        "equivalence check: {} streamed windows match the batch API exactly (pre-prior)",
        timeline.scored_starts.len()
    );
}

fn serve_households(
    model: &mut CamalModel,
    scale: &Scale,
    args: &[String],
    ckpt: &Path,
    verify_equivalence: bool,
) -> JsonValue {
    let houses = arg_usize(args, "--houses", 3);
    let days = arg_usize(args, "--days", 30);
    let input_step_s = arg_usize(args, "--input-step-s", 30) as u32;
    if houses == 0 || days == 0 || input_step_s == 0 {
        eprintln!("--houses, --days and --input-step-s must all be >= 1");
        std::process::exit(2);
    }
    let tmpl = refit();
    let households = simulated_households(houses, days, input_step_s, 0x5EBE);
    // The checkpoint records the window length the ensemble was trained at;
    // trust it over whatever scale flag this process happened to get.
    let window = match model.window() {
        0 => scale.window,
        w => {
            if w != scale.window {
                println!(
                    "note: checkpoint was trained at window {w}; ignoring scale window {}",
                    scale.window
                );
            }
            w
        }
    };
    let avg_power_w = case_avg_power(&Case { dataset: DatasetId::Refit, appliance: APPLIANCE });
    let mut cfg = StreamConfig::for_appliance(window, tmpl.step_s, APPLIANCE, avg_power_w);
    cfg.max_ffill_s = tmpl.max_ffill_s;
    println!(
        "serving {houses} households x {days} days @ {input_step_s} s input ({} samples each) ...",
        households[0].series.len()
    );
    let start = std::time::Instant::now();
    let timelines = serve(model, &households, &cfg);
    let secs = start.elapsed().as_secs_f64();
    let total_windows: usize = timelines.iter().map(|t| t.windows_scored).sum();
    println!(
        "scored {total_windows} windows in {secs:.2} s ({:.0} windows/s)",
        total_windows as f64 / secs.max(1e-9)
    );

    if verify_equivalence {
        verify_stream_equivalence(model, &households[0], &timelines[0], &cfg);
    }

    let hh_json: Vec<JsonValue> = timelines
        .iter()
        .map(|tl| {
            JsonValue::object([
                ("id", JsonValue::String(tl.id.clone())),
                ("step_s", JsonValue::Number(tl.step_s as f64)),
                ("samples", JsonValue::Number(tl.status.len() as f64)),
                ("windows_total", JsonValue::Number(tl.windows_total as f64)),
                ("windows_scored", JsonValue::Number(tl.windows_scored as f64)),
                ("windows_detected", JsonValue::Number(tl.windows_detected as f64)),
                ("on_fraction", JsonValue::Number(tl.on_fraction())),
                ("activations", JsonValue::Number(tl.activations() as f64)),
                ("energy_wh", JsonValue::Number(tl.energy_wh())),
            ])
        })
        .collect();
    JsonValue::object([
        ("appliance", JsonValue::String(APPLIANCE.name().to_string())),
        ("checkpoint", JsonValue::String(ckpt.display().to_string())),
        ("scale", JsonValue::String(scale.name.to_string())),
        ("days", JsonValue::Number(days as f64)),
        ("input_step_s", JsonValue::Number(input_step_s as f64)),
        ("windows_per_second", JsonValue::Number(total_windows as f64 / secs.max(1e-9))),
        ("households", JsonValue::Array(hh_json)),
    ])
}

fn write_summary(doc: &JsonValue, args: &[String]) {
    let dir = nilm_eval::results_dir(args);
    std::fs::create_dir_all(&dir).expect("create results directory");
    let path = dir.join("camal_serve.json");
    let text = doc.to_pretty();
    nilm_eval::json::validate(&text).expect("emitted summary must be valid JSON");
    std::fs::write(&path, &text).expect("write summary");
    println!("wrote {} (validated)", path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("demo");
    let scale = Scale::from_args(&args);
    let ckpt = ckpt_path(&args);
    match mode {
        "train" => {
            train_model(&scale, &ckpt);
        }
        "serve" => {
            let mut model = CamalModel::load(&ckpt)
                .unwrap_or_else(|e| panic!("cannot load {}: {e}", ckpt.display()));
            println!(
                "loaded checkpoint {} ({} members, kernels {:?})",
                ckpt.display(),
                model.ensemble_size(),
                model.kernels()
            );
            let doc = serve_households(&mut model, &scale, &args, &ckpt, false);
            write_summary(&doc, &args);
        }
        "demo" => {
            let mut trained = train_model(&scale, &ckpt);
            let mut model = CamalModel::load(&ckpt)
                .unwrap_or_else(|e| panic!("cannot load {}: {e}", ckpt.display()));
            verify_reload(&mut trained, &mut model, &scale);
            let doc = serve_households(&mut model, &scale, &args, &ckpt, true);
            write_summary(&doc, &args);
        }
        other => {
            eprintln!("unknown mode {other:?}; use train, serve or demo");
            std::process::exit(2);
        }
    }
}
