//! Regenerates Fig. 9: monetary/carbon costs per household and storage for
//! one million households.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let costs = nilm_eval::experiments::fig9::run_costs();
    nilm_eval::emit(&costs, &args, "fig9a_costs");
    let storage = nilm_eval::experiments::fig9::run_storage();
    nilm_eval::emit(&storage, &args, "fig9b_storage");
}
