//! Regenerates Table IV: attention-module and kernel-diversity ablations.

use nilm_eval::runner::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let runs = args
        .iter()
        .position(|a| a == "--runs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(if scale.name == "full" { 10 } else { 1 });
    println!("Table IV ablation (scale: {}, runs: {runs})", scale.name);
    let table = nilm_eval::experiments::table4::run(&scale, runs);
    nilm_eval::emit(&table, &args, "table4_ablation");
}
