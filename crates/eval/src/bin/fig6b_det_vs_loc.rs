//! Regenerates Fig. 6(b): detection accuracy vs localization F1 scatter.

use nilm_eval::runner::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    println!("Fig. 6(b) detection vs localization (scale: {})", scale.name);
    let table = nilm_eval::experiments::fig6::run_detection_vs_localization(&scale);
    nilm_eval::emit(&table, &args, "fig6b_det_vs_loc");
}
