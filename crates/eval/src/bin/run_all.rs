//! Runs every experiment at the chosen scale — the one-command
//! reproduction — then smoke-runs the serving demos (`camal_serve`,
//! `camal_fleet`, `camal_gateway`) so the "run everything" entry point
//! also gates the persistence / streaming / fleet / network-gateway paths.
//! The serving demos always run at smoke scale: they are correctness gates
//! (bit-identical reload, stream-vs-batch, fleet-vs-serve and
//! gateway-vs-serve equivalence, micro-batching > sequential), not
//! figures, so their runtime stays bounded regardless of the experiment
//! scale (see REPRODUCING.md).

use nilm_eval::runner::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    println!("Running the full CamAL reproduction suite (scale: {})\n", scale.name);
    nilm_eval::emit(&nilm_eval::experiments::table2::run(0), &args, "table2_params");
    nilm_eval::emit(&nilm_eval::experiments::fig9::run_costs(), &args, "fig9a_costs");
    nilm_eval::emit(&nilm_eval::experiments::fig9::run_storage(), &args, "fig9b_storage");
    nilm_eval::emit(&nilm_eval::experiments::table3::run(&scale, 1), &args, "table3_weak");
    nilm_eval::emit(&nilm_eval::experiments::fig5::run(&scale, None), &args, "fig5_label_sweep");
    nilm_eval::emit(
        &nilm_eval::experiments::fig6::run_window_length(&scale),
        &args,
        "fig6a_window_length",
    );
    nilm_eval::emit(
        &nilm_eval::experiments::fig6::run_detection_vs_localization(&scale),
        &args,
        "fig6b_det_vs_loc",
    );
    nilm_eval::emit(
        &nilm_eval::experiments::fig6::run_ensemble_size(&scale),
        &args,
        "fig6c_n_resnets",
    );
    nilm_eval::emit(&nilm_eval::experiments::table4::run(&scale, 1), &args, "table4_ablation");
    nilm_eval::emit(
        &nilm_eval::experiments::fig7::run_training_time(&scale),
        &args,
        "fig7a_train_time",
    );
    nilm_eval::emit(
        &nilm_eval::experiments::fig7::run_epoch_scaling(&scale),
        &args,
        "fig7b_epoch_scaling",
    );
    nilm_eval::emit(
        &nilm_eval::experiments::fig7::run_throughput(&scale),
        &args,
        "fig7c_throughput",
    );
    nilm_eval::emit(&nilm_eval::experiments::fig8::run(&scale), &args, "fig8_possession");
    nilm_eval::emit(&nilm_eval::experiments::fig10::run(&scale), &args, "fig10_soft_labels");
    nilm_eval::emit(
        &nilm_eval::experiments::extensions::run_backbone(&scale),
        &args,
        "ext_backbone",
    );
    nilm_eval::emit(
        &nilm_eval::experiments::extensions::run_postprocess(&scale),
        &args,
        "ext_postprocess",
    );

    println!("\nServing demos (smoke scale): camal_serve ...");
    nilm_eval::serving::serve_demo(&Scale::smoke(), &args);
    println!("\nServing demos (smoke scale): camal_fleet ...");
    nilm_eval::serving::fleet_demo(&Scale::smoke(), &args);
    println!("\nServing demos (smoke scale): camal_gateway ...");
    nilm_eval::gateway::gateway_demo(&Scale::smoke(), &args);

    println!("\nAll experiments complete.");
}
