//! Extension ablations beyond the paper: detector backbone (ResNet vs
//! InceptionTime) and duration-prior post-processing.

use nilm_eval::runner::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    println!("Extension ablations (scale: {})", scale.name);
    let t = nilm_eval::experiments::extensions::run_backbone(&scale);
    nilm_eval::emit(&t, &args, "ext_backbone");
    let t = nilm_eval::experiments::extensions::run_postprocess(&scale);
    nilm_eval::emit(&t, &args, "ext_postprocess");
}
