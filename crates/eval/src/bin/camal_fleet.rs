//! `camal_fleet` — the multi-appliance fleet-serving demo: train a small
//! per-appliance model zoo, persist it as one checkpoint per
//! `(dataset, appliance)` pair, reload it through `camal::registry`, and
//! stream a simulated multi-dataset household fleet through the
//! `camal::fleet` shared-pass scheduler, emitting a validated JSON report.
//!
//! ```text
//! camal_fleet train-all [--smoke|--quick|--full] [--zoo DIR] [--out DIR]
//! camal_fleet serve     [--houses N] [--days N] [--threads T]
//!                       [--max-loaded N] [--zoo DIR] [--out DIR]
//! camal_fleet demo      [--smoke|--quick|--full] [--houses N] [--days N]
//!                       [--threads T] [--zoo DIR] [--out DIR]
//! ```
//!
//! `train-all` fits one CamAL ensemble per zoo case (three appliances
//! across the REFIT and UKDALE templates) and writes
//! `<dataset>_<appliance>.ckpt` files. `serve` scans the zoo directory into
//! a [`camal::registry::ModelRegistry`] (optionally bounded with
//! `--max-loaded`, exercising lazy load + LRU eviction) and fans every
//! model over a freshly simulated fleet: `--houses` households per dataset
//! template, sharded over `--threads` workers, each feed preprocessed once
//! and batched across households *and* appliances. `demo` does both, plus
//! two verification gates: every checkpoint reloads bit-stably through the
//! registry, and the fleet's output for one appliance is bit-identical to
//! the single-appliance `camal::stream::serve` path.
//!
//! The logic lives in [`nilm_eval::serving`], shared with `camal_serve`
//! and `run_all`.

use camal::registry::ModelRegistry;
use nilm_eval::runner::Scale;
use nilm_eval::serving;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("demo");
    let scale = Scale::from_args(&args);
    match mode {
        "train-all" => {
            serving::fleet_train_all(&scale, &args);
        }
        "serve" => {
            let zoo = serving::fleet_zoo_dir(&args);
            let max_loaded = serving::arg_usize(&args, "--max-loaded", 0);
            let mut registry = ModelRegistry::new(max_loaded);
            let found = registry
                .register_dir(&zoo)
                .unwrap_or_else(|e| panic!("cannot scan zoo {}: {e}", zoo.display()));
            assert!(
                !found.is_empty(),
                "no <dataset>_<appliance>.ckpt checkpoints under {}; run train-all first",
                zoo.display()
            );
            println!(
                "registry: {} models under {} (max resident: {})",
                found.len(),
                zoo.display(),
                if max_loaded == 0 { "unbounded".to_string() } else { max_loaded.to_string() }
            );
            let doc = serving::fleet_serve(&mut registry, &scale, &args, false);
            serving::write_summary(&doc, &args, "camal_fleet");
        }
        "demo" => serving::fleet_demo(&scale, &args),
        other => {
            eprintln!("unknown mode {other:?}; use train-all, serve or demo");
            std::process::exit(2);
        }
    }
}
