//! `camal_gateway` — the networked inference gateway: serve a trained
//! checkpoint zoo over HTTP with cross-request micro-batching, hammer it
//! with a socket-level load generator, or run the self-contained demo.
//!
//! ```text
//! camal_gateway train   [--smoke|--quick|--full] [--zoo DIR] [--out DIR]
//! camal_gateway serve   [--zoo DIR] [--addr HOST:PORT] [--addr-file PATH]
//!                       [--queue N] [--max-coalesce N] [--batch N] [--trace]
//! camal_gateway loadgen --addr HOST:PORT [--connections N] [--requests N]
//!                       [--houses N] [--request-windows N] [--pipeline N]
//!                       [--max-errors N] [--max-p99-ms F]
//!                       [--latency-json PATH] [--out DIR]
//! camal_gateway demo    [--smoke|--quick|--full] [--requests N]
//!                       [--request-windows N] [--zoo DIR] [--out DIR]
//! camal_gateway chaos   [--smoke|--quick|--full] [--requests N]
//!                       [--rate-pct N] [--deadline-ms N] [--zoo DIR]
//!                       [--out DIR]
//! ```
//!
//! `train` fits the Refit kettle CamAL ensemble and writes
//! `refit_kettle.ckpt` into the zoo directory. `serve` scans the zoo into
//! a [`camal::registry::ModelRegistry`], warms every checkpoint, binds
//! (port 0 = ephemeral; `--addr-file` writes the bound address for
//! scripts), and serves `GET /healthz`, `GET /readyz`, `GET /metrics`
//! (`?format=prometheus` for text exposition), `GET /v1/models`,
//! `GET /debug/trace?id=<trace>` and `POST /v1/localize` until
//! `POST /admin/shutdown`. `--trace` turns request tracing on from the
//! start (equivalent to `NILM_TRACE=1`); slow-request logging comes from
//! the `NILM_LOG=slow[:ms]` environment variable. `loadgen` fires
//! keep-alive localize requests over real sockets — optionally pipelined
//! `--pipeline` deep per burst — and emits a validated requests/s +
//! latency report; `--max-errors` / `--max-p99-ms` turn the run into a
//! hard CI gate and `--latency-json` dumps the full HDR latency
//! histogram. `demo` does train → serve → verify
//! byte-identical responses vs `camal::stream::serve` → prove concurrent
//! loadgen beats sequential → shut down — the gate CI and `run_all` run.
//! `chaos` trains, then arms the `batcher.panic` and
//! `persist.load.corrupt` fault points at `--rate-pct` (default 10%) and
//! proves a ≥200-request load completes with zero hangs and zero 500s —
//! only 200s and 503s-with-`Retry-After` — and that the gateway heals to
//! byte-identical responses after the faults are disarmed.
//!
//! The logic lives in [`nilm_eval::gateway`]; the server itself is
//! [`nilm_serve`].

use camal::registry::ModelRegistry;
use nilm_eval::gateway;
use nilm_eval::runner::Scale;
use nilm_eval::serving;
use nilm_serve::Gateway;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("demo");
    let scale = Scale::from_args(&args);
    match mode {
        "train" => {
            gateway::train_gateway_zoo(&scale, &args);
        }
        "serve" => {
            if args.iter().any(|a| a == "--trace") {
                nilm_obs::trace::set_enabled(true);
            }
            let zoo = gateway::gateway_zoo_dir(&args);
            let mut registry = ModelRegistry::unbounded();
            let found = registry
                .register_dir(&zoo)
                .unwrap_or_else(|e| panic!("cannot scan zoo {}: {e}", zoo.display()));
            assert!(
                !found.is_empty(),
                "no <dataset>_<appliance>.ckpt checkpoints under {}; run train first",
                zoo.display()
            );
            let server = Gateway::start(registry, gateway::gateway_config(&args))
                .unwrap_or_else(|e| panic!("cannot start gateway: {e}"));
            let addr = server.addr();
            println!("gateway listening on {addr} ({} model(s) warmed)", found.len());
            println!("shut down with: curl -X POST http://{addr}/admin/shutdown");
            if let Some(path) = serving::arg_value(&args, "--addr-file") {
                std::fs::write(&path, addr.to_string())
                    .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            }
            server.wait();
            println!("gateway shut down cleanly");
        }
        "loadgen" => {
            let addr = serving::arg_value(&args, "--addr")
                .unwrap_or_else(|| panic!("loadgen needs --addr HOST:PORT"));
            let doc = gateway::loadgen_run(&addr, &args);
            serving::write_summary(&doc, &args, "camal_gateway_loadgen");
        }
        "demo" => gateway::gateway_demo(&scale, &args),
        "chaos" => gateway::gateway_chaos(&scale, &args),
        other => {
            eprintln!("unknown mode {other:?}; use train, serve, loadgen, chaos or demo");
            std::process::exit(2);
        }
    }
}
