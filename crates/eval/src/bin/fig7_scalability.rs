//! Regenerates Fig. 7: (a) training time, (b) per-epoch scaling with
//! households, (c) inference throughput. Select parts with `--part a|b|c`
//! (default: all).

use nilm_eval::runner::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let part = args.iter().position(|a| a == "--part").and_then(|i| args.get(i + 1).cloned());
    println!("Fig. 7 scalability (scale: {})", scale.name);
    if part.as_deref().is_none_or(|p| p == "a") {
        let t = nilm_eval::experiments::fig7::run_training_time(&scale);
        nilm_eval::emit(&t, &args, "fig7a_train_time");
    }
    if part.as_deref().is_none_or(|p| p == "b") {
        let t = nilm_eval::experiments::fig7::run_epoch_scaling(&scale);
        nilm_eval::emit(&t, &args, "fig7b_epoch_scaling");
    }
    if part.as_deref().is_none_or(|p| p == "c") {
        let t = nilm_eval::experiments::fig7::run_throughput(&scale);
        nilm_eval::emit(&t, &args, "fig7c_throughput");
    }
}
