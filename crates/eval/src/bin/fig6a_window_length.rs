//! Regenerates Fig. 6(a): training window-length ablation.

use nilm_eval::runner::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    println!("Fig. 6(a) window-length ablation (scale: {})", scale.name);
    let table = nilm_eval::experiments::fig6::run_window_length(&scale);
    nilm_eval::emit(&table, &args, "fig6a_window_length");
}
