//! Regenerates Fig. 8: one label per household (possession only) vs per
//! subsequence vs per timestep.

use nilm_eval::runner::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    println!("Fig. 8 possession-only study (scale: {})", scale.name);
    let table = nilm_eval::experiments::fig8::run(&scale);
    nilm_eval::emit(&table, &args, "fig8_possession");
}
