//! Regenerates Fig. 5 (and the Fig. 1 headline panel): F1 vs label budget.
//! Usage: `cargo run -p nilm-eval --release --bin fig5_label_sweep -- [--smoke|--quick|--full] [--only case]`

use nilm_eval::runner::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let only = nilm_eval::parse_only(&args);
    println!("Fig. 5 label sweep (scale: {})", scale.name);
    let table = nilm_eval::experiments::fig5::run(&scale, only.as_deref());
    nilm_eval::emit(&table, &args, "fig5_label_sweep");
}
