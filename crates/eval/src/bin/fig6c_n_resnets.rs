//! Regenerates Fig. 6(c): performance vs ensemble size.

use nilm_eval::runner::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    println!("Fig. 6(c) ensemble-size ablation (scale: {})", scale.name);
    let table = nilm_eval::experiments::fig6::run_ensemble_size(&scale);
    nilm_eval::emit(&table, &args, "fig6c_n_resnets");
}
